"""Job specs: the serialized unit of work a service client submits.

A *job* is one sweep or study execution request, written into a
:class:`~repro.service.queue.SpecQueue` as a JSON document and later claimed
by a daemon (:func:`repro.service.daemon.serve_queue`).  :class:`JobSpec` is
the typed form of that document:

* ``kind="sweep"``: fan a registered experiment out over a
  :class:`~repro.api.sweep.SweepSpec` (``params`` are the fixed base
  parameters under the sweep axes, ``stage_params`` optional per-stage
  overrides for composite experiments);
* ``kind="study"``: execute a registered :class:`~repro.api.study.Study`
  end to end -- with its default sweep, or an explicit ``sweep`` override,
  and ``stage_params`` merged over the study's own per-stage parameters;
* ``kind="campaign"``: run a closed-loop adaptive campaign
  (:class:`~repro.campaign.Campaign`) over the ``sweep`` candidate pool --
  the ``campaign`` settings mapping carries the objective column, min/max
  mode, batch size, budget, strategy name, seed and stopping rules (see
  ``docs/CAMPAIGNS.md``).

Job payloads arrive from *untrusted clients* (hand-written curl bodies, see
``docs/SERVICE.md``), so deserialisation is strict: :meth:`JobSpec.
from_payload` validates every field shape with a :class:`ValueError` naming
the bad field, and :meth:`JobSpec.validate` additionally resolves the job
against the experiment/study registry (unknown names, unknown sweep axes
and malformed stage overrides all fail *at submit time*, HTTP 400, instead
of poisoning a daemon later).

The executed results are bit-identical to a local run: a job carries only
names and parameters, and execution flows through the exact
claim/execute/publish machinery of :mod:`repro.dist` -- so a result fetched
through the service API content-hash-matches the same sweep run serially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.experiment import get_experiment
from repro.api.study import get_study, resolve_pipeline
from repro.api.sweep import SweepSpec

JOB_KINDS = ("sweep", "study", "campaign")

# Job lifecycle states, as reported by SpecQueue.status()/the HTTP API.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED)

_PAYLOAD_FIELDS = {"kind", "name", "sweep", "params", "stage_params", "campaign"}

# The campaign-settings mapping of a kind="campaign" job, with defaults.
_CAMPAIGN_FIELDS = {
    "objective": None,  # required
    "mode": "min",
    "batch": 8,
    "budget": None,
    "strategy": "surrogate",
    "seed": 0,
    "target": None,
    "patience": None,
    "tolerance": 0.0,
}


def _checked_params(value: Any, label: str) -> dict[str, Any]:
    """A flat ``{param: value}`` mapping, or a ValueError naming ``label``."""
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        raise ValueError(
            f"job field {label!r} must be a mapping of parameter name to "
            f"value, got {type(value).__name__}"
        )
    return {str(key): cell for key, cell in value.items()}


def _checked_stage_params(value: Any) -> dict[str, dict[str, Any]]:
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        raise ValueError(
            "job field 'stage_params' must be a mapping of stage name to "
            f"parameter mapping, got {type(value).__name__}"
        )
    return {
        str(stage): _checked_params(overrides, f"stage_params[{str(stage)!r}]")
        for stage, overrides in value.items()
    }


def _checked_campaign(value: Any) -> dict[str, Any]:
    """Validate a campaign-settings mapping; defaults applied, fields typed."""
    if not isinstance(value, Mapping):
        raise ValueError(
            "job field 'campaign' must be a mapping of campaign settings, "
            f"got {type(value).__name__}"
        )
    unknown = sorted(set(map(str, value)) - set(_CAMPAIGN_FIELDS))
    if unknown:
        raise ValueError(
            f"job field 'campaign' has unknown settings {unknown}; "
            f"allowed: {sorted(_CAMPAIGN_FIELDS)}"
        )
    settings = {**_CAMPAIGN_FIELDS, **{str(k): v for k, v in value.items()}}
    objective = settings["objective"]
    if not isinstance(objective, str) or not objective:
        raise ValueError(
            "campaign setting 'objective' must be a non-empty column name, "
            f"got {objective!r}"
        )
    if settings["mode"] not in ("min", "max"):
        raise ValueError(
            f"campaign setting 'mode' must be 'min' or 'max', "
            f"got {settings['mode']!r}"
        )
    from repro.campaign.strategies import STRATEGIES

    if settings["strategy"] not in STRATEGIES:
        raise ValueError(
            f"campaign setting 'strategy' must be one of {sorted(STRATEGIES)}, "
            f"got {settings['strategy']!r}"
        )
    for name, minimum in (("batch", 1), ("budget", 1), ("patience", 1), ("seed", None)):
        cell = settings[name]
        if cell is None and name != "batch" and name != "seed":
            continue
        if not isinstance(cell, int) or isinstance(cell, bool):
            raise ValueError(
                f"campaign setting {name!r} must be an integer, got {cell!r}"
            )
        if minimum is not None and cell < minimum:
            raise ValueError(
                f"campaign setting {name!r} must be >= {minimum}, got {cell}"
            )
    for name in ("target", "tolerance"):
        cell = settings[name]
        if cell is None and name == "target":
            continue
        if not isinstance(cell, (int, float)) or isinstance(cell, bool):
            raise ValueError(
                f"campaign setting {name!r} must be a number, got {cell!r}"
            )
    if settings["tolerance"] < 0:
        raise ValueError(
            f"campaign setting 'tolerance' must be >= 0, got {settings['tolerance']}"
        )
    return settings


@dataclass(frozen=True)
class JobSpec:
    """One submitted unit of service work: a sweep or a study execution.

    Attributes
    ----------
    kind:
        ``"sweep"`` or ``"study"``.
    name:
        Registered experiment name (sweep jobs) or study name (study jobs).
    sweep:
        The sweep to expand.  Required for sweep jobs; optional for study
        jobs (``None`` falls back to the study's default sweep, or a single
        invocation when the study declares none).
    params:
        Fixed base parameters under the sweep axes (sweep jobs only --
        study-stage overrides belong in ``stage_params``).
    stage_params:
        Per-experiment parameter overrides for pipeline stages, keyed by
        experiment name (the :class:`~repro.api.study.Study` ``params``
        shape).
    campaign:
        Campaign settings for ``kind="campaign"`` jobs (objective, mode,
        batch, budget, strategy, seed, target, patience, tolerance); the
        job's ``sweep`` is then the campaign's candidate pool.
    """

    kind: str
    name: str
    sweep: SweepSpec | None = None
    params: Mapping[str, Any] = field(default_factory=dict)
    stage_params: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    campaign: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"job field 'kind' must be one of {JOB_KINDS}, got {self.kind!r}"
            )
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(
                f"job field 'name' must be a non-empty string, got {self.name!r}"
            )
        if self.sweep is not None and not isinstance(self.sweep, SweepSpec):
            raise ValueError(
                f"job field 'sweep' must be a SweepSpec or None, got {self.sweep!r}"
            )
        if self.kind == "sweep" and self.sweep is None:
            raise ValueError(
                "a sweep job needs a 'sweep' descriptor (a single invocation "
                "is a one-point sweep)"
            )
        object.__setattr__(self, "params", _checked_params(self.params, "params"))
        object.__setattr__(self, "stage_params", _checked_stage_params(self.stage_params))
        if self.kind == "study" and self.params:
            raise ValueError(
                "study jobs take per-stage overrides in 'stage_params' "
                "(keyed by experiment name), not flat 'params'"
            )
        if self.kind == "campaign":
            if self.sweep is None:
                raise ValueError(
                    "a campaign job needs a 'sweep' descriptor for its "
                    "candidate pool"
                )
            if self.campaign is None:
                raise ValueError(
                    "a campaign job needs a 'campaign' settings mapping "
                    "(at least {'objective': <column>})"
                )
            object.__setattr__(self, "campaign", _checked_campaign(self.campaign))
        elif self.campaign is not None:
            raise ValueError(
                f"job field 'campaign' only applies to campaign jobs, "
                f"not kind {self.kind!r}"
            )

    # --- registry validation ----------------------------------------------

    def validate(self) -> "JobSpec":
        """Resolve the job against the registry; raises on anything unknown.

        The submit-time gate: an unregistered experiment/study, a sweep axis
        or base parameter the experiment does not declare, or stage
        overrides naming stages outside the pipeline all raise here
        (:class:`~repro.api.experiment.ExperimentError` subclasses or
        :class:`ValueError`), so the HTTP server can reject the job with a
        clear 400 instead of leaving a daemon to fail it later.  Returns
        ``self`` for chaining.
        """
        if self.kind in ("sweep", "campaign"):
            experiment = get_experiment(self.name)
            for axis in self.sweep.axis_names:
                experiment.spec(axis)  # raises ParameterError on unknown axes
            for key in self.params:
                experiment.spec(key)
            if self.stage_params:
                resolve_pipeline(experiment, self.stage_params)
        else:
            study = get_study(self.name)
            if self.sweep is not None:
                target = get_experiment(study.target)
                for axis in self.sweep.axis_names:
                    target.spec(axis)
            merged = {name: dict(values) for name, values in study.params.items()}
            for name, values in self.stage_params.items():
                merged.setdefault(name, {}).update(values)
            resolve_pipeline(study.target, merged)
        return self

    # --- serialisation ----------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """The JSON document written into the queue (see :meth:`from_payload`)."""
        payload = {
            "kind": self.kind,
            "name": self.name,
            "sweep": None if self.sweep is None else self.sweep.to_meta(),
            "params": dict(self.params),
            "stage_params": {
                name: dict(values) for name, values in self.stage_params.items()
            },
        }
        if self.campaign is not None:
            payload["campaign"] = dict(self.campaign)
        return payload

    @classmethod
    def from_payload(cls, payload: Any) -> "JobSpec":
        """Rebuild a spec from a queue document, strictly validated.

        Every malformed shape raises a :class:`ValueError` naming the bad
        field; the sweep descriptor goes through the hardened
        :meth:`SweepSpec.from_meta`.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"job spec must be a JSON object, got {type(payload).__name__}"
            )
        unknown = sorted(set(map(str, payload)) - _PAYLOAD_FIELDS)
        if unknown:
            raise ValueError(
                f"job spec has unknown fields {unknown}; "
                f"allowed: {sorted(_PAYLOAD_FIELDS)}"
            )
        missing = sorted({"kind", "name"} - set(payload))
        if missing:
            raise ValueError(f"job spec is missing required fields {missing}")
        raw_sweep = payload.get("sweep")
        sweep = None if raw_sweep is None else SweepSpec.from_meta(raw_sweep)
        return cls(
            kind=payload["kind"],
            name=payload["name"],
            sweep=sweep,
            params=payload.get("params"),
            stage_params=payload.get("stage_params"),
            campaign=payload.get("campaign"),
        )

    def describe(self) -> str:
        """One-line human summary (daemon logs and ``repro status``)."""
        sweep = "-" if self.sweep is None else f"{self.sweep.mode}[{len(self.sweep)}]"
        if self.kind == "campaign" and self.campaign is not None:
            return (
                f"campaign {self.name} pool={sweep} "
                f"{self.campaign['mode']}({self.campaign['objective']}) "
                f"[{self.campaign['strategy']}]"
            )
        return f"{self.kind} {self.name} sweep={sweep}"
