"""repro.service: persistent sweep daemons over a spec queue, plus an HTTP API.

:mod:`repro.dist` made sweeps shardable across processes; this package makes
them *submittable*: work arrives as serialized job specs in a durable
on-disk queue, long-lived daemons claim and execute them, and a stdlib HTTP
server lets clients submit, poll, and fetch from anywhere that can reach the
socket.  Nothing here recomputes anything -- execution flows through the
same claim/execute/publish machinery as ``repro.dist``, so a result fetched
over HTTP is bit-identical (content hash and all) to the same sweep run
serially.

The pieces, one module each:

* :class:`JobSpec` (:mod:`repro.service.jobs`) -- the validated unit of
  work: one sweep, study, or adaptive-campaign execution request;
* :class:`SpecQueue` (:mod:`repro.service.queue`) -- the durable queue:
  submit/claim/complete with exactly-once leasing borrowed from
  :class:`~repro.dist.store.SharedStore`;
* :func:`serve_queue` (:mod:`repro.service.daemon`) -- the daemon loop
  behind ``python -m repro worker --watch QUEUE_DIR``;
* :func:`make_server` (:mod:`repro.service.server`) -- the HTTP front end
  behind ``python -m repro serve``;
* :class:`ServiceClient` (:mod:`repro.service.client`) -- the typed client
  behind ``python -m repro submit/status/fetch``.

End to end, in process (the HTTP layer adds transport, not semantics)::

    import tempfile

    from repro.api import SweepSpec
    from repro.dist import SharedStore
    from repro.service import JobSpec, SpecQueue, serve_queue

    queue = SpecQueue(tempfile.mkdtemp())
    store = SharedStore(tempfile.mkdtemp())

    job_id = queue.submit(JobSpec(
        kind="sweep", name="table_density",
        sweep=SweepSpec.grid(length_um=[1.0, 10.0]),
    ))
    serve_queue(queue, store, drain=True)

    print(queue.status(job_id)["state"])
    print(len(queue.load_result(job_id)))

See ``docs/SERVICE.md`` for the daemon lifecycle, the HTTP endpoint
contract with curl sessions, and failure semantics.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import (
    DaemonReport,
    JobExecutionError,
    execute_job,
    serve_queue,
)
from repro.service.jobs import (
    JOB_DONE,
    JOB_FAILED,
    JOB_KINDS,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_STATES,
    JobSpec,
)
from repro.service.queue import SpecQueue, UnknownJobError, new_job_id
from repro.service.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ServiceServer,
    make_server,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DaemonReport",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_KINDS",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_STATES",
    "JobExecutionError",
    "JobSpec",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SpecQueue",
    "UnknownJobError",
    "execute_job",
    "make_server",
    "new_job_id",
    "serve_queue",
]
