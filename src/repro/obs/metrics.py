"""Process-local metrics: counters, gauges, histograms, Prometheus text.

One registry per process collects named series with optional labels.
Instruments are cheap (one lock, one dict lookup per update) and always
on -- unlike tracing there is no enable switch, because a handful of
counter bumps per sweep point is noise next to a solver call.

``metrics_snapshot()`` renders the registry as a plain JSON-safe dict
(merged into ``WorkerReport`` and ``GET /health``);
``render_prometheus()`` produces the text exposition format served by
``GET /metrics`` on the service server.

Metric families used across the codebase (see docs/OBSERVABILITY.md for
the full table):

=====================================  =========  =============================
name                                   kind       labels
=====================================  =========  =============================
repro_cache_events_total               counter    outcome=hit|miss
repro_points_executed_total            counter    executor
repro_point_wall_seconds               histogram  --
repro_dispatch_overhead_seconds_total  counter    executor
repro_solver_steps_total               counter    --
repro_solver_iterations_total          counter    --
repro_solver_factorizations_total      counter    --
repro_solver_refreshes_total           counter    --
repro_batch_groups_total               counter    mode=stacked|serial|fallback
repro_batch_group_points               histogram  --
repro_claim_outcomes_total             counter    status
repro_lease_renewals_total             counter    --
repro_jobs_total                       counter    state=done|failed
repro_queue_depth                      gauge      state
repro_http_requests_total              counter    endpoint, method, code
repro_http_request_seconds             histogram  endpoint
=====================================  =========  =============================
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "metrics_snapshot",
    "record_solver_stats",
    "render_prometheus",
    "reset_metrics",
]

DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Point-in-time value that can move both ways."""

    kind = "gauge"
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Bucketed distribution with sum and count (Prometheus-compatible)."""

    kind = "histogram"
    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(
        self, lock: threading.Lock, buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        self._lock = lock
        self.buckets = tuple(sorted(buckets))
        # counts[i] observations fell in (buckets[i-1], buckets[i]];
        # counts[-1] is the +Inf overflow bucket.
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for index, edge in enumerate(self.buckets):
                if value <= edge:
                    self.counts[index] += 1
                    break
            else:
                self.counts[-1] += 1

    def cumulative(self) -> list[int]:
        """Per-bucket cumulative counts, matching Prometheus ``le`` semantics."""
        total = 0
        out = []
        for bucket_count in self.counts:
            total += bucket_count
            out.append(total)
        return out


_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> _LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _series_name(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Thread-safe map of (name, labels) -> instrument."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, _LabelKey], Counter | Gauge | Histogram] = {}

    def _get(self, cls: type, name: str, labels: dict[str, Any], **kwargs: Any) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(self._lock, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] | None = None,
        **labels: Any,
    ) -> Histogram:
        if buckets is None:
            return self._get(Histogram, name, labels)
        return self._get(Histogram, name, labels, buckets=buckets)

    def reset(self) -> None:
        """Drop every registered series (tests and fresh worker runs)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe dump: ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``."""
        with self._lock:
            items = sorted(self._metrics.items())
        out: dict[str, dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for (name, labels), metric in items:
            series = _series_name(name, labels)
            if isinstance(metric, Counter):
                out["counters"][series] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][series] = metric.value
            else:
                out["histograms"][series] = {
                    "count": metric.count,
                    "sum": metric.sum,
                }
        return out

    def render_prometheus(self) -> str:
        """Text exposition format (version 0.0.4) for ``GET /metrics``."""
        with self._lock:
            items = sorted(self._metrics.items())
        lines: list[str] = []
        seen_types: set[str] = set()
        for (name, labels), metric in items:
            if name not in seen_types:
                lines.append(f"# TYPE {name} {metric.kind}")
                seen_types.add(name)
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{_series_name(name, labels)} {_format(metric.value)}")
                continue
            cumulative = metric.cumulative()
            edges = [_format(edge) for edge in metric.buckets] + ["+Inf"]
            for edge, count in zip(edges, cumulative):
                bucket_labels = labels + (("le", edge),)
                lines.append(f"{_series_name(name + '_bucket', bucket_labels)} {count}")
            lines.append(f"{_series_name(name + '_sum', labels)} {_format(metric.sum)}")
            lines.append(f"{_series_name(name + '_count', labels)} {metric.count}")
        return "\n".join(lines) + "\n"


def _format(value: float) -> str:
    # Integral values print without a trailing ".0" -- counters read as
    # counts, and bucket edges match their Python literals.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


REGISTRY = MetricsRegistry()


def counter(name: str, **labels: Any) -> Counter:
    """The process-wide counter for ``name`` + labels (created on first use)."""
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    """The process-wide gauge for ``name`` + labels (created on first use)."""
    return REGISTRY.gauge(name, **labels)


def histogram(
    name: str, buckets: Iterable[float] | None = None, **labels: Any
) -> Histogram:
    """The process-wide histogram for ``name`` + labels (created on first use)."""
    return REGISTRY.histogram(name, buckets=buckets, **labels)


def metrics_snapshot() -> dict[str, Any]:
    """JSON-safe dump of the default registry."""
    return REGISTRY.snapshot()


def render_prometheus() -> str:
    """Prometheus text exposition of the default registry."""
    return REGISTRY.render_prometheus()


def reset_metrics() -> None:
    """Clear the default registry (test isolation)."""
    REGISTRY.reset()


def record_solver_stats(stats: Any) -> None:
    """Absorb one solve's ``SolverStats`` deltas into the solver counters.

    Accepts any object with ``steps`` / ``iterations`` / ``factorizations``
    / ``refreshes`` attributes so :mod:`repro.circuit` need not import
    this module.
    """
    for field in ("steps", "iterations", "factorizations", "refreshes"):
        amount = getattr(stats, field, 0)
        if amount:
            counter(f"repro_solver_{field}_total").inc(amount)
