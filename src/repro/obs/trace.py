"""Zero-dependency distributed tracing: spans, JSONL sinks, carriers.

A *span* is one timed operation (``engine.sweep``, ``worker.point``,
``circuit.transient``).  Spans nest through a :mod:`contextvars` context,
so ``trace_span`` inside ``trace_span`` records the parent/child edge
automatically, and every span of one logical request shares a
``trace_id`` even when the work hops processes or machines.

Records are appended as one JSON line per span to the configured *sink*
file.  Appends go through a single ``os.write`` on an ``O_APPEND``
descriptor, which POSIX keeps atomic for small writes, so any number of
worker processes can share one sink on a common filesystem -- the same
assumption the ``SharedStore`` lease protocol already makes.

Crossing a process/host boundary uses a *carrier*: a small JSON-safe
dict ``{"trace_id", "span_id", "sink"}`` captured with
:func:`current_carrier` on the sending side and adopted with
:func:`activate_carrier` on the receiving side.  The engine passes it to
pool workers as an extra task argument, the stores persist it in lease
metadata, and the HTTP service moves it in the ``X-Repro-Trace`` header.

Tracing is off by default and near-zero-cost when off: ``trace_span``
yields a shared no-op span without touching its attrs, so callable
(lazy) attribute values are never evaluated.  Nothing recorded here can
perturb results -- spans live outside ``params``, cache keys and content
hashes by construction.
"""

from __future__ import annotations

import contextvars
import json
import os
import time
import uuid
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

__all__ = [
    "TRACE_HEADER",
    "activate_carrier",
    "carrier_from_header",
    "carrier_to_header",
    "configure_tracing",
    "current_carrier",
    "trace_sink",
    "trace_span",
    "tracing",
    "tracing_enabled",
]

TRACE_HEADER = "X-Repro-Trace"

# Sink state is deliberately module-global (not a contextvar): enabling
# tracing applies to the whole process, exactly like logging config.
_SINK_PATH: str | None = None
_SINK_FD: int | None = None
_SINK_PID: int | None = None

# (trace_id, span_id) of the innermost open span; context-local so
# concurrent threads (thread executor, HTTP handler threads) each see
# their own ancestry.
_CONTEXT: contextvars.ContextVar[tuple[str, str] | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


def configure_tracing(path: str | None) -> str | None:
    """Set (or, with ``None``, clear) the span sink; returns the previous one."""
    global _SINK_PATH, _SINK_FD, _SINK_PID
    previous = _SINK_PATH
    if _SINK_FD is not None:
        try:
            os.close(_SINK_FD)
        except OSError:
            pass
    _SINK_FD = None
    _SINK_PID = None
    _SINK_PATH = os.path.abspath(path) if path else None
    return previous


def tracing_enabled() -> bool:
    """Whether spans are currently being recorded in this process."""
    return _SINK_PATH is not None


def trace_sink() -> str | None:
    """The active sink path (None when tracing is off)."""
    return _SINK_PATH


@contextmanager
def tracing(path: str | None) -> Iterator[None]:
    """Scoped :func:`configure_tracing`: restores the previous sink on exit."""
    previous = configure_tracing(path)
    try:
        yield
    finally:
        configure_tracing(previous)


def _write_line(text: str) -> None:
    global _SINK_FD, _SINK_PID
    path = _SINK_PATH
    if path is None:
        return
    try:
        pid = os.getpid()
        if _SINK_FD is None or _SINK_PID != pid:
            # Re-open after fork: an inherited descriptor would share the
            # file offset in surprising ways on some platforms.
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            _SINK_FD = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            _SINK_PID = pid
        os.write(_SINK_FD, text.encode("utf-8"))
    except OSError:
        # Tracing must never take down the work it observes.
        pass


class Span:
    """Mutable handle yielded by :func:`trace_span` while recording."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs")

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs

    def set(self, key: str, value: Any) -> None:
        """Attach (or update) one attribute on the open span."""
        self.attrs[key] = value


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()
    name = ""
    trace_id = None
    span_id = None
    parent_id = None
    attrs: dict[str, Any] = {}

    def set(self, key: str, value: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


def _rendered_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    # Callables are lazy attrs: evaluated only here, i.e. only when a
    # real span is being recorded.
    rendered: dict[str, Any] = {}
    for key, value in attrs.items():
        if callable(value):
            try:
                value = value()
            except Exception:
                value = "<error>"
        rendered[key] = value
    return rendered


@contextmanager
def trace_span(name: str, **attrs: Any) -> Iterator[Span | _NoopSpan]:
    """Record one span around the enclosed block (no-op when disabled).

    Attribute values may be zero-argument callables; they are evaluated
    lazily at record time, so expensive attrs cost nothing while tracing
    is off.  The yielded span supports ``span.set(key, value)`` for
    results only known mid-block.
    """
    if _SINK_PATH is None:
        yield _NOOP_SPAN
        return
    parent = _CONTEXT.get()
    if parent is None:
        trace_id, parent_id = _new_id(), None
    else:
        trace_id, parent_id = parent
    span = Span(name, trace_id, _new_id(), parent_id, dict(attrs))
    token = _CONTEXT.set((trace_id, span.span_id))
    t_start = time.time()
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    error: str | None = None
    try:
        yield span
    except BaseException as exc:
        error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        _CONTEXT.reset(token)
        record = {
            "name": span.name,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "t_start": t_start,
            "wall_s": time.perf_counter() - wall_start,
            "cpu_s": time.process_time() - cpu_start,
            "pid": os.getpid(),
            "attrs": _rendered_attrs(span.attrs),
        }
        if error is not None:
            record["error"] = error
        try:
            line = json.dumps(record, default=str, separators=(",", ":"))
        except (TypeError, ValueError):
            line = json.dumps(
                {key: record[key] for key in record if key != "attrs"},
                default=str,
                separators=(",", ":"),
            )
        _write_line(line + "\n")


def current_carrier() -> dict[str, str] | None:
    """Serializable trace context for a process/host hop (None when off).

    The carrier names the open span (future children's parent) and the
    sink path, so a cooperating process can append to the same trace.
    """
    if _SINK_PATH is None:
        return None
    context = _CONTEXT.get()
    if context is None:
        return None
    return {"trace_id": context[0], "span_id": context[1], "sink": _SINK_PATH}


@contextmanager
def activate_carrier(carrier: Mapping[str, Any] | None) -> Iterator[None]:
    """Adopt a remote carrier: spans in the block join its trace.

    If this process has no sink configured, the carrier's sink is used
    for the duration of the block (and restored afterwards) -- that is
    how daemon and pool-worker processes end up writing into the
    submitting client's trace file.  ``None`` or malformed carriers are
    ignored, so call sites never need to guard.
    """
    if (
        not isinstance(carrier, Mapping)
        or not carrier.get("trace_id")
        or not carrier.get("span_id")
    ):
        yield
        return
    restore_sink = False
    previous_sink: str | None = None
    if _SINK_PATH is None and carrier.get("sink"):
        previous_sink = configure_tracing(str(carrier["sink"]))
        restore_sink = True
    token = _CONTEXT.set((str(carrier["trace_id"]), str(carrier["span_id"])))
    try:
        yield
    finally:
        _CONTEXT.reset(token)
        if restore_sink:
            configure_tracing(previous_sink)


def carrier_to_header(carrier: Mapping[str, Any]) -> str:
    """Encode a carrier for the ``X-Repro-Trace`` HTTP header."""
    return json.dumps(dict(carrier), separators=(",", ":"))


def carrier_from_header(value: str | None) -> dict[str, Any] | None:
    """Decode ``X-Repro-Trace``; returns None on absent/malformed input."""
    if not value:
        return None
    try:
        payload = json.loads(value)
    except ValueError:
        return None
    if not isinstance(payload, dict):
        return None
    if not payload.get("trace_id") or not payload.get("span_id"):
        return None
    return payload
