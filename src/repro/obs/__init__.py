"""``repro.obs`` -- zero-dependency tracing and metrics for every layer.

Spans (:mod:`repro.obs.trace`) follow one logical request across the
engine's pool executors, the distributed worker's claim/execute/publish
loop and the HTTP service, sharing a single ``trace_id`` end to end.
Metrics (:mod:`repro.obs.metrics`) collect process-local counters,
gauges and histograms exposed as ``GET /metrics`` Prometheus text and
``metrics_snapshot()`` dicts.  Inspection (:mod:`repro.obs.inspect`)
renders recorded traces for the ``python -m repro trace`` subcommand.

See docs/OBSERVABILITY.md for the span model and the metric-name table.
"""

from repro.obs.inspect import (
    critical_path,
    load_spans,
    render_critical_path,
    render_summary,
    render_tree,
    summarize,
)
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    metrics_snapshot,
    record_solver_stats,
    render_prometheus,
    reset_metrics,
)
from repro.obs.trace import (
    TRACE_HEADER,
    activate_carrier,
    carrier_from_header,
    carrier_to_header,
    configure_tracing,
    current_carrier,
    trace_sink,
    trace_span,
    tracing,
    tracing_enabled,
)

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "TRACE_HEADER",
    "activate_carrier",
    "carrier_from_header",
    "carrier_to_header",
    "configure_tracing",
    "counter",
    "critical_path",
    "current_carrier",
    "gauge",
    "histogram",
    "load_spans",
    "metrics_snapshot",
    "record_solver_stats",
    "render_critical_path",
    "render_prometheus",
    "render_summary",
    "render_tree",
    "reset_metrics",
    "summarize",
    "trace_sink",
    "trace_span",
    "tracing",
    "tracing_enabled",
]
