"""Trace inspection: turn span JSONL sinks into summaries and waterfalls.

Backs the ``python -m repro trace {summary,tree,critical-path}`` CLI.
Input files are the sinks written by :mod:`repro.obs.trace`; loading is
tolerant (truncated or foreign lines are skipped) because many processes
append concurrently and a reader may catch a line mid-write.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

__all__ = [
    "critical_path",
    "load_spans",
    "render_critical_path",
    "render_summary",
    "render_tree",
    "summarize",
]

Span = dict[str, Any]


def load_spans(paths: str | Iterable[str]) -> list[Span]:
    """Read span records from one or more JSONL sinks, oldest first."""
    if isinstance(paths, str):
        paths = [paths]
    spans: list[Span] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and "span_id" in record and "name" in record:
                    spans.append(record)
    spans.sort(key=lambda span: span.get("t_start", 0.0))
    return spans


def summarize(spans: Sequence[Span]) -> list[dict[str, Any]]:
    """Aggregate rows per span name, sorted by total wall time descending."""
    groups: dict[str, list[Span]] = {}
    for span in spans:
        groups.setdefault(span["name"], []).append(span)
    rows = []
    for name, members in groups.items():
        walls = [float(span.get("wall_s", 0.0)) for span in members]
        total = sum(walls)
        rows.append(
            {
                "span": name,
                "count": len(members),
                "total_s": round(total, 6),
                "mean_s": round(total / len(members), 6),
                "max_s": round(max(walls), 6),
                "cpu_s": round(
                    sum(float(span.get("cpu_s", 0.0)) for span in members), 6
                ),
            }
        )
    rows.sort(key=lambda row: row["total_s"], reverse=True)
    return rows


def _header(spans: Sequence[Span]) -> str:
    traces = {span.get("trace_id") for span in spans}
    pids = {span.get("pid") for span in spans}
    return (
        f"{len(spans)} spans, {len(traces)} trace(s), "
        f"{len(pids)} process(es)"
    )


def render_summary(spans: Sequence[Span]) -> str:
    """Per-name aggregate table for ``repro trace summary``."""
    from repro.analysis.report import format_table

    if not spans:
        return "no spans"
    return format_table(summarize(spans), title=_header(spans))


def _children_index(spans: Sequence[Span]) -> dict[str | None, list[Span]]:
    children: dict[str | None, list[Span]] = {}
    known = {span["span_id"] for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        # A span whose parent never got recorded (e.g. the parent process
        # is still running) renders as a root rather than vanishing.
        if parent is not None and parent not in known:
            parent = None
        children.setdefault(parent, []).append(span)
    for members in children.values():
        members.sort(key=lambda span: span.get("t_start", 0.0))
    return children


def _attr_text(span: Span) -> str:
    attrs = span.get("attrs") or {}
    if not isinstance(attrs, dict) or not attrs:
        return ""
    inner = " ".join(f"{key}={value}" for key, value in attrs.items())
    if len(inner) > 60:
        inner = inner[:57] + "..."
    return f" [{inner}]"


def _span_line(span: Span, depth: int) -> str:
    wall = float(span.get("wall_s", 0.0))
    error = " ERROR" if span.get("error") else ""
    return (
        f"{'  ' * depth}{span['name']}  {wall * 1000:.1f} ms  "
        f"(pid {span.get('pid', '?')}){_attr_text(span)}{error}"
    )


def render_tree(spans: Sequence[Span], max_children: int = 20) -> str:
    """Indented parent/child waterfall for ``repro trace tree``.

    Sibling lists longer than ``max_children`` are elided with a count,
    so a 500-point sweep stays readable.
    """
    if not spans:
        return "no spans"
    children = _children_index(spans)
    lines = [_header(spans)]

    def walk(span: Span, depth: int) -> None:
        lines.append(_span_line(span, depth))
        kids = children.get(span["span_id"], [])
        shown = kids if len(kids) <= max_children else kids[:max_children]
        for kid in shown:
            walk(kid, depth + 1)
        if len(kids) > len(shown):
            lines.append(f"{'  ' * (depth + 1)}... {len(kids) - len(shown)} more")

    by_trace: dict[str, list[Span]] = {}
    for root in children.get(None, []):
        by_trace.setdefault(root.get("trace_id", "?"), []).append(root)
    for trace_id, roots in by_trace.items():
        lines.append(f"trace {trace_id}:")
        for root in roots:
            walk(root, 1)
    return "\n".join(lines)


def critical_path(spans: Sequence[Span]) -> list[Span]:
    """The slowest root-to-leaf span chain (greedy by child wall time)."""
    if not spans:
        return []
    children = _children_index(spans)
    roots = children.get(None, [])
    if not roots:
        return []
    span = max(roots, key=lambda candidate: float(candidate.get("wall_s", 0.0)))
    path = [span]
    while True:
        kids = children.get(span["span_id"], [])
        if not kids:
            return path
        span = max(kids, key=lambda candidate: float(candidate.get("wall_s", 0.0)))
        path.append(span)


def render_critical_path(spans: Sequence[Span]) -> str:
    """Slowest chain with per-hop share for ``repro trace critical-path``."""
    path = critical_path(spans)
    if not path:
        return "no spans"
    total = float(path[0].get("wall_s", 0.0)) or 1.0
    lines = [f"critical path ({len(path)} spans, {total * 1000:.1f} ms total):"]
    for depth, span in enumerate(path):
        wall = float(span.get("wall_s", 0.0))
        lines.append(
            f"{'  ' * depth}{span['name']}  {wall * 1000:.1f} ms  "
            f"({100.0 * wall / total:.0f}%){_attr_text(span)}"
        )
    return "\n".join(lines)
