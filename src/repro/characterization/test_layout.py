"""Electrical test-structure layout generator (paper Fig. 13a).

The paper designed a dedicated test layout for full-wafer electrical and
electromigration characterisation: "Apart from single line structures varying
width, length and angle also multi-line structures, comb structures,
extrusion monitors and via test patterns are included.  To emulate advanced
nodes, part of the layout is designed for E-beam lithography to generate
lines with 50 nm widths."  This module generates that structure inventory as
data (structure type, geometry, purpose, lithography layer), which the wafer
-level characterisation benchmarks iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class StructureKind(Enum):
    """Kinds of test structures on the layout."""

    SINGLE_LINE = "single line"
    MULTI_LINE = "multi-line"
    COMB = "comb"
    EXTRUSION_MONITOR = "extrusion monitor"
    VIA_CHAIN = "via chain"
    TLM = "TLM"


class Lithography(Enum):
    """Patterning technology of a structure."""

    OPTICAL = "optical"
    EBEAM = "e-beam"


@dataclass(frozen=True)
class TestStructure:
    """One structure of the test layout.

    Attributes
    ----------
    name:
        Unique structure name.
    kind:
        Structure kind.
    width:
        Line width in metre.
    length:
        Line length in metre (or chain length for via chains).
    angle_degrees:
        Line orientation in degrees.
    n_elements:
        Number of parallel lines / comb fingers / vias in the structure.
    lithography:
        Patterning technology (50 nm-wide structures need e-beam).
    purpose:
        Human-readable measurement purpose.
    """

    name: str
    kind: StructureKind
    width: float
    length: float
    angle_degrees: float = 0.0
    n_elements: int = 1
    lithography: Lithography = Lithography.OPTICAL
    purpose: str = ""

    def __post_init__(self) -> None:
        if self.width <= 0 or self.length <= 0:
            raise ValueError("width and length must be positive")
        if self.n_elements < 1:
            raise ValueError("a structure needs at least one element")


@dataclass(frozen=True)
class TestLayout:
    """A complete test layout: a named collection of test structures."""

    name: str
    structures: tuple[TestStructure, ...] = field(default_factory=tuple)

    def by_kind(self, kind: StructureKind) -> list[TestStructure]:
        """All structures of one kind."""
        return [s for s in self.structures if s.kind is kind]

    def ebeam_structures(self) -> list[TestStructure]:
        """Structures requiring e-beam lithography (advanced-node emulation)."""
        return [s for s in self.structures if s.lithography is Lithography.EBEAM]

    def minimum_width(self) -> float:
        """Smallest line width on the layout in metre."""
        return min(s.width for s in self.structures)

    @property
    def n_structures(self) -> int:
        """Total number of structures."""
        return len(self.structures)


EBEAM_WIDTH_THRESHOLD = 100.0e-9
"""Line widths below this are assigned to e-beam lithography."""


def generate_test_layout(
    widths: tuple[float, ...] = (50.0e-9, 100.0e-9, 200.0e-9, 500.0e-9, 1.0e-6),
    lengths: tuple[float, ...] = (5.0e-6, 20.0e-6, 100.0e-6, 500.0e-6),
    angles: tuple[float, ...] = (0.0, 45.0, 90.0),
    name: str = "CONNECT EM test layout",
) -> TestLayout:
    """Generate the Fig. 13a-style test layout.

    Single lines are created for every (width, length, angle) combination;
    multi-line, comb, extrusion-monitor, via-chain and TLM structures are
    added per width.

    Returns
    -------
    TestLayout
    """
    if not widths or not lengths or not angles:
        raise ValueError("need at least one width, length and angle")

    structures: list[TestStructure] = []

    def litho(width: float) -> Lithography:
        return Lithography.EBEAM if width < EBEAM_WIDTH_THRESHOLD else Lithography.OPTICAL

    for width in widths:
        for length in lengths:
            for angle in angles:
                structures.append(
                    TestStructure(
                        name=f"line_w{width*1e9:.0f}n_l{length*1e6:.0f}u_a{angle:.0f}",
                        kind=StructureKind.SINGLE_LINE,
                        width=width,
                        length=length,
                        angle_degrees=angle,
                        lithography=litho(width),
                        purpose="sheet resistance / EM baseline",
                    )
                )
        structures.append(
            TestStructure(
                name=f"multiline_w{width*1e9:.0f}n",
                kind=StructureKind.MULTI_LINE,
                width=width,
                length=max(lengths),
                n_elements=5,
                lithography=litho(width),
                purpose="line-to-line leakage and crosstalk",
            )
        )
        structures.append(
            TestStructure(
                name=f"comb_w{width*1e9:.0f}n",
                kind=StructureKind.COMB,
                width=width,
                length=max(lengths) / 2,
                n_elements=20,
                lithography=litho(width),
                purpose="dielectric integrity / shorts",
            )
        )
        structures.append(
            TestStructure(
                name=f"extrusion_w{width*1e9:.0f}n",
                kind=StructureKind.EXTRUSION_MONITOR,
                width=width,
                length=max(lengths) / 2,
                n_elements=2,
                lithography=litho(width),
                purpose="EM extrusion detection",
            )
        )
        structures.append(
            TestStructure(
                name=f"viachain_w{width*1e9:.0f}n",
                kind=StructureKind.VIA_CHAIN,
                width=width,
                length=min(lengths),
                n_elements=100,
                lithography=litho(width),
                purpose="via resistance and EM",
            )
        )
        structures.append(
            TestStructure(
                name=f"tlm_w{width*1e9:.0f}n",
                kind=StructureKind.TLM,
                width=width,
                length=max(lengths),
                n_elements=len(lengths),
                lithography=litho(width),
                purpose="contact resistance extraction",
            )
        )

    return TestLayout(name=name, structures=tuple(structures))
