"""Characterization & electrical measurement emulation (paper Section IV).

The paper's fourth pillar is measurement: a dedicated test layout for
electromigration studies, transmission-line measurements (TLM) to separate
contact resistance from the CNT resistance per unit length, I-V
characterisation of doped devices (Fig. 2d) and thermal mapping.  Since no
probe station is available to a reproduction, this subpackage provides both
the *extraction algorithms* the paper describes and synthetic-measurement
generators driven by the physical models, so the full measure-then-extract
loop can be exercised:

* :mod:`repro.characterization.tlm` -- transmission-line measurement extraction,
* :mod:`repro.characterization.iv` -- I-V sweeps, breakdown, doping before/after,
* :mod:`repro.characterization.electromigration` -- Black's-equation lifetimes
  and ampacity stress tests,
* :mod:`repro.characterization.test_layout` -- the Fig. 13a test-structure
  layout generator,
* :mod:`repro.characterization.raman` -- Raman D/G defect metric emulation.
"""

from repro.characterization.tlm import TLMExtraction, simulate_tlm_data, extract_tlm
from repro.characterization.iv import IVSweep, simulate_iv_sweep, doping_comparison_iv
from repro.characterization.electromigration import (
    blacks_lifetime,
    em_stress_test,
    EMStressResult,
)
from repro.characterization.test_layout import TestLayout, generate_test_layout
from repro.characterization.raman import simulate_raman_spectrum, d_over_g_ratio

__all__ = [
    "TLMExtraction",
    "simulate_tlm_data",
    "extract_tlm",
    "IVSweep",
    "simulate_iv_sweep",
    "doping_comparison_iv",
    "blacks_lifetime",
    "em_stress_test",
    "EMStressResult",
    "TestLayout",
    "generate_test_layout",
    "simulate_raman_spectrum",
    "d_over_g_ratio",
]
