"""I-V measurement emulation: linear transport, breakdown and doping response.

Fig. 2d of the paper shows the electrical characterisation of a
side-contacted MWCNT before and after PtCl4 doping -- the resistance drops
after charge-transfer doping.  This module generates such I-V sweeps from the
compact models (ohmic response with current saturation and a breakdown
current), and provides the before/after doping comparison as a ready-made
experiment (E6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import CNT_MAX_CURRENT_PER_TUBE
from repro.core.doping import DopingProfile
from repro.core.mwcnt import MWCNTInterconnect


@dataclass(frozen=True)
class IVSweep:
    """A simulated I-V sweep.

    Attributes
    ----------
    voltages:
        Applied bias in volt.
    currents:
        Measured current in ampere (NaN after breakdown).
    low_bias_resistance:
        Extracted low-bias resistance in ohm.
    breakdown_voltage:
        Bias at which the device failed, or None if it survived the sweep.
    """

    voltages: np.ndarray
    currents: np.ndarray
    low_bias_resistance: float
    breakdown_voltage: float | None

    @property
    def survived(self) -> bool:
        """True when the device did not break down during the sweep."""
        return self.breakdown_voltage is None


def saturation_current(device: MWCNTInterconnect) -> float:
    """Current-saturation level of a MWCNT device in ampere.

    Each conducting shell saturates around the per-tube limit the paper quotes
    (20-25 uA for a ~1 nm channel); the device-level limit scales with the
    number of shells.
    """
    per_shell = CNT_MAX_CURRENT_PER_TUBE
    return per_shell * device.shell_count


def simulate_iv_sweep(
    device: MWCNTInterconnect,
    max_voltage: float = 2.0,
    n_points: int = 201,
    breakdown_current: float | None = None,
    noise_fraction: float = 0.01,
    seed: int | None = 0,
) -> IVSweep:
    """Simulate an I-V sweep of a contacted MWCNT interconnect.

    The response is ohmic at low bias, saturates smoothly towards the
    shell-limited saturation current at high bias (optical-phonon emission)
    and breaks down permanently when the current exceeds ``breakdown_current``.

    Parameters
    ----------
    device:
        The MWCNT compact model under test (include its contact resistance).
    max_voltage:
        Sweep end point in volt.
    n_points:
        Number of sweep points.
    breakdown_current:
        Current in ampere at which the device fails; defaults to 1.5x the
        saturation current (no failure within a normal sweep).
    noise_fraction:
        Relative measurement noise.
    seed:
        Random seed.

    Returns
    -------
    IVSweep
    """
    if max_voltage <= 0:
        raise ValueError("max voltage must be positive")
    if n_points < 3:
        raise ValueError("need at least 3 sweep points")
    if noise_fraction < 0:
        raise ValueError("noise fraction cannot be negative")

    resistance = device.resistance
    i_sat = saturation_current(device)
    i_break = breakdown_current if breakdown_current is not None else 1.5 * i_sat

    rng = np.random.default_rng(seed)
    voltages = np.linspace(0.0, max_voltage, n_points)
    currents = np.empty(n_points)
    breakdown_voltage = None
    broken = False
    for index, bias in enumerate(voltages):
        if broken:
            currents[index] = np.nan
            continue
        linear = bias / resistance
        # Smooth saturation: I = I_sat * tanh(I_linear / I_sat).
        current = i_sat * np.tanh(linear / i_sat) if i_sat > 0 else linear
        current *= 1.0 + rng.normal(0.0, noise_fraction)
        if current >= i_break:
            breakdown_voltage = float(bias)
            broken = True
            currents[index] = np.nan
            continue
        currents[index] = current

    valid = ~np.isnan(currents)
    low_bias = valid & (voltages <= 0.2 * max_voltage) & (voltages > 0)
    if low_bias.sum() >= 2:
        slope = np.polyfit(voltages[low_bias], currents[low_bias], 1)[0]
        low_bias_resistance = 1.0 / slope if slope > 0 else float("inf")
    else:
        low_bias_resistance = resistance

    return IVSweep(
        voltages=voltages,
        currents=currents,
        low_bias_resistance=float(low_bias_resistance),
        breakdown_voltage=breakdown_voltage,
    )


def doping_comparison_iv(
    outer_diameter: float = 7.5e-9,
    length: float = 10.0e-6,
    contact_resistance: float = 20.0e3,
    doped_channels: float = 4.0,
    dopant: str = "PtCl4",
    defect_mfp: float = 200.0e-9,
    max_voltage: float = 1.0,
    seed: int | None = 0,
) -> dict[str, IVSweep]:
    """The Fig. 2d experiment: I-V of the same MWCNT before and after doping.

    Returns a dictionary with ``"pristine"`` and ``"doped"`` sweeps; the doped
    device shows a lower low-bias resistance (higher current at the same
    bias), which is the observable the paper reports.  The default device is
    a CVD-grown (defect-limited mean free path ~200 nm) side-contacted MWCNT
    whose intrinsic resistance is comparable to its contact resistance, as in
    the measured devices of Fig. 2.
    """
    pristine_device = MWCNTInterconnect(
        outer_diameter=outer_diameter,
        length=length,
        contact_resistance=contact_resistance,
        defect_mfp=defect_mfp,
    )
    doped_profile = (
        DopingProfile.ptcl4(doped_channels)
        if dopant.lower() == "ptcl4"
        else DopingProfile.from_channels(doped_channels, dopant=dopant)
    )
    doped_device = pristine_device.with_doping(doped_profile)
    return {
        "pristine": simulate_iv_sweep(pristine_device, max_voltage=max_voltage, seed=seed),
        "doped": simulate_iv_sweep(doped_device, max_voltage=max_voltage, seed=seed),
    }
