"""Transmission-line-measurement (TLM) extraction (paper Section IV.B).

"The resistance of a CNT line always consists of two parts, the contact
resistance and the resistance of the CNT itself.  For obtaining the contact
resistance and CNT resistance per unit length, the transmission line
measurement technique can be used: MWCNTs of different lengths are contacted
and the resistance of the resulting structure is measured.  By correlating
line length with total resistance, contact resistance and CNT resistance per
unit length can be extracted."

This module provides exactly that: a synthetic-measurement generator (driven
by the MWCNT compact model plus measurement noise) and the linear-regression
extraction with confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.mwcnt import MWCNTInterconnect


@dataclass(frozen=True)
class TLMMeasurement:
    """One TLM data point: a contacted line of known length and measured resistance."""

    length: float
    """Contacted CNT length in metre."""
    resistance: float
    """Measured two-terminal resistance in ohm."""


@dataclass(frozen=True)
class TLMExtraction:
    """Result of a TLM linear regression.

    Attributes
    ----------
    contact_resistance:
        Extrapolated total contact resistance (both contacts) in ohm -- the
        intercept of the resistance-versus-length line.
    resistance_per_length:
        CNT resistance per unit length in ohm per metre -- the slope.
    contact_resistance_stderr, resistance_per_length_stderr:
        Standard errors of the two fitted parameters.
    r_squared:
        Coefficient of determination of the fit.
    """

    contact_resistance: float
    resistance_per_length: float
    contact_resistance_stderr: float
    resistance_per_length_stderr: float
    r_squared: float

    def transfer_length(self) -> float:
        """Length at which line resistance equals the contact resistance (metre)."""
        if self.resistance_per_length <= 0:
            return float("inf")
        return self.contact_resistance / self.resistance_per_length

    def confidence_interval_contact(self, sigma: float = 2.0) -> tuple[float, float]:
        """(low, high) confidence interval of the contact resistance."""
        return (
            self.contact_resistance - sigma * self.contact_resistance_stderr,
            self.contact_resistance + sigma * self.contact_resistance_stderr,
        )


def simulate_tlm_data(
    device: MWCNTInterconnect,
    lengths: list[float] | np.ndarray,
    contact_resistance: float = 20.0e3,
    noise_fraction: float = 0.03,
    seed: int | None = 0,
) -> list[TLMMeasurement]:
    """Generate synthetic TLM measurements of a MWCNT device family.

    Parameters
    ----------
    device:
        Template MWCNT compact model; each measurement uses a copy with one of
        the requested lengths.
    lengths:
        Contacted lengths in metre (at least two distinct values).
    contact_resistance:
        True total contact resistance added to every device in ohm.
    noise_fraction:
        Relative 1-sigma measurement noise.
    seed:
        Random seed (None for non-reproducible noise).

    Returns
    -------
    list of TLMMeasurement
    """
    lengths = np.asarray(list(lengths), dtype=float)
    if lengths.size < 2 or np.unique(lengths).size < 2:
        raise ValueError("TLM needs at least two distinct lengths")
    if np.any(lengths <= 0):
        raise ValueError("lengths must be positive")
    if noise_fraction < 0:
        raise ValueError("noise fraction cannot be negative")

    rng = np.random.default_rng(seed)
    measurements = []
    for length in lengths:
        sample = device.with_length(float(length))
        true_resistance = sample.resistance + contact_resistance
        measured = true_resistance * (1.0 + rng.normal(0.0, noise_fraction))
        measurements.append(TLMMeasurement(length=float(length), resistance=float(measured)))
    return measurements


def extract_tlm(measurements: list[TLMMeasurement]) -> TLMExtraction:
    """Linear-regression TLM extraction from resistance-versus-length data.

    Returns
    -------
    TLMExtraction
        Contact resistance (intercept), resistance per unit length (slope),
        their standard errors and the fit quality.
    """
    if len(measurements) < 2:
        raise ValueError("need at least two measurements")
    lengths = np.array([m.length for m in measurements])
    resistances = np.array([m.resistance for m in measurements])
    if np.unique(lengths).size < 2:
        raise ValueError("need at least two distinct lengths")

    result = stats.linregress(lengths, resistances)
    slope_err = float(result.stderr) if result.stderr is not None else 0.0
    intercept_err = float(result.intercept_stderr) if result.intercept_stderr is not None else 0.0
    return TLMExtraction(
        contact_resistance=float(result.intercept),
        resistance_per_length=float(result.slope),
        contact_resistance_stderr=intercept_err,
        resistance_per_length_stderr=slope_err,
        r_squared=float(result.rvalue**2),
    )


def tlm_round_trip(
    device: MWCNTInterconnect,
    lengths: list[float],
    contact_resistance: float = 20.0e3,
    noise_fraction: float = 0.03,
    seed: int | None = 0,
) -> tuple[TLMExtraction, float, float]:
    """Convenience measure-then-extract round trip.

    Returns the extraction together with the true contact resistance and the
    true resistance per unit length of the device (diffusive slope), so
    accuracy can be assessed directly -- this is what the TLM benchmark (E9)
    reports.
    """
    data = simulate_tlm_data(device, lengths, contact_resistance, noise_fraction, seed)
    extraction = extract_tlm(data)
    true_slope = device.resistance_per_length
    true_contact = contact_resistance + device.lumped_contact_resistance
    return extraction, true_contact, true_slope
