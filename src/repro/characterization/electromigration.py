"""Electromigration lifetimes and ampacity stress testing (paper Section IV.A).

The paper's test layout exists "for a detailed electrical characterization
... with the focus on reliability improvement for small dimensions regarding
ampacity and electromigration resistance".  Electromigration lifetime follows
Black's equation; CNTs, being essentially immune to electromigration, are
modelled with a far higher activation energy and current-density exponent
threshold, which is how the composite's reliability gain shows up in the
stress-test results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import (
    BOLTZMANN_EV,
    CNT_MAX_CURRENT_DENSITY,
    COPPER_EM_CURRENT_DENSITY_LIMIT,
)

COPPER_EM_ACTIVATION_EV = 0.9
"""Electromigration activation energy of damascene copper in eV."""

CNT_EM_ACTIVATION_EV = 2.5
"""Effective activation energy of CNT failure (sp2 bonds; essentially EM-immune)."""

BLACK_CURRENT_EXPONENT = 2.0
"""Current-density exponent ``n`` of Black's equation."""

_BLACK_PREFACTOR_COPPER = 1.0e-2
"""Prefactor chosen so a Cu line at its EM limit and 105 C lasts ~10 years."""


def blacks_lifetime(
    current_density: float,
    temperature: float,
    activation_energy_ev: float = COPPER_EM_ACTIVATION_EV,
    current_exponent: float = BLACK_CURRENT_EXPONENT,
    prefactor: float | None = None,
) -> float:
    """Median time to failure from Black's equation, in second.

    ``MTTF = A * j^-n * exp(Ea / kT)``

    Parameters
    ----------
    current_density:
        Stress current density in ampere per square metre.
    temperature:
        Stress temperature in kelvin.
    activation_energy_ev:
        Activation energy in eV.
    current_exponent:
        Current-density exponent ``n``.
    prefactor:
        Technology prefactor ``A``; the default is calibrated so that copper
        at its quoted EM limit (1e6 A/cm^2) and 378 K lasts about ten years.
    """
    if current_density <= 0:
        raise ValueError("current density must be positive")
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    a = prefactor if prefactor is not None else _calibrated_copper_prefactor()
    return (
        a
        * current_density ** (-current_exponent)
        * math.exp(activation_energy_ev / (BOLTZMANN_EV * temperature))
    )


def _calibrated_copper_prefactor() -> float:
    """Prefactor giving ~10 years at the Cu EM limit and 378 K (105 C)."""
    ten_years = 10.0 * 365.0 * 24.0 * 3600.0
    reference = (
        COPPER_EM_CURRENT_DENSITY_LIMIT ** (-BLACK_CURRENT_EXPONENT)
        * math.exp(COPPER_EM_ACTIVATION_EV / (BOLTZMANN_EV * 378.0))
    )
    return ten_years / reference


@dataclass(frozen=True)
class EMStressResult:
    """Outcome of an accelerated electromigration stress test.

    Attributes
    ----------
    material:
        "copper", "cnt" or "composite".
    current_density:
        Stress current density in ampere per square metre.
    temperature:
        Stress temperature in kelvin.
    median_lifetime:
        Median time to failure in second.
    immediate_failure:
        True when the stress current exceeds the material's hard breakdown
        limit (the device fails at turn-on rather than by electromigration).
    """

    material: str
    current_density: float
    temperature: float
    median_lifetime: float
    immediate_failure: bool

    @property
    def lifetime_years(self) -> float:
        """Median lifetime in years (0 for immediate failures)."""
        if self.immediate_failure:
            return 0.0
        return self.median_lifetime / (365.0 * 24.0 * 3600.0)


def em_stress_test(
    material: str,
    current_density: float,
    temperature: float = 378.0,
    cnt_fraction: float = 0.3,
) -> EMStressResult:
    """Accelerated EM stress test of a copper, CNT or Cu-CNT composite line.

    Parameters
    ----------
    material:
        ``"copper"``, ``"cnt"`` or ``"composite"``.
    current_density:
        Stress current density in ampere per square metre.
    temperature:
        Stress temperature in kelvin.
    cnt_fraction:
        CNT volume fraction of the composite (only used for "composite").

    Returns
    -------
    EMStressResult
    """
    material = material.lower()
    if material == "copper":
        immediate = current_density > 50.0 * COPPER_EM_CURRENT_DENSITY_LIMIT
        lifetime = blacks_lifetime(current_density, temperature)
    elif material == "cnt":
        immediate = current_density > CNT_MAX_CURRENT_DENSITY
        lifetime = blacks_lifetime(
            current_density, temperature, activation_energy_ev=CNT_EM_ACTIVATION_EV
        )
    elif material == "composite":
        if not 0.0 < cnt_fraction < 1.0:
            raise ValueError("composite CNT fraction must lie in (0, 1)")
        immediate = current_density > CNT_MAX_CURRENT_DENSITY
        # The copper matrix still electromigrates, but the CNT scaffold keeps
        # carrying current and heals the effective divergence sites; model as a
        # lifetime multiplier growing with the CNT fraction (literature
        # composite demonstrations support 10-100x).
        copper_lifetime = blacks_lifetime(current_density, temperature)
        boost = 1.0 + 100.0 * cnt_fraction
        lifetime = copper_lifetime * boost
    else:
        raise ValueError("material must be 'copper', 'cnt' or 'composite'")

    return EMStressResult(
        material=material,
        current_density=current_density,
        temperature=temperature,
        median_lifetime=0.0 if immediate else lifetime,
        immediate_failure=immediate,
    )


def lifetime_comparison(
    current_density: float = COPPER_EM_CURRENT_DENSITY_LIMIT,
    temperature: float = 378.0,
) -> dict[str, EMStressResult]:
    """Copper vs CNT vs composite lifetimes at the same stress conditions."""
    return {
        material: em_stress_test(material, current_density, temperature)
        for material in ("copper", "cnt", "composite")
    }
