"""Raman spectroscopy emulation: the D/G defect metric.

The paper characterises Co-catalyst CNT growth by SEM and Raman spectroscopy
(Section II.B).  For CNTs the key Raman observable is the ratio of the
defect-activated D band (~1350 cm^-1) to the graphitic G band (~1590 cm^-1):
higher D/G means more defective material.  This module synthesises simple
two-Lorentzian spectra from a growth quality and recovers the D/G ratio from
a spectrum, closing the measure-then-extract loop used by the growth-window
benchmark (E10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.process.defects import raman_d_over_g

D_BAND_CENTER = 1350.0
"""D-band centre in 1/cm."""

G_BAND_CENTER = 1590.0
"""G-band centre in 1/cm."""

BAND_WIDTH = 30.0
"""Lorentzian half-width of both bands in 1/cm."""


@dataclass(frozen=True)
class RamanSpectrum:
    """A synthetic Raman spectrum.

    Attributes
    ----------
    wavenumbers:
        Raman shift axis in 1/cm.
    intensities:
        Intensity in arbitrary units.
    """

    wavenumbers: np.ndarray
    intensities: np.ndarray


def _lorentzian(x: np.ndarray, centre: float, width: float) -> np.ndarray:
    return width**2 / ((x - centre) ** 2 + width**2)


def simulate_raman_spectrum(
    quality: float,
    noise: float = 0.01,
    n_points: int = 1200,
    seed: int | None = 0,
) -> RamanSpectrum:
    """Synthesise the Raman spectrum of CNT material of a given growth quality.

    Parameters
    ----------
    quality:
        Growth quality in (0, 1] (see :mod:`repro.process.defects`).
    noise:
        Relative intensity noise (1-sigma).
    n_points:
        Number of spectral points between 1100 and 1800 cm^-1.
    seed:
        Random seed.

    Returns
    -------
    RamanSpectrum
    """
    if noise < 0:
        raise ValueError("noise cannot be negative")
    if n_points < 100:
        raise ValueError("need at least 100 spectral points")
    target_ratio = raman_d_over_g(quality)

    wavenumbers = np.linspace(1100.0, 1800.0, n_points)
    g_band = _lorentzian(wavenumbers, G_BAND_CENTER, BAND_WIDTH)
    d_band = target_ratio * _lorentzian(wavenumbers, D_BAND_CENTER, BAND_WIDTH)
    rng = np.random.default_rng(seed)
    intensities = (g_band + d_band) * (1.0 + rng.normal(0.0, noise, size=wavenumbers.shape))
    return RamanSpectrum(wavenumbers=wavenumbers, intensities=intensities)


def d_over_g_ratio(spectrum: RamanSpectrum, window: float = 50.0) -> float:
    """Extract the D/G intensity ratio from a spectrum.

    The band intensities are taken as the maximum intensity within ``window``
    of the nominal band centres, as a fit-free estimator robust to noise.
    """
    wavenumbers = spectrum.wavenumbers
    intensities = spectrum.intensities

    def peak(centre: float) -> float:
        mask = np.abs(wavenumbers - centre) <= window
        if not mask.any():
            raise ValueError(f"spectrum does not cover the {centre} 1/cm band")
        return float(intensities[mask].max())

    g_intensity = peak(G_BAND_CENTER)
    if g_intensity <= 0:
        raise ValueError("G band intensity is not positive")
    return peak(D_BAND_CENTER) / g_intensity
