"""Full-wafer electrical test campaign (paper Section IV.A).

"The aim is to do a full wafer electrical characterization to enable the
transfer from lab to manufacturing."  This module combines the test-structure
layout (Fig. 13a), the wafer uniformity map (Fig. 5 / 13b) and the
variability models into a simulated test campaign: every die on the wafer
carries the test layout, each structure is "measured" through the physical
models with die-dependent process shifts, and the campaign is summarised the
way a fab report would be (per-structure statistics, yield against a spec,
wafer-edge effects).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.characterization.test_layout import StructureKind, TestLayout, generate_test_layout
from repro.core.copper import CopperInterconnect
from repro.core.mwcnt import MWCNTInterconnect
from repro.process.defects import defect_limited_mfp
from repro.process.wafer import WaferMap, simulate_wafer_growth


@dataclass(frozen=True)
class DieMeasurement:
    """One measured structure on one die.

    Attributes
    ----------
    die_x, die_y:
        Die centre coordinates in metre.
    structure_name:
        Name of the measured test structure.
    kind:
        Structure kind.
    resistance:
        Measured resistance in ohm.
    passes_spec:
        Whether the measurement falls inside the specification window.
    """

    die_x: float
    die_y: float
    structure_name: str
    kind: StructureKind
    resistance: float
    passes_spec: bool


@dataclass(frozen=True)
class WaferTestCampaign:
    """Results of a simulated full-wafer electrical characterisation.

    Attributes
    ----------
    technology_label:
        "Cu reference" or "Cu-CNT composite" style label.
    measurements:
        Every (die, structure) measurement.
    wafer:
        The underlying process wafer map.
    """

    technology_label: str
    measurements: tuple[DieMeasurement, ...]
    wafer: WaferMap

    @property
    def n_measurements(self) -> int:
        """Total number of measurements."""
        return len(self.measurements)

    def yield_fraction(self) -> float:
        """Fraction of measurements inside the specification window."""
        if not self.measurements:
            return float("nan")
        return sum(m.passes_spec for m in self.measurements) / len(self.measurements)

    def statistics_by_kind(self) -> list[dict]:
        """Mean / sigma / yield of the resistance per structure kind."""
        rows = []
        for kind in StructureKind:
            values = np.array(
                [m.resistance for m in self.measurements if m.kind is kind and np.isfinite(m.resistance)]
            )
            if values.size == 0:
                continue
            passed = [m.passes_spec for m in self.measurements if m.kind is kind]
            rows.append(
                {
                    "kind": kind.value,
                    "n": int(values.size),
                    "mean_ohm": float(values.mean()),
                    "sigma_ohm": float(values.std()),
                    "cv": float(values.std() / values.mean()) if values.mean() > 0 else float("nan"),
                    "yield": float(np.mean(passed)),
                }
            )
        return rows

    def edge_to_centre_ratio(self) -> float:
        """Mean single-line resistance at the wafer edge over the centre.

        Values above 1 reflect the radial process gradient (slower growth /
        thinner metal towards the edge), the main uniformity concern of the
        300 mm demonstration.
        """
        singles = [m for m in self.measurements if m.kind is StructureKind.SINGLE_LINE]
        if not singles:
            return float("nan")
        radius = np.array([np.hypot(m.die_x, m.die_y) for m in singles])
        resistance = np.array([m.resistance for m in singles])
        threshold = np.median(radius)
        centre = resistance[radius <= threshold].mean()
        edge = resistance[radius > threshold].mean()
        return float(edge / centre) if centre > 0 else float("nan")


def _structure_resistance(
    structure, metric_scale: float, technology: str, rng: np.random.Generator
) -> float:
    """Nominal resistance of one structure under a die-level process scale."""
    noise = 1.0 + rng.normal(0.0, 0.02)
    if technology == "copper":
        line = CopperInterconnect(
            width=structure.width,
            height=max(structure.width / 2.0, 20e-9),
            length=structure.length,
        )
        base = line.resistance
    else:
        # Cu-CNT / CNT structures: growth metric scales the conducting quality.
        quality = min(1.0, 0.5 + 0.5 * metric_scale)
        tube = MWCNTInterconnect(
            outer_diameter=10e-9,
            length=structure.length,
            contact_resistance=30e3,
            defect_mfp=defect_limited_mfp(quality),
        )
        # Bundle several tubes across the structure width.
        tubes_in_parallel = max(1, int(structure.width / 20e-9))
        base = tube.resistance / tubes_in_parallel

    if structure.kind is StructureKind.VIA_CHAIN:
        base = base * 0.1 + structure.n_elements * 2.0  # chain of via resistances
    elif structure.kind is StructureKind.MULTI_LINE:
        base = base / structure.n_elements
    elif structure.kind in (StructureKind.COMB, StructureKind.EXTRUSION_MONITOR):
        # Isolation structures: report leakage resistance instead (very high).
        return float(1e12 * noise)
    # The die-level growth/thickness metric scales the conductive cross-section.
    return float(base / max(metric_scale, 0.1) * noise)


def run_wafer_campaign(
    technology: str = "cnt",
    layout: TestLayout | None = None,
    wafer: WaferMap | None = None,
    spec_window: tuple[float, float] = (0.5, 2.0),
    max_dies: int | None = 60,
    seed: int | None = 0,
) -> WaferTestCampaign:
    """Simulate a full-wafer electrical characterisation campaign.

    Parameters
    ----------
    technology:
        ``"copper"`` for the Cu reference wafer of Fig. 13b or ``"cnt"`` for
        the Cu-CNT development wafer.
    layout:
        Test layout; defaults to the Fig. 13a generator with a reduced width
        set for speed.
    wafer:
        Process wafer map; defaults to a simulated 300 mm growth map.
    spec_window:
        Pass window for each measurement as (min, max) multiples of the
        wafer-median resistance of its structure.
    max_dies:
        Cap on the number of dies measured (None = all dies).
    seed:
        Random seed of the measurement noise.

    Returns
    -------
    WaferTestCampaign
    """
    if technology not in ("copper", "cnt"):
        raise ValueError("technology must be 'copper' or 'cnt'")
    if spec_window[0] <= 0 or spec_window[1] <= spec_window[0]:
        raise ValueError("spec window must satisfy 0 < low < high")

    if layout is None:
        layout = generate_test_layout(
            widths=(50e-9, 200e-9, 1e-6), lengths=(5e-6, 50e-6), angles=(0.0,)
        )
    if wafer is None:
        wafer = simulate_wafer_growth(seed=seed)

    rng = np.random.default_rng(seed)
    die_indices = np.arange(wafer.n_dies)
    if max_dies is not None and wafer.n_dies > max_dies:
        die_indices = rng.choice(die_indices, size=max_dies, replace=False)

    raw: list[tuple[float, float, object, float]] = []
    for index in die_indices:
        metric = wafer.values[index] / wafer.mean
        for structure in layout.structures:
            resistance = _structure_resistance(structure, metric, technology, rng)
            raw.append((wafer.x[index], wafer.y[index], structure, resistance))

    # Specs are defined per structure relative to the wafer median.
    medians: dict[str, float] = {}
    for _, _, structure, resistance in raw:
        medians.setdefault(structure.name, []).append(resistance)  # type: ignore[arg-type]
    medians = {name: float(np.median(values)) for name, values in medians.items()}

    measurements = []
    for x, y, structure, resistance in raw:
        median = medians[structure.name]
        passes = spec_window[0] * median <= resistance <= spec_window[1] * median
        measurements.append(
            DieMeasurement(
                die_x=float(x),
                die_y=float(y),
                structure_name=structure.name,
                kind=structure.kind,
                resistance=resistance,
                passes_spec=bool(passes),
            )
        )

    label = "Cu reference wafer" if technology == "copper" else "Cu-CNT development wafer"
    return WaferTestCampaign(
        technology_label=label, measurements=tuple(measurements), wafer=wafer
    )
