#!/usr/bin/env python
"""Design-space exploration: repeated wires, energy efficiency and 3-D TSVs.

The paper's abstract promises "prospects for designing energy efficient
integrated circuits" and its conclusion calls for design-space exploration on
top of the CNT models.  This example answers three such questions with the
reproduction's extension layers:

1. For a given wire length, which material (Cu, pristine MWCNT, doped MWCNT,
   Cu-CNT composite) gives the best delay / energy / energy-delay product once
   each line is optimally repeated?
2. How much does doping improve the energy-delay product of a CNT wire?
3. How do Cu, CNT-bundle and composite through-silicon vias compare for 3-D
   integration (resistance, ampacity, thermal resistance)?

Run with ``python examples/design_space_exploration.py``.
"""

from repro.analysis.energy import (
    best_material_per_length,
    doping_energy_benefit,
    run_energy_study,
)
from repro.analysis.report import format_table
from repro.core.tsv import tsv_comparison


def main() -> None:
    lengths = (100.0, 500.0, 1000.0, 2000.0)

    print("1) Optimally repeated wires (45 nm node drivers)")
    records = run_energy_study(lengths_um=lengths)
    print(format_table(records, title="delay / energy / EDP of repeated lines"))
    for metric, label in (("delay_ps", "delay"), ("energy_fJ", "energy"), ("edp_fJ_ns", "EDP")):
        winners = best_material_per_length(records, metric=metric)
        summary = ", ".join(f"{length:g} um: {name}" for length, name in winners.items())
        print(f"   best {label}: {summary}")
    print()

    print("2) Doping benefit for a 500 um MWCNT wire (optimally repeated)")
    benefit = doping_energy_benefit(length_um=500.0)
    print(
        f"   delay x{benefit['delay_ratio']:.2f}, energy x{benefit['energy_ratio']:.2f}, "
        f"EDP x{benefit['edp_ratio']:.2f} relative to the pristine wire"
    )
    print()

    print("3) Through-silicon vias for 3-D integration (5 um diameter, 50 um deep)")
    print(format_table(tsv_comparison(), title="Cu vs CNT vs Cu-CNT composite TSV"))
    print()
    print("The CNT TSV trades a higher resistance for ~100x the current-carrying")
    print("capability and an order of magnitude lower thermal resistance; the")
    print("composite recovers most of the resistance while keeping both benefits —")
    print("the paper's Section I argument for CNTs in 3-D integration.")


if __name__ == "__main__":
    main()
