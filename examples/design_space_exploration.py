#!/usr/bin/env python
"""Design-space exploration through the experiment engine.

The paper's abstract promises "prospects for designing energy efficient
integrated circuits" and its conclusion calls for design-space exploration on
top of the CNT models.  This example answers three such questions, now
phrased as declarative sweeps over the registered ``energy`` experiment:

1. For a given wire length, which material (Cu, pristine MWCNT, doped MWCNT,
   Cu-CNT composite) gives the best delay / energy / energy-delay product once
   each line is optimally repeated?
2. How sensitive is the ranking to the metal-CNT contact resistance?  (A
   ``SweepSpec.grid`` over the contact-resistance axis, fanned out over a
   thread pool and answered from one columnar ResultSet.)
3. How do Cu, CNT-bundle and composite through-silicon vias compare for 3-D
   integration (resistance, ampacity, thermal resistance)?

Run with ``python examples/design_space_exploration.py``.  The equivalent
shell commands::

    python -m repro run energy -p lengths_um=100,500,1000,2000
    python -m repro sweep energy --grid contact_resistance=5e3,20e3,100e3 \\
        --executor thread
"""

from repro.analysis.energy import best_material_per_length
from repro.analysis.report import format_table
from repro.api import Engine, SweepSpec
from repro.core.tsv import tsv_comparison


def main() -> None:
    lengths = (100.0, 500.0, 1000.0, 2000.0)
    engine = Engine(executor="thread")

    print("1) Optimally repeated wires (45 nm node drivers)")
    result = engine.run("energy", lengths_um=lengths)
    print(format_table(result.to_records(), title="delay / energy / EDP of repeated lines"))
    for metric, label in (("delay_ps", "delay"), ("energy_fJ", "energy"), ("edp_fJ_ns", "EDP")):
        winners = best_material_per_length(result.to_records(), metric=metric)
        summary = ", ".join(f"{length:g} um: {name}" for length, name in winners.items())
        print(f"   best {label}: {summary}")
    print()

    print("2) Contact-resistance sensitivity of the 500 um EDP ranking")
    sweep = engine.sweep(
        "energy",
        SweepSpec.grid(contact_resistance=[5.0e3, 20.0e3, 100.0e3, 250.0e3]),
        base_params={"lengths_um": (500.0,)},
    )
    for resistance, group in sweep.group_by("contact_resistance").items():
        ranked = group.sorted_by("edp_fJ_ns")
        best = ranked[0]
        print(
            f"   Rc = {resistance/1e3:5.0f} kOhm: best EDP {best['line']:16s}"
            f" ({best['edp_fJ_ns']:.3g} fJ ns)"
        )
    print(
        f"   ({len(sweep)} records from {sweep.meta['sweep']['n_points']} sweep points,"
        f" executor: {sweep.meta['executor']})"
    )
    print()

    print("3) Through-silicon vias for 3-D integration (5 um diameter, 50 um deep)")
    print(format_table(tsv_comparison(), title="Cu vs CNT vs Cu-CNT composite TSV"))
    print()
    print("The CNT TSV trades a higher resistance for ~100x the current-carrying")
    print("capability and an order of magnitude lower thermal resistance; the")
    print("composite recovers most of the resistance while keeping both benefits —")
    print("the paper's Section I argument for CNTs in 3-D integration.")


if __name__ == "__main__":
    main()
