#!/usr/bin/env python
"""Fig. 9: conductivity of SWCNT and MWCNT lines versus copper.

Sweeps the interconnect length from 10 nm to 100 um and prints the effective
conductivity of a 1 nm SWCNT, 10 nm and 22 nm MWCNTs and two copper lines
(20 nm and 100 nm wide, with size-effect resistivity).  The crossover --
CNTs overtake scaled copper for long enough lines -- is highlighted.

Run with ``python examples/conductivity_comparison.py``.
"""

import numpy as np

from repro.analysis.fig9_conductivity import crossover_length_um, run_fig9
from repro.analysis.report import format_table


def main() -> None:
    lengths = tuple(np.logspace(-2, 2, 9))  # 10 nm .. 100 um
    records = run_fig9(lengths_um=lengths)

    # Pivot into one row per length for a compact table.
    lines = sorted({record["line"] for record in records})
    rows = []
    for length in lengths:
        row = {"length_um": length}
        for line in lines:
            match = next(
                r for r in records if r["line"] == line and r["length_um"] == length
            )
            row[line] = match["conductivity_ms_per_m"]
        rows.append(row)
    print(format_table(rows, title="Effective conductivity in MS/m (Fig. 9 reproduction)"))

    print()
    for cnt_line in ("MWCNT D=22nm", "MWCNT D=10nm", "SWCNT d=1nm"):
        for copper_line in ("Cu w=20nm", "Cu w=100nm"):
            crossover = crossover_length_um(records, cnt_line, copper_line)
            if crossover is None:
                print(f"{cnt_line} never overtakes {copper_line} in this length range")
            else:
                print(f"{cnt_line} overtakes {copper_line} at L ~ {crossover:g} um")

    print()
    print("Shape to compare against the paper's Fig. 9: CNT conductivity rises with")
    print("length (the fixed quantum/contact resistance is amortised) while copper is")
    print("length independent but degraded at narrow widths; large-diameter MWCNTs win")
    print("for long global-level wires.")


if __name__ == "__main__":
    main()
