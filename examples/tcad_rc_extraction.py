#!/usr/bin/env python
"""Fig. 10: TCAD-style RC extraction with the finite-difference field solver.

Three extractions mirroring the paper's Section III.B:

1. a 2-D cross-section of three parallel 14 nm-node lines over a ground plane
   (crosstalk capacitance matrix, Fig. 10a),
2. a 3-D M1/M2 crossing (inter-level coupling),
3. a 3-D 30 nm via (resistance and current-crowding hot-spot, Fig. 10b),

and finally the SPICE-like netlist export the paper feeds to circuit
simulation.

Run with ``python examples/tcad_rc_extraction.py``.
"""

from repro.analysis.fig10_tcad import (
    run_fig10_capacitance,
    run_fig10_m1_m2,
    run_fig10_resistance,
)
from repro.analysis.report import format_table


def main() -> None:
    print("1) Parallel-line crosstalk extraction (14 nm node, 3 lines over ground)")
    capacitance = run_fig10_capacitance()
    matrix = capacitance["matrix_af_per_um"]
    rows = [
        {"conductor": f"c{i}", **{f"c{j}": matrix[i][j] for j in range(len(matrix))}}
        for i in range(len(matrix))
    ]
    print(format_table(rows, title="Maxwell capacitance matrix (aF/um)"))
    print(
        f"victim line total C = {capacitance['victim_total_af_per_um']:.1f} aF/um, "
        f"coupling fraction = {capacitance['coupling_fraction']:.2f}"
    )
    print()

    print("2) M1/M2 crossing (3-D)")
    crossing = run_fig10_m1_m2()
    print(
        f"M1 total C = {crossing['m1_total_aF']:.3f} aF, "
        f"M1-M2 coupling = {crossing['m1_m2_coupling_aF']:.3f} aF "
        f"({100*crossing['coupling_fraction']:.1f} % of the victim capacitance)"
    )
    print()

    print("3) 30 nm via resistance extraction (Fig. 10b)")
    via = run_fig10_resistance()
    print(
        f"via resistance = {via['resistance_ohm']:.2f} Ohm, "
        f"current-crowding hot-spot factor = {via['hotspot_factor']:.1f}x the average density"
    )
    print()

    print("4) Exported SPICE-like RC netlist (paper: 'Extracted RC netlists are provided")
    print("   in a SPICE-like format for circuit-level simulation'):")
    print()
    print(capacitance["spice_netlist"])


if __name__ == "__main__":
    main()
