#!/usr/bin/env python
"""Atomistic-to-compact-model doping workflow (Fig. 8 to Eq. 4).

Walks the paper's modelling chain from the bottom up:

1. zone-folded band structure and metallicity of a few SWCNTs,
2. ballistic conductance versus diameter at 300 K (Fig. 8a),
3. charge-transfer doping of SWCNT(7,7): Fermi shift, conductance staircase
   and the 0.155 mS -> 0.387 mS step (Fig. 8b/c),
4. conversion of the doped channel count into the compact-model knob ``Nc``
   and the resulting MWCNT resistance reduction (Eq. 4).

Run with ``python examples/atomistic_doping.py``.
"""

from repro.analysis.fig8_conductance import run_fig8a, run_fig8c
from repro.analysis.report import format_table
from repro.atomistic import Chirality, compute_band_structure
from repro.core import MWCNTInterconnect
from repro.core.doping import DopingProfile, channels_per_shell_from_fermi_shift
from repro.units import nm, um


def main() -> None:
    print("1) Band structures (zone-folded tight binding)")
    rows = []
    for indices in [(7, 7), (9, 0), (10, 0), (13, 0)]:
        tube = Chirality(*indices)
        bands = compute_band_structure(tube, n_k=201)
        rows.append(
            {
                "tube": str(tube),
                "family": tube.family,
                "diameter_nm": tube.diameter * 1e9,
                "metallic": tube.is_metallic,
                "band_gap_eV": bands.band_gap(),
            }
        )
    print(format_table(rows))
    print()

    print("2) Ballistic conductance vs diameter at 300 K (Fig. 8a, metallic tubes)")
    sweep = run_fig8a(diameter_range_nm=(0.5, 2.2), n_k=101)
    print(format_table(sweep[:12]))
    print("   ... Nc stays ~2 for every metallic tube, independent of diameter/chirality.")
    print()

    print("3) Iodine doping of SWCNT(7,7) (Fig. 8b/c)")
    result = run_fig8c(n_k=201)
    print(
        f"   pristine G = {result.pristine_conductance_ms:.3f} mS (paper 0.155 mS), "
        f"doped G = {result.doped_conductance_ms:.3f} mS (paper 0.387 mS)"
    )
    print(
        f"   rigid-band Fermi shift used: {result.fermi_shift_ev:.2f} eV "
        "(the paper's DFT reports -0.6 eV; the tight-binding substitute needs a larger"
    )
    print("   shift to open the next subbands because it has no dopant-induced states).")
    print()

    print("4) From the atomistic picture to the compact model (Eq. 4)")
    channels = channels_per_shell_from_fermi_shift(Chirality(7, 7), result.fermi_shift_ev)
    profile = DopingProfile.from_channels(channels, dopant="iodine")
    pristine_line = MWCNTInterconnect(outer_diameter=nm(10), length=um(500))
    doped_line = pristine_line.with_doping(profile)
    print(
        f"   channels per shell Nc = {channels:.1f}; "
        f"MWCNT (D = 10 nm, L = 500 um) resistance "
        f"{pristine_line.resistance/1e3:.1f} kOhm -> {doped_line.resistance/1e3:.1f} kOhm"
    )


if __name__ == "__main__":
    main()
