#!/usr/bin/env python
"""Thermal and reliability advantages of CNT interconnects (Sections I and IV).

1. ampacity: the Cu reference line versus single CNTs and bundles,
2. electromigration lifetimes (Black's equation) of Cu, CNT and Cu-CNT lines,
3. self-heating of a current-carrying MWCNT and the SThM measure-then-extract
   loop for its thermal conductivity,
4. CNT versus Cu via thermal resistance.

Run with ``python examples/thermal_and_reliability.py``.
"""

from repro.analysis.report import format_table
from repro.analysis.tables import ampacity_table, thermal_table
from repro.characterization.electromigration import lifetime_comparison
from repro.core import MWCNTInterconnect
from repro.thermal import (
    HeatLineProblem,
    extract_thermal_conductivity,
    self_heating_analysis,
    simulate_sthm_scan,
)
from repro.thermal.conductivity import cnt_thermal_conductivity
from repro.units import nm, um


def main() -> None:
    print("1) Ampacity comparison (Section I)")
    print(format_table(ampacity_table()))
    print()

    print("2) Electromigration lifetimes at 1e6 A/cm^2 and 105 C (Black's equation)")
    rows = []
    for material, result in lifetime_comparison().items():
        rows.append(
            {
                "material": material,
                "median_lifetime_years": result.lifetime_years,
                "immediate_failure": result.immediate_failure,
            }
        )
    print(format_table(rows))
    print()

    print("3) Self-heating of a 2 um MWCNT interconnect carrying 50 uA")
    tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(2), contact_resistance=20e3)
    result = self_heating_analysis(tube, current=50e-6, substrate_coupling=0.0)
    print(
        f"   peak temperature {result.peak_temperature:.1f} K "
        f"({result.peak_temperature-300:.1f} K rise), dissipating {result.dissipated_power*1e6:.1f} uW, "
        f"converged in {result.iterations} electro-thermal iterations"
    )

    problem = HeatLineProblem(
        length=tube.length,
        thermal_conductivity=cnt_thermal_conductivity(tube.length),
        cross_section_area=tube.cross_section_area,
        power_per_length=result.dissipated_power / tube.length,
    )
    scan = simulate_sthm_scan(problem, probe_radius=50e-9, noise_kelvin=0.2)
    extracted = extract_thermal_conductivity(scan, problem)
    print(
        f"   SThM scan peak rise {scan.peak_measured_rise:.2f} K; "
        f"extracted thermal conductivity {extracted:.0f} W/mK "
        f"(true value {problem.thermal_conductivity:.0f} W/mK)"
    )
    print()

    print("4) Thermal comparison table (Section I claim: CNT vias run cooler)")
    print(format_table(thermal_table()))


if __name__ == "__main__":
    main()
