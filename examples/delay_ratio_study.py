#!/usr/bin/env python
"""The paper's headline experiment (Figs. 11-12): doped MWCNT delay ratios.

Drives MWCNT interconnects of 10 / 14 / 22 nm outer diameter with CMOS 45 nm
inverters, sweeps the doping level (channels per shell) and the interconnect
length, and prints the delay ratio relative to the pristine line -- the data
behind Fig. 12.  The paper's quoted numbers (10 / 5 / 2 % delay reduction at
L = 500 um for D = 10 / 14 / 22 nm) are printed next to the measured ones.

Run with ``python examples/delay_ratio_study.py [--fast]``; ``--fast`` uses
the Elmore delay metric instead of the full transient simulation.
"""

import argparse

from repro.analysis.fig12_delay_ratio import (
    DelayRatioStudy,
    doping_benefit_vs_length,
    run_fig12,
    summarize_at_length,
)
from repro.analysis.paper_reference import PAPER_REFERENCE
from repro.analysis.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use the Elmore delay estimate instead of the transient simulation",
    )
    args = parser.parse_args()

    study = DelayRatioStudy(
        lengths_um=(50.0, 100.0, 200.0, 500.0, 1000.0),
        channel_counts=(2.0, 4.0, 6.0, 8.0, 10.0),
        use_transient=not args.fast,
    )
    print(
        f"Running the Fig. 12 study ({'Elmore' if args.fast else 'transient MNA'} delay metric, "
        f"contact resistance {study.contact_resistance/1e3:.0f} kOhm per line)..."
    )
    records = run_fig12(study)

    at_500 = [r for r in records if r["length_um"] == 500.0]
    print()
    print(format_table(at_500, columns=[
        "diameter_nm", "channels_per_shell", "delay_ps", "delay_ratio", "delay_reduction_percent",
    ], title="Delay ratio at L = 500 um (Fig. 12 cut)"))

    print()
    summary = summarize_at_length(records, length_um=500.0, channels=10.0)
    targets = PAPER_REFERENCE["delay_reduction_at_500um"]
    rows = [
        {
            "diameter_nm": diameter,
            "measured_reduction_%": 100.0 * summary[diameter],
            "paper_reduction_%": 100.0 * targets[diameter],
        }
        for diameter in sorted(summary)
    ]
    print(format_table(rows, title="Delay reduction at 500 um, Nc = 10 (paper vs measured)"))

    print()
    for diameter in study.diameters_nm:
        series = doping_benefit_vs_length(records, diameter_nm=diameter, channels=10.0)
        trend = " -> ".join(f"{100*value:.1f}%@{length:g}um" for length, value in series)
        print(f"D = {diameter:g} nm: doping benefit vs length: {trend}")
    print()
    print("Observation (matches the paper): doping helps more for longer lines and")
    print("for smaller diameters (fewer shells to begin with).")


if __name__ == "__main__":
    main()
