#!/usr/bin/env python
"""Process variability and doping: growth window, Monte-Carlo spread, stability.

Reproduces the Section II story line end to end:

1. the Co-catalyst growth window versus temperature (CMOS compatibility below
   400 C costs growth quality, Fig. 4),
2. the Monte-Carlo resistance variability of as-grown MWCNT interconnects and
   how charge-transfer doping suppresses it (Section II.A),
3. the internal-versus-external doping stability comparison (Fig. 2d / Fig. 3),
4. the before/after doping I-V curve of a side-contacted MWCNT (Fig. 2d),
5. a 300 mm wafer uniformity map summary (Fig. 5).

Run with ``python examples/variability_and_doping.py``.
"""

from repro.analysis.report import format_table
from repro.characterization.iv import doping_comparison_iv
from repro.core.doping import DopantSite
from repro.process.doping_process import DopingStabilityModel, internal_vs_external_advantage
from repro.process.growth import GrowthRecipe, simulate_growth
from repro.process.variability import doping_variability_comparison
from repro.process.wafer import simulate_wafer_growth
from repro.units import celsius_to_kelvin


def main() -> None:
    print("1) Co-catalyst growth window (paper Fig. 4)")
    rows = []
    for celsius in (350.0, 400.0, 450.0, 500.0, 550.0):
        result = simulate_growth(GrowthRecipe(temperature=celsius_to_kelvin(celsius)))
        rows.append(
            {
                "T_C": celsius,
                "length_um": result.mean_length * 1e6,
                "quality": result.quality,
                "yield": result.nucleation_yield,
                "CMOS_ok": result.cmos_compatible,
            }
        )
    print(format_table(rows))
    print()

    print("2) Resistance variability: pristine vs doped MWCNT population (10 um lines)")
    comparison = doping_variability_comparison(n_devices=400)
    rows = []
    for label, result in comparison.items():
        rows.append(
            {
                "population": label,
                "mean_kOhm": result.mean / 1e3,
                "sigma_kOhm": result.std / 1e3,
                "CV": result.coefficient_of_variation,
                "open_fraction": result.open_fraction,
            }
        )
    print(format_table(rows))
    print("Doping both lowers the mean resistance and narrows the distribution, and")
    print("rescues the devices that drew no metallic shell in the chirality lottery.")
    print()

    print("3) Doping stability: internal vs external dopants at 125 C operating temperature")
    temperature = celsius_to_kelvin(125.0)
    for site in (DopantSite.INTERNAL, DopantSite.EXTERNAL):
        model = DopingStabilityModel(site)
        years = model.lifetime(temperature) / (365 * 24 * 3600)
        print(f"  {site.value:9s}: 1/e dopant-retention lifetime ~ {years:.2g} years")
    advantage = internal_vs_external_advantage(temperature, time=10 * 365 * 24 * 3600.0)
    print(f"  internal/external retention ratio after 10 years: {advantage:.2g}")
    print()

    print("4) I-V of a side-contacted MWCNT before and after PtCl4 doping (Fig. 2d)")
    sweeps = doping_comparison_iv()
    for label, sweep in sweeps.items():
        print(f"  {label:9s}: low-bias resistance = {sweep.low_bias_resistance/1e3:.1f} kOhm")
    ratio = sweeps["pristine"].low_bias_resistance / sweeps["doped"].low_bias_resistance
    print(f"  resistance reduction by doping: {ratio:.2f}x")
    print()

    print("5) 300 mm wafer growth uniformity (Fig. 5)")
    wafer = simulate_wafer_growth()
    print(
        f"  {wafer.n_dies} dies, mean normalised growth {wafer.mean:.3f}, "
        f"within-wafer uniformity {100*wafer.uniformity:.1f} %, CV {100*wafer.coefficient_of_variation:.1f} %"
    )


if __name__ == "__main__":
    main()
