#!/usr/bin/env python
"""Quickstart: the CNT interconnect compact models in five minutes.

Builds the paper's basic objects -- a single MWCNT local interconnect, its
doped counterpart, the copper reference line and a Cu-CNT composite -- and
prints the head-to-head comparison of resistance, capacitance, ampacity and
a first delay estimate.

Run with ``python examples/quickstart.py``.
"""

from repro.analysis.report import format_table
from repro.core import (
    CuCNTComposite,
    DopingProfile,
    InterconnectLine,
    MWCNTInterconnect,
    SWCNTBundle,
)
from repro.core.copper import paper_reference_copper_line
from repro.units import nm, to_kohm, um


def main() -> None:
    length = um(10)

    # A pristine MWCNT local interconnect (the paper's CVD-grown 7.5 nm tube)...
    pristine = MWCNTInterconnect(outer_diameter=nm(7.5), length=length, contact_resistance=50e3)
    # ...the same tube after charge-transfer doping (Nc = 5 channels per shell)...
    doped = pristine.with_doping(DopingProfile.iodine(channels_per_shell=5))
    # ...the copper reference line of the paper's Section I...
    copper = paper_reference_copper_line(length)
    # ...a dense SWCNT bundle via, and a Cu-CNT composite global line.
    bundle = SWCNTBundle(width=nm(100), height=nm(50), length=length, metallic_fraction=1.0)
    composite = CuCNTComposite(width=nm(100), height=nm(50), length=length, cnt_volume_fraction=0.3)

    rows = []
    for label, device in [
        ("MWCNT 7.5 nm (pristine)", pristine),
        ("MWCNT 7.5 nm (doped, Nc=5)", doped),
        ("Cu 100x50 nm", copper),
        ("SWCNT bundle 100x50 nm", bundle),
        ("Cu-CNT composite (30% CNT)", composite),
    ]:
        capacitance = getattr(device, "capacitance", None)
        max_current = getattr(device, "max_current", None)
        rows.append(
            {
                "structure": label,
                "R_kOhm": to_kohm(device.resistance),
                "C_fF": capacitance * 1e15 if capacitance is not None else float("nan"),
                "I_max_uA": max_current * 1e6 if max_current is not None else float("nan"),
            }
        )
    print(format_table(rows, title=f"10 um interconnect comparison (length = {length*1e6:.0f} um)"))
    print()

    # Delay of a driver + line + load, pristine versus doped.
    driver_resistance = 3.0e3  # a 45 nm inverter drives the line
    load_capacitance = 0.2e-15
    for label, device in [("pristine", pristine), ("doped", doped)]:
        line = InterconnectLine(device)
        delay = line.elmore_delay(driver_resistance, load_capacitance)
        print(f"Elmore delay with a 3 kOhm driver, {label} MWCNT: {delay*1e12:.2f} ps")

    print()
    print("Doping cuts the line resistance by the channel ratio (Eq. 4):")
    print(
        f"  R_pristine / R_doped = "
        f"{pristine.intrinsic_resistance / doped.intrinsic_resistance:.2f}"
        f"  (channels per shell 2 -> {doped.channels_per_shell:g})"
    )


if __name__ == "__main__":
    main()
