#!/usr/bin/env python
"""Quickstart: compact models and the experiment engine in five minutes.

Two layers in one example:

1. the *model* layer -- build the paper's basic objects (a single MWCNT
   local interconnect, its doped counterpart, the copper reference line,
   a bundle and a composite) and compare them through the shared
   ``Conductor`` protocol;
2. the *experiment* layer -- run registered paper experiments through
   :class:`repro.api.Engine` and slice the columnar ``ResultSet``.

Run with ``python examples/quickstart.py``.  The same experiments are
available from the shell: ``python -m repro list``.
"""

from repro.analysis.report import format_table
from repro.api import Engine
from repro.core import (
    CuCNTComposite,
    DopingProfile,
    InterconnectLine,
    MWCNTInterconnect,
    SWCNTBundle,
    conductor_record,
)
from repro.core.copper import paper_reference_copper_line
from repro.units import nm, um


def main() -> None:
    length = um(10)

    # --- model layer: any material satisfying the Conductor protocol ------
    pristine = MWCNTInterconnect(outer_diameter=nm(7.5), length=length, contact_resistance=50e3)
    doped = pristine.with_doping(DopingProfile.iodine(channels_per_shell=5))
    copper = paper_reference_copper_line(length)
    bundle = SWCNTBundle(width=nm(100), height=nm(50), length=length, metallic_fraction=1.0)
    composite = CuCNTComposite(width=nm(100), height=nm(50), length=length, cnt_volume_fraction=0.3)

    rows = [
        conductor_record(device, label=label)
        for label, device in [
            ("MWCNT 7.5 nm (pristine)", pristine),
            ("MWCNT 7.5 nm (doped, Nc=5)", doped),
            ("Cu 100x50 nm", copper),
            ("SWCNT bundle 100x50 nm", bundle),
            ("Cu-CNT composite (30% CNT)", composite),
        ]
    ]
    # Column union: conductor_record only emits optional properties (e.g.
    # max_current_ua) for materials that expose them.
    columns: list[str] = []
    for row in rows:
        columns.extend(key for key in row if key not in columns)
    print(
        format_table(
            rows,
            columns=columns,
            title=f"10 um interconnect comparison (length = {length*1e6:.0f} um)",
        )
    )
    print()

    # Delay of a driver + line + load, pristine versus doped.
    driver_resistance = 3.0e3  # a 45 nm inverter drives the line
    load_capacitance = 0.2e-15
    for label, device in [("pristine", pristine), ("doped", doped)]:
        line = InterconnectLine(device)
        delay = line.elmore_delay(driver_resistance, load_capacitance)
        print(f"Elmore delay with a 3 kOhm driver, {label} MWCNT: {delay*1e12:.2f} ps")

    print()
    print("Doping cuts the line resistance by the channel ratio (Eq. 4):")
    print(
        f"  R_pristine / R_doped = "
        f"{pristine.intrinsic_resistance / doped.intrinsic_resistance:.2f}"
        f"  (channels per shell 2 -> {doped.channels_per_shell:g})"
    )
    print()

    # --- experiment layer: the registered paper experiments ---------------
    engine = Engine()

    doping = engine.run("table_doping_resistance", lengths_um=(1.0, 10.0, 100.0))
    print(format_table(doping.to_records(), title="Engine.run('table_doping_resistance')"))
    print()

    fig9 = engine.run("fig9", lengths_um=(0.1, 1.0, 10.0, 100.0))
    for kind, group in fig9.group_by("kind").items():
        values = group.filter(length_um=10.0).column("conductivity_ms_per_m")
        print(f"  {kind:6s} conductivity at 10 um: {values} MS/m")
    print()
    print(f"fig9 ResultSet: {len(fig9)} records, columns {fig9.columns}")
    print(f"provenance: params={fig9.meta['params']['lengths_um']}")
    print(f"content hash {fig9.content_hash[:16]}, wall time {fig9.meta['wall_time_s']:.3f} s")


if __name__ == "__main__":
    main()
