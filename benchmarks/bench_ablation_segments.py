"""Ablation A3 -- distributed-RC segmentation: how many ladder segments are enough.

The transient benchmark expands each interconnect into an RC ladder; this
ablation sweeps the segment count and verifies that the measured delay
converges (so the default of 20 segments is justified).
"""

import pytest

from repro.circuit.delay import measure_inverter_line_delay
from repro.core import InterconnectLine, MWCNTInterconnect
from repro.units import nm, um

SEGMENTS = (1, 2, 5, 10, 20, 40)


def _delay(n_segments: int) -> float:
    tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(500), contact_resistance=250e3)
    line = InterconnectLine(tube, n_segments=n_segments)
    return measure_inverter_line_delay(line).propagation_delay


def test_ablation_segment_convergence(once, benchmark):
    delays = once(benchmark, lambda: {n: _delay(n) for n in SEGMENTS})

    print()
    reference = delays[SEGMENTS[-1]]
    for n, delay in delays.items():
        print(f"{n:3d} segments: {delay*1e12:8.1f} ps ({100*(delay/reference-1):+.1f} % vs finest)")

    # A single lumped segment is visibly off; 10+ segments are converged.
    assert abs(delays[1] / reference - 1.0) > 0.02
    assert delays[10] == pytest.approx(reference, rel=0.02)
    assert delays[20] == pytest.approx(reference, rel=0.01)
