"""Experiment E4 -- Fig. 10: TCAD capacitance (crosstalk) and resistance (hot-spots).

Paper shape: the field solver exposes substantial line-to-line coupling at
the 14 nm node (Fig. 10a) and current crowding inside vias (Fig. 10b), and
exports SPICE-like RC netlists for circuit simulation.
"""

from repro.analysis.fig10_tcad import (
    run_fig10_capacitance,
    run_fig10_m1_m2,
    run_fig10_resistance,
)


def test_fig10a_crosstalk_capacitance(benchmark):
    result = benchmark(run_fig10_capacitance, resolution=4)
    print()
    print(
        f"victim total C = {result['victim_total_af_per_um']:.1f} aF/um, "
        f"coupling fraction = {result['coupling_fraction']:.2f}"
    )
    assert result["is_physical"]
    # Dense 14 nm-pitch wiring: a large share of the victim capacitance couples
    # to the neighbouring lines rather than to ground -- the crosstalk message.
    assert 0.3 < result["coupling_fraction"] < 1.0
    assert 10.0 < result["victim_total_af_per_um"] < 500.0
    assert ".end" in result["spice_netlist"]


def test_fig10a_m1_m2_coupling(benchmark):
    result = benchmark(run_fig10_m1_m2, resolution=2)
    print()
    print(
        f"M1-M2 coupling = {result['m1_m2_coupling_aF']:.3f} aF "
        f"({100*result['coupling_fraction']:.1f} % of M1 total)"
    )
    assert result["is_physical"]
    assert result["m1_m2_coupling_aF"] > 0
    assert result["coupling_fraction"] < 0.9


def test_fig10b_via_current_crowding(benchmark):
    result = benchmark(run_fig10_resistance, resolution_nm=7.5)
    print()
    print(
        f"30 nm via: R = {result['resistance_ohm']:.2f} Ohm, "
        f"hot-spot factor = {result['hotspot_factor']:.1f}"
    )
    assert result["resistance_ohm"] > 0
    # Current crowding at the via: the peak density is well above the average.
    assert result["hotspot_factor"] > 1.5
