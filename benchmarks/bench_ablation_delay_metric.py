"""Ablation A1 -- delay metric: full MNA transient vs Elmore estimate.

DESIGN.md flags the delay metric as a design choice worth ablating: the
Fig. 12 conclusions must not depend on whether the propagation delay comes
from the transient circuit simulation or from the closed-form Elmore
estimate.
"""

import pytest

from repro.analysis.fig12_delay_ratio import DelayRatioStudy, run_fig12, summarize_at_length


def _study(use_transient: bool) -> DelayRatioStudy:
    return DelayRatioStudy(
        diameters_nm=(10.0, 14.0, 22.0),
        lengths_um=(500.0,),
        channel_counts=(2.0, 10.0),
        use_transient=use_transient,
        n_segments=15,
    )


def test_ablation_delay_metric(once, benchmark):
    transient = summarize_at_length(once(benchmark, run_fig12, _study(True)), 500.0, 10.0)
    elmore = summarize_at_length(run_fig12(_study(False)), 500.0, 10.0)

    print()
    for diameter in sorted(transient):
        print(
            f"D = {diameter:g} nm: reduction transient {100*transient[diameter]:.1f} % "
            f"vs Elmore {100*elmore[diameter]:.1f} %"
        )

    # Both metrics preserve the diameter ordering...
    assert transient[10.0] > transient[14.0] > transient[22.0]
    assert elmore[10.0] > elmore[14.0] > elmore[22.0]
    # ...and agree within a few percentage points on the absolute reduction.
    for diameter in transient:
        assert transient[diameter] == pytest.approx(elmore[diameter], abs=0.04)
