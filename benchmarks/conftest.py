"""Shared configuration of the benchmark harness.

Every ``bench_*.py`` module regenerates one figure or table of the paper
(see the experiment index in DESIGN.md) and is written as a pytest-benchmark
test: the ``benchmark`` fixture times the experiment driver, and plain
assertions check that the *shape* of the result matches the paper
(orderings, approximate factors, crossovers).  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    """Fixture exposing :func:`run_once` to the benchmark modules."""
    return run_once
