"""Experiment E8 -- Section I/IV thermal claims: CNT vs Cu thermal conduction.

Paper claims: SWCNT bundles conduct 3000-10000 W/mK against 385 W/mK for
copper, so heat diffuses more efficiently through CNT vias and can reduce the
on-chip temperature.
"""

import pytest

from repro.analysis.paper_reference import PAPER_REFERENCE
from repro.analysis.report import format_table
from repro.analysis.tables import thermal_table
from repro.core import MWCNTInterconnect
from repro.thermal import self_heating_analysis
from repro.units import nm, um


def test_thermal_table(benchmark):
    rows = benchmark(thermal_table)
    print()
    print(format_table(rows, title="Thermal comparison (Section I)"))

    conductivity_row, via_row = rows[0], rows[1]
    low, high = PAPER_REFERENCE["cnt_thermal_conductivity_w_per_mk"]
    assert low <= conductivity_row["cnt"] <= high
    assert conductivity_row["copper"] == pytest.approx(
        PAPER_REFERENCE["copper_thermal_conductivity_w_per_mk"]
    )
    # CNT vias run cooler than Cu vias for the same heat flow.
    assert via_row["cnt"] > 1.0


def test_cnt_line_selfheating_modest(benchmark):
    """A CNT line carrying its rated current stays far from thermal runaway."""
    tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(2))
    result = benchmark(
        self_heating_analysis, tube, 50e-6, 0.05
    )
    print()
    print(
        f"peak temperature {result.peak_temperature:.1f} K at 50 uA "
        f"({result.dissipated_power*1e6:.1f} uW dissipated)"
    )
    assert result.converged
    assert result.peak_temperature < 400.0
