"""Experiment E8 -- Section I/IV thermal claims: CNT vs Cu thermal conduction.

Thin wrapper over the registered ``table_thermal`` and ``self_heating``
experiments.  Paper claims: SWCNT bundles conduct 3000-10000 W/mK against
385 W/mK for copper, so heat diffuses more efficiently through CNT vias and
can reduce the on-chip temperature.
"""

import pytest

from repro.analysis.paper_reference import PAPER_REFERENCE
from repro.analysis.report import format_table
from repro.api import Engine


def test_thermal_table(benchmark):
    rows = benchmark(Engine().run, "table_thermal").to_records()
    print()
    print(format_table(rows, title="Thermal comparison (Section I)"))

    conductivity_row, via_row = rows[0], rows[1]
    low, high = PAPER_REFERENCE["cnt_thermal_conductivity_w_per_mk"]
    assert low <= conductivity_row["cnt"] <= high
    assert conductivity_row["copper"] == pytest.approx(
        PAPER_REFERENCE["copper_thermal_conductivity_w_per_mk"]
    )
    # CNT vias run cooler than Cu vias for the same heat flow.
    assert via_row["cnt"] > 1.0


def test_cnt_line_selfheating_modest(benchmark):
    """A CNT line carrying its rated current stays far from thermal runaway."""
    record = benchmark(Engine().run, "self_heating")[0]
    print()
    print(
        f"peak temperature {record['peak_temperature_k']:.1f} K at 50 uA "
        f"({record['dissipated_power_uw']:.1f} uW dissipated)"
    )
    assert record["converged"]
    assert record["peak_temperature_k"] < 400.0
