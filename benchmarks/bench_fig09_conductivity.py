"""Experiment E3 -- Fig. 9: conductivity of SWCNT and MWCNT lines vs copper.

Paper shape: CNT effective conductivity rises with length and, for large
MWCNT diameters and long lines, overtakes narrow (size-effect-limited)
copper; copper's conductivity is length independent.
"""

import numpy as np

from repro.analysis.fig9_conductivity import crossover_length_um, run_fig9
from repro.analysis.report import format_table

LENGTHS_UM = tuple(np.logspace(-2, 2, 13))


def test_fig9_conductivity_vs_length(benchmark):
    records = benchmark(run_fig9, lengths_um=LENGTHS_UM)

    print()
    at_10um = [r for r in records if abs(r["length_um"] - 10.0) < 1e-9]
    print(format_table(at_10um, title="Fig. 9 cut at L = 10 um (conductivity in MS/m)"))

    def series(line):
        return [
            r["conductivity_ms_per_m"]
            for r in sorted(
                (r for r in records if r["line"] == line), key=lambda r: r["length_um"]
            )
        ]

    # CNT conductivity increases with length and saturates; copper stays flat.
    mwcnt = series("MWCNT D=22nm")
    assert all(b >= a for a, b in zip(mwcnt, mwcnt[1:]))
    copper = series("Cu w=20nm")
    assert max(copper) / min(copper) < 1.0001

    # Crossover: the MWCNTs overtake both copper references within the sweep.
    for copper_line in ("Cu w=20nm", "Cu w=100nm"):
        crossover = crossover_length_um(records, "MWCNT D=22nm", copper_line)
        print(f"MWCNT D=22nm overtakes {copper_line} at ~{crossover:g} um")
        assert crossover is not None and crossover <= 100.0

    # Paper remark: conductance per unit area decreases as the diameter grows,
    # so per-area conductivity at long lengths orders SWCNT > MWCNT.
    assert series("SWCNT d=1nm")[-1] > series("MWCNT D=10nm")[-1] > 0
    # In absolute conductance terms (conductivity times cross-section) the
    # larger MWCNT still carries far more current than the small one.
    small_abs = series("MWCNT D=10nm")[-1] * 10.0**2
    large_abs = series("MWCNT D=22nm")[-1] * 22.0**2
    assert large_abs > small_abs
