"""Ablation A2 -- MWCNT shell filling: paper's ``Ns = D - 1`` rule vs van der Waals pitch.

The paper states both "filled with shells until its diameter is smaller than
DmaxCNT/2" and "number of shells is derived as diameter - 1"; the two rules
give different shell counts.  The ablation verifies that the Fig. 12
conclusion (small-diameter MWCNTs benefit most from doping) does not depend
on which rule is used, even though the absolute resistances differ.
"""

from repro.core import MWCNTInterconnect, ShellFillingRule
from repro.core.doping import DopingProfile
from repro.core.line import InterconnectLine
from repro.circuit.inverter import Inverter
from repro.units import nm, um

CONTACT = 250e3


def _reduction(rule: ShellFillingRule, diameter_nm: float) -> float:
    driver = Inverter("d", "a", "b")
    receiver = Inverter("r", "b", "c")

    def delay(channels: float) -> float:
        doping = DopingProfile.pristine() if channels == 2 else DopingProfile.from_channels(channels)
        tube = MWCNTInterconnect(
            outer_diameter=nm(diameter_nm),
            length=um(500),
            doping=doping,
            contact_resistance=CONTACT,
            filling_rule=rule,
        )
        return InterconnectLine(tube).elmore_delay(
            driver.output_resistance(), receiver.input_capacitance
        )

    return 1.0 - delay(10.0) / delay(2.0)


def test_ablation_shell_filling_rule(benchmark):
    def study():
        return {
            rule: {d: _reduction(rule, d) for d in (10.0, 14.0, 22.0)}
            for rule in (ShellFillingRule.PAPER_SIMPLIFIED, ShellFillingRule.VAN_DER_WAALS)
        }

    results = benchmark(study)

    print()
    for rule, summary in results.items():
        ordered = ", ".join(f"D={d:g}nm: {100*v:.1f}%" for d, v in sorted(summary.items()))
        print(f"{rule.value:5s}: {ordered}")

    for rule, summary in results.items():
        # The qualitative conclusion survives the shell-model choice.
        assert summary[10.0] > summary[14.0] > summary[22.0]

    # The van der Waals rule has fewer shells, hence larger line resistance and
    # a somewhat larger doping benefit -- quantify that it stays in the same
    # ballpark rather than changing the story.
    paper = results[ShellFillingRule.PAPER_SIMPLIFIED]
    vdw = results[ShellFillingRule.VAN_DER_WAALS]
    for diameter in paper:
        assert vdw[diameter] >= paper[diameter] * 0.8
        assert vdw[diameter] <= paper[diameter] * 3.0
