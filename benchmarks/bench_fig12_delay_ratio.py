"""Experiment E5 -- Figs. 11-12: delay ratio of doped vs pristine MWCNT interconnects.

Paper claims to reproduce in shape (and approximately in magnitude):

* doping (Nc = 10) reduces the propagation delay by ~10 / 5 / 2 % at
  L = 500 um for outer diameters of 10 / 14 / 22 nm;
* the benefit shrinks with diameter (more shells = more channels anyway);
* the benefit grows with interconnect length.

The full transient-MNA benchmark is timed for the 500 um / Nc = 10 corner;
the length sweep uses the fast Elmore metric (the delay-metric ablation bench
shows the two agree).
"""

import pytest

from repro.analysis.fig12_delay_ratio import (
    DelayRatioStudy,
    doping_benefit_vs_length,
    run_fig12,
    summarize_at_length,
)
from repro.analysis.paper_reference import PAPER_REFERENCE
from repro.analysis.report import format_table

TRANSIENT_STUDY = DelayRatioStudy(
    lengths_um=(500.0,),
    channel_counts=(2.0, 10.0),
    use_transient=True,
    n_segments=20,
)

SWEEP_STUDY = DelayRatioStudy(
    lengths_um=(10.0, 50.0, 100.0, 200.0, 500.0, 1000.0),
    channel_counts=(2.0, 4.0, 6.0, 8.0, 10.0),
    use_transient=False,
)


def test_fig12_delay_reduction_at_500um(once, benchmark):
    records = once(benchmark, run_fig12, TRANSIENT_STUDY)
    summary = summarize_at_length(records, length_um=500.0, channels=10.0)
    targets = PAPER_REFERENCE["delay_reduction_at_500um"]

    print()
    rows = [
        {
            "diameter_nm": diameter,
            "measured_reduction_%": 100.0 * summary[diameter],
            "paper_reduction_%": 100.0 * targets[diameter],
        }
        for diameter in sorted(summary)
    ]
    print(format_table(rows, title="Fig. 12 -- delay reduction at L = 500 um, Nc = 10 (transient MNA)"))

    # Ordering: smaller diameter benefits more from doping.
    assert summary[10.0] > summary[14.0] > summary[22.0]
    # Magnitudes: within a few percentage points of the paper's 10/5/2 %.
    for diameter, target in targets.items():
        assert summary[diameter] == pytest.approx(target, abs=0.05)


def test_fig12_full_sweep_shape(benchmark):
    records = benchmark(run_fig12, SWEEP_STUDY)

    print()
    at_500 = [r for r in records if r["length_um"] == 500.0]
    print(format_table(
        at_500,
        columns=["diameter_nm", "channels_per_shell", "delay_ratio", "delay_reduction_percent"],
        title="Fig. 12 -- full doping sweep at 500 um (Elmore metric)",
    ))

    # Delay ratio decreases monotonically with the doping level for every
    # diameter (more channels never hurt at these lengths).
    for diameter in SWEEP_STUDY.diameters_nm:
        ratios = [
            r["delay_ratio"]
            for r in sorted(
                (r for r in at_500 if r["diameter_nm"] == diameter),
                key=lambda r: r["channels_per_shell"],
            )
        ]
        assert all(b <= a + 1e-12 for a, b in zip(ratios, ratios[1:]))

    # Doping becomes more effective as the line gets longer (paper's last
    # claim).  A 0.5 % tolerance absorbs the tiny capacitance-driven wobble at
    # very short lengths where doping barely matters at all.
    for diameter in SWEEP_STUDY.diameters_nm:
        series = doping_benefit_vs_length(records, diameter_nm=diameter, channels=10.0)
        reductions = [value for _, value in series]
        assert all(b >= a - 0.005 for a, b in zip(reductions, reductions[1:]))
        assert reductions[-1] > reductions[0]
