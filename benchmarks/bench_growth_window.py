"""Experiment E10 (growth) -- Section II.B: Co-catalyst growth window and wafer scale.

Paper claims: good CNT growth on a Co catalyst is possible at CMOS-compatible
temperatures (< 400 C), albeit slower / more defective than hot growth, and
full 300 mm wafer growth with good starting uniformity was demonstrated.
"""

from repro.analysis.report import format_table
from repro.process.catalyst import CO_CATALYST, FE_CATALYST, cmos_compatible
from repro.process.growth import GrowthRecipe, growth_temperature_sweep, simulate_growth
from repro.process.wafer import simulate_wafer_growth
from repro.units import celsius_to_kelvin


def test_growth_temperature_window(benchmark):
    temperatures = [celsius_to_kelvin(t) for t in (300.0, 350.0, 400.0, 450.0, 500.0, 600.0)]
    results = benchmark(growth_temperature_sweep, temperatures)

    print()
    rows = [
        {
            "T_C": t - 273.15,
            "length_um": r.mean_length * 1e6,
            "quality": r.quality,
            "yield": r.nucleation_yield,
            "CMOS_ok": r.cmos_compatible,
        }
        for t, r in zip(temperatures, results)
    ]
    print(format_table(rows, title="Co-catalyst growth window"))

    at_400 = results[3 - 1]  # 400 C entry
    hot = results[-1]
    # Growth at 400 C on Co is possible (non-zero length, reasonable yield)...
    assert at_400.mean_length > 0
    assert at_400.nucleation_yield > 0.3
    assert at_400.cmos_compatible
    # ...but hotter growth is faster and cleaner (the paper's trade-off).
    assert hot.mean_length > at_400.mean_length
    assert hot.quality >= at_400.quality
    assert not hot.cmos_compatible
    # Fe-catalyst growth is never CMOS compatible regardless of temperature.
    assert not cmos_compatible(FE_CATALYST, celsius_to_kelvin(390.0))
    assert cmos_compatible(CO_CATALYST, celsius_to_kelvin(390.0))


def test_wafer_uniformity(benchmark):
    wafer = benchmark(simulate_wafer_growth)
    print()
    print(
        f"{wafer.n_dies} dies on 300 mm, uniformity {100*wafer.uniformity:.1f} %, "
        f"CV {100*wafer.coefficient_of_variation:.1f} %"
    )
    # "good starting uniformity and full 300 mm wafer CNT-growth"
    assert wafer.n_dies > 100
    assert wafer.uniformity > 0.8
