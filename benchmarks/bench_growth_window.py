"""Experiment E10 (growth) -- Section II.B: Co-catalyst growth window and wafer scale.

Thin wrappers over the registered ``growth_window`` and ``wafer_uniformity``
experiments.  Paper claims: good CNT growth on a Co catalyst is possible at
CMOS-compatible temperatures (< 400 C), albeit slower / more defective than
hot growth, and full 300 mm wafer growth with good starting uniformity was
demonstrated.
"""

from repro.analysis.report import format_table
from repro.api import Engine


def test_growth_temperature_window(benchmark):
    result = benchmark(Engine().run, "growth_window")

    print()
    print(format_table(result.to_records(), title="Co-catalyst growth window"))

    at_400 = result.filter(temperature_c=400.0)[0]
    hot = result.filter(temperature_c=600.0)[0]
    # Growth at 400 C on Co is possible (non-zero length, reasonable yield)...
    assert at_400["mean_length_um"] > 0
    assert at_400["nucleation_yield"] > 0.3
    assert at_400["cmos_compatible"]
    # ...but hotter growth is faster and cleaner (the paper's trade-off).
    assert hot["mean_length_um"] > at_400["mean_length_um"]
    assert hot["quality"] >= at_400["quality"]
    assert not hot["cmos_compatible"]
    # Fe-catalyst growth is never CMOS compatible regardless of temperature.
    engine = Engine()
    fe = engine.run("growth_window", temperatures_c=(390.0,), catalyst="Fe")
    assert not fe[0]["cmos_compatible"]
    co = engine.run("growth_window", temperatures_c=(390.0,), catalyst="Co")
    assert co[0]["cmos_compatible"]


def test_wafer_uniformity(benchmark):
    result = benchmark(Engine().run, "wafer_uniformity")
    wafer = result[0]
    print()
    print(
        f"{wafer['n_dies']} dies on 300 mm, uniformity {100*wafer['uniformity']:.1f} %, "
        f"CV {100*wafer['coefficient_of_variation']:.1f} %"
    )
    # "good starting uniformity and full 300 mm wafer CNT-growth"
    assert wafer["n_dies"] > 100
    assert wafer["uniformity"] > 0.8
