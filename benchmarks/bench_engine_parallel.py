"""Engine fan-out baseline: serial vs parallel sweep execution.

Times the same Fig. 12 contact-resistance sweep (MNA transient mode,
8 points) through the experiment engine's serial, thread-pool and
process-pool executors, so future scaling PRs have a like-for-like perf
baseline::

    pytest benchmarks/bench_engine_parallel.py --benchmark-only

The hard guarantee checked here is *parity*: every executor must return a
record-for-record identical ResultSet.  Speedup is reported by the
benchmark timings but deliberately not asserted -- it depends on the host
(on a single-core CI runner the pools only add dispatch overhead; the
process pool additionally pays worker startup).
"""

import pytest

from repro.api import Engine, SweepSpec

SPEC = SweepSpec.grid(
    contact_resistance=[50e3, 100e3, 150e3, 200e3, 250e3, 300e3, 400e3, 500e3]
)
BASE_PARAMS = {
    "diameters_nm": (10.0,),
    "lengths_um": (100.0, 500.0),
    "channel_counts": (2.0, 10.0),
    "use_transient": True,
    "n_segments": 10,
}


def _sweep(executor: str, max_workers: int | None = None):
    engine = Engine(executor=executor, max_workers=max_workers)
    return engine.sweep("fig12", SPEC, base_params=BASE_PARAMS)


@pytest.fixture(scope="module")
def serial_reference():
    return _sweep("serial")


def test_engine_sweep_serial(once, benchmark):
    result = once(benchmark, _sweep, "serial")
    assert len(result) == len(SPEC) * 1 * 2 * 2  # points x D x L x Nc
    assert result.meta["executor"] == "serial"


def test_engine_sweep_thread_pool(once, benchmark, serial_reference):
    result = once(benchmark, _sweep, "thread", 4)
    assert result == serial_reference


def test_engine_sweep_process_pool(once, benchmark, serial_reference):
    result = once(benchmark, _sweep, "process", 4)
    assert result == serial_reference


def test_sweep_point_caching_amortises_rerun(once, benchmark, tmp_path):
    """Second sweep through a warm cache must be pure cache hits."""
    warm = Engine(cache_dir=str(tmp_path))
    warm.sweep("fig12", SPEC, base_params=BASE_PARAMS)

    engine = Engine(cache_dir=str(tmp_path))
    result = once(benchmark, engine.sweep, "fig12", SPEC, base_params=BASE_PARAMS)
    assert engine.cache_hits == len(SPEC)
    assert engine.cache_misses == 0
    assert result == warm.sweep("fig12", SPEC, base_params=BASE_PARAMS)
