"""Experiment E9 -- Section IV.B: transmission-line-measurement extraction.

Paper description: MWCNTs of different lengths are contacted, the resistance
is measured, and the correlation of resistance with length separates the
contact resistance (intercept) from the CNT resistance per unit length
(slope).  The benchmark runs the full measure-then-extract round trip on
synthetic data and checks that the truth is recovered.
"""

import pytest

from repro.characterization.tlm import tlm_round_trip
from repro.core import MWCNTInterconnect
from repro.units import nm, um

LENGTHS = [um(1), um(2), um(5), um(10), um(20), um(50)]


def test_tlm_round_trip(benchmark):
    device = MWCNTInterconnect(outer_diameter=nm(7.5), length=um(2))
    extraction, true_contact, true_slope = benchmark(
        tlm_round_trip, device, LENGTHS, 30e3, 0.02, 0
    )

    print()
    print(
        f"contact resistance: extracted {extraction.contact_resistance/1e3:.1f} kOhm "
        f"(true {true_contact/1e3:.1f} kOhm)"
    )
    print(
        f"resistance per length: extracted {extraction.resistance_per_length/1e9:.2f} kOhm/um "
        f"(true {true_slope/1e9:.2f} kOhm/um), R^2 = {extraction.r_squared:.3f}"
    )

    assert extraction.contact_resistance == pytest.approx(true_contact, rel=0.2)
    assert extraction.resistance_per_length == pytest.approx(true_slope, rel=0.2)
    assert extraction.r_squared > 0.9
    assert extraction.transfer_length() > 0
