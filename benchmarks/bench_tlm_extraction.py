"""Experiment E9 -- Section IV.B: transmission-line-measurement extraction.

Thin wrapper over the registered ``tlm`` experiment.  Paper description:
MWCNTs of different lengths are contacted, the resistance is measured, and
the correlation of resistance with length separates the contact resistance
(intercept) from the CNT resistance per unit length (slope).  The benchmark
runs the full measure-then-extract round trip on synthetic data and checks
that the truth is recovered.
"""

import pytest

from repro.api import Engine


def test_tlm_round_trip(benchmark):
    result = benchmark(Engine().run, "tlm")
    record = result[0]

    print()
    print(
        f"contact resistance: extracted {record['contact_resistance_kohm']:.1f} kOhm "
        f"(true {record['true_contact_resistance_kohm']:.1f} kOhm)"
    )
    print(
        f"resistance per length: extracted {record['resistance_per_length_kohm_per_um']:.2f} kOhm/um "
        f"(true {record['true_resistance_per_length_kohm_per_um']:.2f} kOhm/um), "
        f"R^2 = {record['r_squared']:.3f}"
    )

    assert record["contact_resistance_kohm"] == pytest.approx(
        record["true_contact_resistance_kohm"], rel=0.2
    )
    assert record["resistance_per_length_kohm_per_um"] == pytest.approx(
        record["true_resistance_per_length_kohm_per_um"], rel=0.2
    )
    assert record["r_squared"] > 0.9
    assert record["transfer_length_um"] > 0
