"""Ablation A5 -- copper size effects in the Fig. 9 comparison.

Fig. 9's message (CNTs overtake scaled copper for long lines) relies on the
copper reference including surface and grain-boundary scattering.  The
ablation quantifies how much of the CNT advantage comes from those size
effects: against ideal bulk-resistivity copper the crossover moves to much
longer lines (or disappears for small-diameter CNTs).
"""

import numpy as np

from repro.analysis.fig9_conductivity import crossover_length_um, run_fig9

LENGTHS_UM = tuple(np.logspace(-2, 2, 13))


def test_ablation_copper_size_effects(benchmark):
    def sweep():
        return {
            "with_size_effects": run_fig9(lengths_um=LENGTHS_UM, include_cu_size_effects=True),
            "bulk_copper": run_fig9(lengths_um=LENGTHS_UM, include_cu_size_effects=False),
        }

    results = benchmark(sweep)

    crossover_real = crossover_length_um(
        results["with_size_effects"], "MWCNT D=22nm", "Cu w=20nm"
    )
    crossover_bulk = crossover_length_um(results["bulk_copper"], "MWCNT D=22nm", "Cu w=20nm")

    print()
    print(f"crossover vs scaled Cu (size effects on):  {crossover_real} um")
    print(f"crossover vs ideal bulk Cu:                {crossover_bulk} um")

    assert crossover_real is not None
    # Removing the size effects makes copper strictly better, so the crossover
    # can only move to longer lengths or disappear.
    if crossover_bulk is not None:
        assert crossover_bulk >= crossover_real

    # The copper conductivity itself improves when size effects are disabled.
    def copper_at(records, length):
        return next(
            r["conductivity_ms_per_m"]
            for r in records
            if r["line"] == "Cu w=20nm" and abs(r["length_um"] - length) < 1e-9
        )

    assert copper_at(results["bulk_copper"], 1.0) > copper_at(results["with_size_effects"], 1.0)
