"""Experiment E7 -- Section I text table: ampacity and minimum-density comparison.

Thin wrapper over the registered ``table_ampacity`` and ``table_density``
experiments.  Paper claims: Cu is EM-limited to 1e6 A/cm^2 (the 100 nm x
50 nm reference line carries at most ~50 uA) while a single ~1 nm CNT
carries 20-25 uA at up to 1e9 A/cm^2, so a few CNTs match a Cu line; a pure
CNT interconnect needs at least 0.096 tubes/nm^2 to also win on resistance.
"""

import pytest

from repro.analysis.paper_reference import PAPER_REFERENCE
from repro.analysis.report import format_table
from repro.api import Engine
from repro.core.ampacity import cnts_needed_to_match_copper


def test_ampacity_table(benchmark):
    rows = benchmark(Engine().run, "table_ampacity").to_records()
    print()
    print(format_table(rows, title="Section I ampacity comparison"))

    copper_row, cnt_row, bundle_row = rows[0], rows[1], rows[2]
    assert copper_row["max_current_uA"] == pytest.approx(
        PAPER_REFERENCE["copper_reference_line_max_current_ua"], rel=0.02
    )
    low, high = PAPER_REFERENCE["cnt_per_tube_current_ua"]
    assert low <= cnt_row["max_current_uA"] <= high
    assert cnt_row["max_current_density_A_per_cm2"] == pytest.approx(
        PAPER_REFERENCE["cnt_breakdown_a_per_cm2"], rel=0.1
    )
    assert bundle_row["max_current_uA"] > copper_row["max_current_uA"]
    # "a few CNTs are enough to match the current carrying capacity of a
    # typical Cu interconnect"
    assert 1 < cnts_needed_to_match_copper() <= 5


def test_minimum_density_table(benchmark):
    rows = benchmark(Engine().run, "table_density").to_records()
    print()
    print(format_table(rows, title="Minimum-density argument (0.096 nm^-2)"))

    copper, at_minimum, close_packed = rows[0], rows[1], rows[2]
    assert at_minimum["density_per_nm2"] == pytest.approx(
        PAPER_REFERENCE["minimum_cnt_density_per_nm2"], rel=0.01
    )
    # At the minimum density the bundle is comparable to (or still worse than)
    # copper; a close-packed bundle clearly beats it.
    assert at_minimum["resistance_ohm"] > copper["resistance_ohm"]
    assert close_packed["resistance_ohm"] < at_minimum["resistance_ohm"]
