"""Extension experiments E12/E13 -- design-space exploration and 3-D TSVs.

The paper's abstract and conclusion motivate CNT interconnects with energy
efficiency, design-space exploration and 3-D integration (through-silicon
vias).  These benches exercise the extension layers built on top of the
reproduction: optimal repeater insertion / energy-delay comparison across
wiring materials, and the Cu vs CNT vs composite TSV comparison.
"""

from repro.analysis.energy import best_material_per_length, doping_energy_benefit, run_energy_study
from repro.analysis.report import format_table
from repro.core.tsv import tsv_comparison


def test_energy_design_space(benchmark):
    records = benchmark(run_energy_study, (200.0, 500.0, 1000.0))

    print()
    print(format_table(records, title="Optimally repeated lines: delay / energy / EDP"))
    winners = best_material_per_length(records, metric="edp_fJ_ns")
    print(f"EDP winner per length: {winners}")

    # Every candidate produces a valid design at every length.
    assert len(records) == 12
    assert all(record["delay_ps"] > 0 and record["energy_fJ"] > 0 for record in records)
    # Longer lines are slower for every material.
    for material in {record["line"] for record in records}:
        delays = [
            r["delay_ps"]
            for r in sorted(
                (r for r in records if r["line"] == material), key=lambda r: r["length_um"]
            )
        ]
        assert delays == sorted(delays)

    benefit = doping_energy_benefit(length_um=500.0)
    print(f"doping benefit at 500 um: {benefit}")
    # Doping improves delay and EDP at essentially unchanged switching energy.
    assert benefit["delay_ratio"] < 1.0
    assert benefit["edp_ratio"] < 1.0
    assert abs(benefit["energy_ratio"] - 1.0) < 0.1


def test_tsv_comparison(benchmark):
    rows = benchmark(tsv_comparison)

    print()
    print(format_table(rows, title="5 um x 50 um TSV: Cu vs CNT bundle vs Cu-CNT composite"))

    copper, cnt, composite = rows
    # The CNT TSV trades some resistance for a big ampacity and thermal gain...
    assert cnt["max_current_mA"] > 10 * copper["max_current_mA"]
    assert cnt["thermal_resistance_K_per_W"] < 0.5 * copper["thermal_resistance_K_per_W"]
    # ...and the composite recovers most of the resistance penalty.
    assert composite["resistance_mohm"] < cnt["resistance_mohm"]
    assert composite["max_current_mA"] > copper["max_current_mA"]
