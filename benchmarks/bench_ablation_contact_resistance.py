"""Ablation A4 -- metal-CNT contact resistance in the Fig. 12 benchmark.

The absolute delay-reduction percentages of Fig. 12 depend on how much
doping-independent series resistance (driver + contacts) the line sees; the
reproduction's default (250 kOhm) is calibrated to the experimentally
observed contact-resistance range and reproduces the paper's 10/5/2 % levels.
This ablation sweeps the contact resistance and shows that

* the diameter ordering (10 nm benefits most) is robust for every value, and
* the absolute reduction shrinks as the contact resistance grows (ideal
  contacts would make doping far *more* valuable than the paper reports).
"""

from repro.analysis.fig12_delay_ratio import DelayRatioStudy, run_fig12, summarize_at_length
from repro.analysis.report import format_table

CONTACTS = (0.0, 50e3, 100e3, 250e3, 500e3)


def test_ablation_contact_resistance(benchmark):
    def sweep():
        results = {}
        for contact in CONTACTS:
            study = DelayRatioStudy(
                lengths_um=(500.0,),
                channel_counts=(2.0, 10.0),
                contact_resistance=contact,
                use_transient=False,
            )
            results[contact] = summarize_at_length(run_fig12(study), 500.0, 10.0)
        return results

    results = benchmark(sweep)

    print()
    rows = [
        {
            "contact_kOhm": contact / 1e3,
            "reduction_D10_%": 100 * summary[10.0],
            "reduction_D14_%": 100 * summary[14.0],
            "reduction_D22_%": 100 * summary[22.0],
        }
        for contact, summary in results.items()
    ]
    print(format_table(rows, title="Delay reduction at 500 um / Nc=10 vs contact resistance"))

    reductions_d10 = [summary[10.0] for summary in results.values()]
    # Ordering robust for every contact resistance.
    for summary in results.values():
        assert summary[10.0] > summary[14.0] > summary[22.0]
    # More contact resistance dilutes the doping benefit monotonically.
    assert all(b <= a + 1e-12 for a, b in zip(reductions_d10, reductions_d10[1:]))
    # With ideal contacts the benefit is far larger than the paper's 10 %.
    assert reductions_d10[0] > 0.4
