"""Experiment E10 -- Section II.A: resistance variability and doping as its cure.

Thin wrapper over the registered ``variability`` experiment.  Paper claims:
CVD-grown CNTs vary in resistance because of chirality (2/3 semiconducting),
defects and contacts; doping suppresses that variability.
"""

from repro.analysis.report import format_table
from repro.api import Engine


def test_variability_pristine_vs_doped(benchmark):
    result = benchmark(Engine().run, "variability", {"n_devices": 400})

    pristine = result.filter(population="pristine")[0]
    doped = result.filter(population="doped")[0]

    print()
    print(
        format_table(
            result.to_records(),
            title="MWCNT interconnect resistance variability (10 um lines)",
        )
    )

    # Doping lowers the mean resistance, narrows the spread and rescues the
    # devices that drew no metallic shell at all in the chirality lottery.
    assert doped["mean_kohm"] < pristine["mean_kohm"]
    assert (
        doped["coefficient_of_variation"]
        < pristine["coefficient_of_variation"] * 0.9
    )
    assert doped["open_fraction"] == 0.0
    # A non-negligible fraction of pristine MWCNTs has no metallic shell
    # ((2/3)^Ns of the devices) and is effectively open.
    assert 0.02 < pristine["open_fraction"] < 0.5
