"""Experiment E10 -- Section II.A: resistance variability and doping as its cure.

Paper claims: CVD-grown CNTs vary in resistance because of chirality (2/3
semiconducting), defects and contacts; doping suppresses that variability.
"""

from repro.analysis.report import format_table
from repro.process.variability import doping_variability_comparison


def test_variability_pristine_vs_doped(benchmark):
    comparison = benchmark(doping_variability_comparison, 10.0e-6, 6.0, 400, 0)

    pristine = comparison["pristine"]
    doped = comparison["doped"]

    print()
    rows = [
        {
            "population": name,
            "mean_kOhm": result.mean / 1e3,
            "CV": result.coefficient_of_variation,
            "open_fraction": result.open_fraction,
        }
        for name, result in comparison.items()
    ]
    print(format_table(rows, title="MWCNT interconnect resistance variability (10 um lines)"))

    # Doping lowers the mean resistance, narrows the spread and rescues the
    # devices that drew no metallic shell at all in the chirality lottery.
    assert doped.mean < pristine.mean
    assert doped.coefficient_of_variation < pristine.coefficient_of_variation * 0.9
    assert doped.open_fraction == 0.0
    # A non-negligible fraction of pristine MWCNTs has no metallic shell
    # ((2/3)^Ns of the devices) and is effectively open.
    assert 0.02 < pristine.open_fraction < 0.5
