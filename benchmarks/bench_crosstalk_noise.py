"""Extension of experiment E4 -- circuit-level consequence of the Fig. 10a crosstalk.

Thin wrapper over the registered ``crosstalk`` experiment: two identical
MWCNT lines are coupled with the capacitance obtained from the TCAD
extraction and the induced noise glitch and delay push-out are measured with
the MNA transient engine -- the signal-integrity question the paper's
field-streamline figure raises.
"""

from repro.analysis.report import format_table
from repro.api import Engine


def test_crosstalk_noise_from_tcad_coupling(once, benchmark):
    result = once(benchmark, Engine().run, "crosstalk", {"resolution": 3})
    record = result[0]

    print()
    print(format_table(result.to_records(), title="TCAD-coupled crosstalk (50 um lines)"))

    # The extracted coupling produces a visible but non-destructive glitch...
    assert 0.01 < record["noise_peak_fraction"] < 0.9
    # ...and an opposite-switching aggressor slows the victim down.
    assert record["delay_pushout"] > 0.05
    assert record["victim_delay_opposite_ps"] > record["victim_delay_quiet_ps"]
