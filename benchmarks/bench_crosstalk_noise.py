"""Extension of experiment E4 -- circuit-level consequence of the Fig. 10a crosstalk.

Couples two identical MWCNT lines with the coupling capacitance obtained from
the TCAD extraction and measures the induced noise glitch and the delay
push-out with the MNA transient engine -- the signal-integrity question the
paper's field-streamline figure raises.
"""

from repro.analysis.fig10_tcad import run_fig10_capacitance
from repro.circuit.crosstalk import analyze_crosstalk
from repro.core import InterconnectLine, MWCNTInterconnect
from repro.units import nm, um

LINE_LENGTH_UM = 50.0


def test_crosstalk_noise_from_tcad_coupling(once, benchmark):
    def experiment():
        extraction = run_fig10_capacitance(resolution=3)
        coupling_per_length = extraction["victim_coupling_af_per_um"] * 1e-18 / 1e-6
        line = InterconnectLine(
            MWCNTInterconnect(
                outer_diameter=nm(10), length=um(LINE_LENGTH_UM), contact_resistance=100e3
            ),
            n_segments=8,
        )
        coupling = coupling_per_length * um(LINE_LENGTH_UM)
        return extraction, analyze_crosstalk(line, coupling, n_time_steps=400)

    extraction, result = once(benchmark, experiment)

    print()
    print(
        f"TCAD coupling {extraction['victim_coupling_af_per_um']:.1f} aF/um over "
        f"{LINE_LENGTH_UM:g} um -> noise peak {100*result.noise_peak_fraction:.1f} % of VDD, "
        f"delay push-out {100*result.delay_pushout:.1f} %"
    )

    # The extracted coupling produces a visible but non-destructive glitch...
    assert 0.01 < result.noise_peak_fraction < 0.9
    # ...and an opposite-switching aggressor slows the victim down.
    assert result.delay_pushout > 0.05
    assert result.victim_delay_opposite_switching > result.victim_delay_quiet
