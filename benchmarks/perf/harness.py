"""Perf-trajectory harness: times the hot paths, asserts speedup + parity.

Each case times a *legacy* implementation against the *fast* path, checks
numerical parity between the two, and reports wall-clock numbers.
:func:`run_suite` executes every case and returns the machine-readable
record that ``run.py`` writes to ``BENCH_<pr>.json`` -- the perf trajectory
future PRs extend and compare against.

The fast sides layer the optimisation rounds: PR 3 introduced the compiled
sparse MNA path and the vectorised Monte Carlo; PR 8 adds Newton
factorization reuse (``SolverOptions(newton="freeze")``, the
``newton_reuse`` case and the delay/crosstalk fast sides), stacked
same-topology transient batching (``batched_sweep``), the engine's
``batch`` executor (``engine_sweep``) and batched lease claims in the
worker loop (``dist_workers``).

Modes
-----
``full`` (default)
    Paper-scale problem sizes.  Speedup floors are asserted (the ISSUE-3 /
    ISSUE-8 acceptance criteria in :data:`SPEEDUP_FLOORS`).
``smoke``
    Reduced sizes for CI: parity is still asserted (it is
    size-independent), speedup floors are reported but not enforced --
    shared CI runners make wall-clock guarantees meaningless.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.api import Engine, SweepSpec
from repro.circuit import Circuit, Step, solver_backend, transient_analysis
from repro.circuit.compiled import SolverOptions
from repro.circuit.crosstalk import analyze_crosstalk
from repro.circuit.delay import (
    measure_inverter_line_delay,
    measure_inverter_line_delay_batch,
)
from repro.circuit.mna import MNAAssembler
from repro.circuit.rcline import add_rc_ladder
from repro.core import InterconnectLine, MWCNTInterconnect
from repro.core.line import DistributedRC
from repro.process.variability import VariabilityInputs, resistance_variability
from repro.units import nm, um

PARITY_RTOL = 1.0e-9

FREEZE = SolverOptions(newton="freeze")
"""The reused-factorization Newton policy every PR-8 fast side runs under."""

SPEEDUP_FLOORS = {
    "transient_rc_line": 5.0,
    "variability_mc": 10.0,
    "delay_benchmark": 6.0,
    "crosstalk": 4.0,
    "engine_sweep": 1.2,
    "dist_workers": 1.0,
    "newton_reuse": 1.5,
    "batched_sweep": 2.5,
}
"""Acceptance floors (full mode only): ISSUE 3 for the first two, ISSUE 8
for the rest.  ``engine_sweep`` and ``dist_workers`` run on whatever the
host gives them (possibly one core), so their floors only assert that the
batch executor / batched worker never *lose* to serial dispatch."""


@dataclass
class CaseResult:
    """Outcome of one benchmark case."""

    name: str
    legacy_s: float
    fast_s: float
    parity_max_rel: float
    detail: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.legacy_s / self.fast_s if self.fast_s > 0 else float("inf")

    def to_record(self) -> dict:
        return {
            "name": self.name,
            "legacy_s": round(self.legacy_s, 6),
            "fast_s": round(self.fast_s, 6),
            "speedup": round(self.speedup, 2),
            "parity_max_rel": self.parity_max_rel,
            **self.detail,
        }


def _timed(function: Callable, repeats: int = 1):
    """(best wall time over ``repeats`` runs, last return value)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = function()
        best = min(best, time.perf_counter() - start)
    return best, value


def _waveform_parity(reference, candidate) -> float:
    scale = max(max(np.max(np.abs(w)) for w in reference.node_voltages.values()), 1e-30)
    worst = max(
        float(np.max(np.abs(reference.voltage(n) - candidate.voltage(n))))
        for n in reference.node_voltages
    )
    return worst / scale


# --- cases -------------------------------------------------------------------


def case_transient_rc_line(smoke: bool) -> CaseResult:
    """Headline case: segmented RC line, dense re-stamping vs compiled sparse.

    Full mode uses >= 200 nodes and >= 500 steps (the ISSUE-3 benchmark
    shape); the matrix is static, so the sparse path pays one LU
    factorization and then only triangular solves.
    """
    n_segments = 60 if smoke else 220
    n_steps = 150 if smoke else 500

    circuit = Circuit("segmented RC line")
    circuit.add_voltage_source("vin", "a", "0", Step(0.0, 1.0, delay=1e-12, rise_time=5e-12))
    circuit.add_resistor("rdrv", "a", "n0", 1e3)
    ladder = DistributedRC(
        total_resistance=5e4,
        total_capacitance=2e-13,
        contact_resistance=6e3,
        n_segments=n_segments,
    )
    add_rc_ladder(circuit, ladder, "n0", "far", name_prefix="dut")
    circuit.add_capacitor("cl", "far", "0", 5e-15)
    size = MNAAssembler(circuit).size

    stop = 2e-9
    dt = stop / n_steps
    legacy_s, reference = _timed(
        lambda: transient_analysis(circuit, stop, dt, backend="dense")
    )
    fast_s, candidate = _timed(
        lambda: transient_analysis(circuit, stop, dt, backend="sparse"), repeats=3
    )
    return CaseResult(
        name="transient_rc_line",
        legacy_s=legacy_s,
        fast_s=fast_s,
        parity_max_rel=_waveform_parity(reference, candidate),
        detail={"n_nodes": size, "n_steps": n_steps},
    )


def case_variability_mc(smoke: bool) -> CaseResult:
    """500-device Monte Carlo: per-device objects vs whole-population numpy."""
    n_devices = 200 if smoke else 500
    inputs = VariabilityInputs()

    legacy_s, reference = _timed(
        lambda: resistance_variability(inputs, n_devices=n_devices, seed=0, vectorized=False),
        repeats=3,
    )
    fast_s, candidate = _timed(
        lambda: resistance_variability(inputs, n_devices=n_devices, seed=0, vectorized=True),
        repeats=5,
    )
    parity = max(
        float(
            np.max(
                np.abs(reference.resistances - candidate.resistances)
                / np.abs(reference.resistances)
            )
        ),
        abs(reference.open_fraction - candidate.open_fraction),
    )
    return CaseResult(
        name="variability_mc",
        legacy_s=legacy_s,
        fast_s=fast_s,
        parity_max_rel=parity,
        detail={"n_devices": n_devices, "mean_ohm": round(candidate.mean, 3)},
    )


def case_delay_benchmark(smoke: bool) -> CaseResult:
    """Fig. 11 inverter-line-inverter benchmark (nonlinear Newton path).

    The fast side stacks both optimisation rounds: compiled sparse MNA
    (PR 3) plus frozen-factorization Newton (PR 8), which is what the
    experiment stack runs when flipped to freeze mode.
    """
    n_segments = 30 if smoke else 200
    n_steps = 200 if smoke else 600
    tube = MWCNTInterconnect(
        outer_diameter=nm(10), length=um(200), contact_resistance=100e3
    )
    line = InterconnectLine(tube, n_segments=n_segments)

    legacy_s, reference = _timed(
        lambda: measure_inverter_line_delay(line, n_time_steps=n_steps, backend="dense")
    )
    fast_s, candidate = _timed(
        lambda: measure_inverter_line_delay(
            line, n_time_steps=n_steps, backend="sparse", solver_opts=FREEZE
        )
    )
    parity = abs(candidate.propagation_delay - reference.propagation_delay) / abs(
        reference.propagation_delay
    )
    return CaseResult(
        name="delay_benchmark",
        legacy_s=legacy_s,
        fast_s=fast_s,
        parity_max_rel=parity,
        detail={
            "n_segments": n_segments,
            "delay_ps": round(candidate.propagation_delay * 1e12, 4),
        },
    )


def case_crosstalk(smoke: bool) -> CaseResult:
    """Victim/aggressor crosstalk: two coupled ladders + four inverters.

    Like :func:`case_delay_benchmark`, the fast side is sparse + frozen
    Newton -- three transients per call, so factorization reuse compounds.
    """
    n_segments = 8 if smoke else 80
    n_steps = 150 if smoke else 400
    tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(50), contact_resistance=100e3)
    line = InterconnectLine(tube, n_segments=n_segments)
    coupling = 40e-18 / 1e-6 * um(50)  # ~40 aF/um of line-to-line coupling

    legacy_s, reference = _timed(
        lambda: analyze_crosstalk(line, coupling, n_time_steps=n_steps, backend="dense")
    )
    fast_s, candidate = _timed(
        lambda: analyze_crosstalk(
            line, coupling, n_time_steps=n_steps, backend="sparse", solver_opts=FREEZE
        )
    )
    parity = max(
        abs(candidate.noise_peak - reference.noise_peak)
        / max(abs(reference.noise_peak), 1e-30),
        abs(candidate.victim_delay_quiet - reference.victim_delay_quiet)
        / max(abs(reference.victim_delay_quiet), 1e-30),
    )
    return CaseResult(
        name="crosstalk",
        legacy_s=legacy_s,
        fast_s=fast_s,
        parity_max_rel=parity,
        detail={
            "n_segments_per_line": n_segments,
            "noise_peak_fraction": round(candidate.noise_peak_fraction, 6),
        },
    )


def case_engine_sweep(smoke: bool) -> CaseResult:
    """Engine fan-out: serial dispatch vs the ``batch`` executor.

    The same transient-heavy Fig. 12 sweep the PR-1 baseline used, but the
    fast side now runs ``Engine(executor="batch")``: every pending point
    feeds one stacked evaluation through the experiment's ``batch_fn``
    (same-topology transients solve together), so the win does not depend
    on spare cores.  Content-hash identity between the serial and batched
    sweeps is the invariant -- the records must be float-identical, not
    just close.
    """
    contacts = [100e3, 250e3] if smoke else [50e3, 100e3, 150e3, 200e3, 300e3, 400e3]
    spec = SweepSpec.grid(contact_resistance=contacts)
    base = {
        "diameters_nm": (10.0,),
        "lengths_um": (100.0,) if smoke else (100.0, 500.0),
        "channel_counts": (2.0, 10.0),
        "use_transient": True,
        "n_segments": 10,
    }

    # Warm-up: pay the one-time registry import outside the timed region.
    Engine().run("fig12", use_transient=False, **{k: v for k, v in base.items() if k != "use_transient"})

    legacy_s, reference = _timed(lambda: Engine().sweep("fig12", spec, base_params=base))
    fast_s, candidate = _timed(
        lambda: Engine(executor="batch").sweep("fig12", spec, base_params=base)
    )
    if candidate.content_hash != reference.content_hash:
        raise AssertionError(
            "batch-executor sweep is not content-hash identical to serial: "
            f"{candidate.content_hash} != {reference.content_hash}"
        )
    parity = 0.0 if candidate == reference else float("inf")
    return CaseResult(
        name="engine_sweep",
        legacy_s=legacy_s,
        fast_s=fast_s,
        parity_max_rel=parity,
        detail={
            "n_points": len(spec),
            "executor": "batch",
            "content_hash": candidate.content_hash[:16],
        },
    )


def case_dist_workers(smoke: bool) -> CaseResult:
    """Distributed fan-out: serial engine vs two lease-claiming workers.

    The workers cooperate only through a :class:`repro.dist.SharedStore`
    (locked claims + atomic publish); the case asserts every point was
    executed exactly once across the workers and that the merged-from-store
    sweep equals the serial run bit-for-bit -- the PR-4 acceptance
    invariant.  Since PR 8 the loop claims in batches (``claim_many``: one
    store lock per pass instead of one per point) and executes its
    acquired fig12 points through the experiment's ``batch_fn``, so two
    GIL-sharing thread workers are expected to at least *match* serial
    dispatch (floor 1.0) instead of losing to lock round trips.
    """
    import shutil
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from repro.dist import SharedStore, run_worker

    contacts = [100e3, 250e3] if smoke else [50e3, 100e3, 200e3, 400e3]
    spec = SweepSpec.grid(contact_resistance=contacts)
    base = {
        "diameters_nm": (10.0,),
        "lengths_um": (100.0,),
        "channel_counts": (2.0, 10.0),
        "use_transient": True,
        "n_segments": 10,
    }

    legacy_s, reference = _timed(lambda: Engine().sweep("fig12", spec, base_params=base))
    claim_round_trips: list[int] = []

    def distributed():
        directory = tempfile.mkdtemp(prefix="repro-dist-bench-")
        try:
            store = SharedStore(directory)
            with ThreadPoolExecutor(max_workers=2) as pool:
                reports = [
                    future.result()
                    for future in [
                        pool.submit(
                            run_worker,
                            "fig12",
                            spec,
                            store,
                            base_params=base,
                            worker_id=f"bench-w{i}",
                        )
                        for i in range(2)
                    ]
                ]
            executed = sum(len(report.executed) for report in reports)
            if executed != len(spec):
                raise AssertionError(
                    f"{executed} executions for {len(spec)} points (duplicates or losses)"
                )
            claim_round_trips[:] = [
                sum(report.claim_round_trips for report in reports)
            ]
            return Engine(store=store).sweep("fig12", spec, base_params=base)
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    fast_s, candidate = _timed(distributed)
    parity = 0.0 if candidate == reference else float("inf")
    return CaseResult(
        name="dist_workers",
        legacy_s=legacy_s,
        fast_s=fast_s,
        parity_max_rel=parity,
        detail={
            "n_points": len(spec),
            "n_workers": 2,
            "claim_round_trips": claim_round_trips[0],
        },
    )


def case_newton_reuse(smoke: bool) -> CaseResult:
    """Frozen-factorization Newton vs per-iteration refactorization.

    Isolates the PR-8 solver win from the PR-3 backend win: both sides run
    the compiled *sparse* path on the Fig. 11 delay benchmark; only the
    Newton policy differs (``exact`` refactorizes every iteration,
    ``freeze`` reuses one numeric LU across iterations and steps with
    residual-triggered refreshes).  Full mode uses a longer ladder than
    ``delay_benchmark``: factorization cost grows with the system while the
    per-iteration triangular solves stay cheap, so this is the regime the
    freeze policy exists for.
    """
    n_segments = 30 if smoke else 800
    n_steps = 200 if smoke else 600
    tube = MWCNTInterconnect(
        outer_diameter=nm(10), length=um(200), contact_resistance=100e3
    )
    line = InterconnectLine(tube, n_segments=n_segments)

    legacy_s, reference = _timed(
        lambda: measure_inverter_line_delay(
            line, n_time_steps=n_steps, backend="sparse", solver_opts=SolverOptions()
        )
    )
    fast_s, candidate = _timed(
        lambda: measure_inverter_line_delay(
            line, n_time_steps=n_steps, backend="sparse", solver_opts=FREEZE
        )
    )
    parity = abs(candidate.propagation_delay - reference.propagation_delay) / abs(
        reference.propagation_delay
    )
    return CaseResult(
        name="newton_reuse",
        legacy_s=legacy_s,
        fast_s=fast_s,
        parity_max_rel=parity,
        detail={
            "n_segments": n_segments,
            "delay_ps": round(candidate.propagation_delay * 1e12, 4),
        },
    )


def case_batched_sweep(smoke: bool) -> CaseResult:
    """Stacked same-topology transients vs one solve per line.

    The PR-8 batched point evaluation in isolation: N inverter-line delay
    benchmarks that differ only in contact resistance (same topology, all
    below the dense-backend threshold) are measured one call at a time vs
    through :func:`~repro.circuit.delay.measure_inverter_line_delay_batch`,
    which stacks the per-step linear systems into one dense kernel.
    Results are required to be float-identical per line.
    """
    n_lines = 4 if smoke else 16
    n_segments = 8 if smoke else 12
    n_steps = 150 if smoke else 400
    lines = [
        InterconnectLine(
            MWCNTInterconnect(
                outer_diameter=nm(10),
                length=um(100),
                contact_resistance=100e3 + 25e3 * index,
            ),
            n_segments=n_segments,
        )
        for index in range(n_lines)
    ]

    legacy_s, reference = _timed(
        lambda: [
            measure_inverter_line_delay(line, n_time_steps=n_steps) for line in lines
        ]
    )
    fast_s, candidate = _timed(
        lambda: measure_inverter_line_delay_batch(lines, n_time_steps=n_steps)
    )
    parity = max(
        abs(fast.propagation_delay - slow.propagation_delay)
        / max(abs(slow.propagation_delay), 1e-30)
        for fast, slow in zip(candidate, reference)
    )
    return CaseResult(
        name="batched_sweep",
        legacy_s=legacy_s,
        fast_s=fast_s,
        parity_max_rel=parity,
        detail={
            "n_lines": n_lines,
            "n_segments": n_segments,
            "delay_ps": round(candidate[0].propagation_delay * 1e12, 4),
        },
    )


CASES = (
    case_transient_rc_line,
    case_variability_mc,
    case_delay_benchmark,
    case_crosstalk,
    case_newton_reuse,
    case_batched_sweep,
    case_engine_sweep,
    case_dist_workers,
)


# --- suite -------------------------------------------------------------------


def run_suite(smoke: bool = False, enforce_floors: bool | None = None) -> dict:
    """Run every case; return the JSON-ready trajectory record.

    Parity is asserted in both modes.  Speedup floors are asserted when
    ``enforce_floors`` is true (default: full mode only).
    """
    if enforce_floors is None:
        enforce_floors = not smoke

    results: list[CaseResult] = []
    for case in CASES:
        result = case(smoke)
        print(
            f"  {result.name:<20s} legacy {result.legacy_s * 1e3:9.1f} ms   "
            f"fast {result.fast_s * 1e3:9.1f} ms   speedup {result.speedup:7.1f}x   "
            f"parity {result.parity_max_rel:.2e}",
            file=sys.stderr,
        )
        if not result.parity_max_rel <= PARITY_RTOL:
            raise AssertionError(
                f"{result.name}: fast/legacy parity {result.parity_max_rel:.3e} "
                f"exceeds {PARITY_RTOL:.0e}"
            )
        floor = SPEEDUP_FLOORS.get(result.name)
        if enforce_floors and floor is not None and result.speedup < floor:
            raise AssertionError(
                f"{result.name}: speedup {result.speedup:.1f}x below the "
                f"{floor:.0f}x acceptance floor"
            )
        results.append(result)

    return {
        "schema": 1,
        "pr": 8,
        "mode": "smoke" if smoke else "full",
        "parity_rtol": PARITY_RTOL,
        "speedup_floors": SPEEDUP_FLOORS,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cases": [result.to_record() for result in results],
    }
