#!/usr/bin/env python
"""Run the perf-trajectory harness and write ``BENCH_<pr>.json``.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/perf/run.py            # full, asserts floors
    PYTHONPATH=src python benchmarks/perf/run.py --smoke    # CI: small, parity only
    PYTHONPATH=src python benchmarks/perf/run.py --output BENCH_local.json

Full mode writes ``benchmarks/perf/BENCH_8.json`` (the committed trajectory
point for this PR); smoke mode defaults to ``BENCH_smoke.json`` in the
working directory so CI can upload it as a build artifact without touching
the tree.  Read the trajectory with ``python -m repro perf-report`` (see
docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import run_suite  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sizes; parity asserted, speedup floors reported only",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="output JSON path (default: benchmarks/perf/BENCH_8.json, "
        "or ./BENCH_smoke.json with --smoke)",
    )
    args = parser.parse_args(argv)

    output = args.output
    if output is None:
        output = (
            "BENCH_smoke.json"
            if args.smoke
            else os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_8.json")
        )

    print(f"perf harness ({'smoke' if args.smoke else 'full'} mode)", file=sys.stderr)
    record = run_suite(smoke=args.smoke)
    with open(output, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
