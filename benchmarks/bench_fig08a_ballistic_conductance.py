"""Experiment E1 -- Fig. 8a: ballistic conductance vs diameter of SWCNTs.

Paper claim: the number of conducting channels ``Nc = G_bal / G0`` stays
close to 2 for metallic tubes regardless of diameter and chirality, so the
conductance per unit area *decreases* with diameter.
"""

import numpy as np

from repro.analysis.fig8_conductance import run_fig8a
from repro.analysis.report import format_table


def test_fig8a_conductance_vs_diameter(benchmark):
    records = benchmark(run_fig8a, diameter_range_nm=(0.5, 2.2), n_k=101)

    print()
    print(format_table(records, title="Fig. 8a -- ballistic conductance vs diameter (300 K)"))

    channels = np.array([record["channels"] for record in records])
    diameters = np.array([record["diameter_nm"] for record in records])
    conductance_per_area = np.array(
        [record["conductance_ms"] / record["diameter_nm"] ** 2 for record in records]
    )

    # Paper shape 1: Nc ~ 2 for every metallic tube, any family or diameter.
    assert np.all(np.abs(channels - 2.0) < 0.15)
    # Paper shape 2: both families present across the swept diameter range.
    assert {record["family"] for record in records} == {"armchair", "zigzag"}
    # Paper shape 3: conductance per unit area decreases as the diameter grows.
    order = np.argsort(diameters)
    assert conductance_per_area[order][0] > conductance_per_area[order][-1]
