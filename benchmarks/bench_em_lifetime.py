"""Experiment E7 companion -- electromigration lifetimes (Section IV.A focus).

Thin wrapper over the registered ``em_lifetime`` experiment: the test layout
of Fig. 13 exists to benchmark the Cu-CNT composite against Cu "with the
focus on reliability improvement ... regarding ampacity and electromigration
resistance"; this bench regenerates the projected lifetime comparison from
Black's equation, and sweeps the stress current density through the engine.
"""

from repro.analysis.report import format_table
from repro.api import Engine, SweepSpec
from repro.constants import COPPER_EM_CURRENT_DENSITY_LIMIT


def test_em_lifetime_comparison(benchmark):
    result = benchmark(Engine().run, "em_lifetime")

    print()
    print(format_table(result.to_records(), title="EM lifetime at 1e6 A/cm^2, 105 C (Black's equation)"))

    copper = result.filter(material="copper")[0]
    cnt = result.filter(material="cnt")[0]
    composite = result.filter(material="composite")[0]

    # Copper at its rated current density lasts on the order of 10 years.
    assert 3.0 < copper["lifetime_years"] < 30.0
    # CNTs are effectively immune to electromigration at these densities.
    assert cnt["lifetime_years"] > 1e3 * copper["lifetime_years"]
    # The composite inherits a sizeable fraction of that benefit.
    assert composite["lifetime_years"] > 10.0 * copper["lifetime_years"]


def test_em_acceleration_with_stress(benchmark):
    spec = SweepSpec.grid(
        current_density=[
            factor * COPPER_EM_CURRENT_DENSITY_LIMIT for factor in (1.0, 2.0, 5.0, 10.0)
        ]
    )

    result = benchmark(Engine().sweep, "em_lifetime", spec)
    copper = result.filter(material="copper")
    lifetimes = copper.column("lifetime_years")
    print()
    for record in copper:
        print(f"{record['current_density']:.3g} A/m^2: {record['lifetime_years']:.3g} years")
    # Black's equation: lifetime drops monotonically (quadratically) with stress.
    assert all(b < a for a, b in zip(lifetimes, lifetimes[1:]))
    assert lifetimes[0] / lifetimes[1] > 3.0
