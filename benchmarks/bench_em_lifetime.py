"""Experiment E7 companion -- electromigration lifetimes (Section IV.A focus).

The test layout of Fig. 13 exists to benchmark the Cu-CNT composite against
Cu "with the focus on reliability improvement ... regarding ampacity and
electromigration resistance"; this bench regenerates the projected lifetime
comparison from Black's equation.
"""

from repro.analysis.report import format_table
from repro.characterization.electromigration import em_stress_test, lifetime_comparison
from repro.constants import COPPER_EM_CURRENT_DENSITY_LIMIT


def test_em_lifetime_comparison(benchmark):
    comparison = benchmark(lifetime_comparison)

    print()
    rows = [
        {
            "material": name,
            "lifetime_years": result.lifetime_years,
            "immediate_failure": result.immediate_failure,
        }
        for name, result in comparison.items()
    ]
    print(format_table(rows, title="EM lifetime at 1e6 A/cm^2, 105 C (Black's equation)"))

    copper = comparison["copper"]
    cnt = comparison["cnt"]
    composite = comparison["composite"]

    # Copper at its rated current density lasts on the order of 10 years.
    assert 3.0 < copper.lifetime_years < 30.0
    # CNTs are effectively immune to electromigration at these densities.
    assert cnt.lifetime_years > 1e3 * copper.lifetime_years
    # The composite inherits a sizeable fraction of that benefit.
    assert composite.lifetime_years > 10.0 * copper.lifetime_years


def test_em_acceleration_with_stress(benchmark):
    def sweep():
        return [
            em_stress_test("copper", factor * COPPER_EM_CURRENT_DENSITY_LIMIT)
            for factor in (1.0, 2.0, 5.0, 10.0)
        ]

    results = benchmark(sweep)
    lifetimes = [r.median_lifetime for r in results]
    print()
    for factor, result in zip((1, 2, 5, 10), results):
        print(f"{factor:2d}x EM limit: {result.lifetime_years:.3g} years")
    # Black's equation: lifetime drops monotonically (quadratically) with stress.
    assert all(b < a for a, b in zip(lifetimes, lifetimes[1:]))
    assert lifetimes[0] / lifetimes[1] > 3.0
