"""Experiment E11 -- Section II.C: Cu-CNT composite resistivity/ampacity trade-off.

Thin wrapper over the registered ``composite_tradeoff`` experiment.  Paper
claims: embedding CNTs in a copper matrix enables manufacturable integration
and "an efficient trade-off between resistivity and ampacity can be
realized" (reference [14] demonstrated a hundred-fold ampacity increase).
"""

from repro.analysis.report import format_table
from repro.api import Engine
from repro.process.composite_process import FillProcess, composite_from_process, simulate_fill
from repro.units import nm, um


def test_composite_tradeoff(benchmark):
    result = benchmark(Engine().run, "composite_tradeoff")

    print()
    print(
        format_table(
            result.to_records(),
            title="Cu-CNT composite trade-off (10 um line, 100x50 nm)",
        )
    )

    gains = result.column("ampacity_gain")
    penalties = result.column("resistivity_penalty")

    # Ampacity rises monotonically with the CNT fraction...
    assert all(b >= a for a, b in zip(gains, gains[1:]))
    # ...reaching well over an order of magnitude within the swept range...
    assert max(gains) > 10.0
    # ...while the resistivity penalty stays modest (the "efficient trade-off").
    assert all(p < 5.0 for p in penalties)


def test_fill_process_to_composite(benchmark):
    """The ECD fill route produces a nearly void-free, low-penalty composite."""
    process = FillProcess(deposition_time=3600.0)
    composite = benchmark(composite_from_process, process, nm(100), nm(50), um(10))
    fill = simulate_fill(process)
    print()
    print(
        f"fill quality {fill.fill_quality:.3f}, composite resistivity penalty "
        f"{composite.resistivity_penalty_over_copper:.2f}x, ampacity gain "
        f"{composite.ampacity_gain_over_copper:.1f}x"
    )
    assert fill.fill_quality > 0.9
    assert composite.ampacity_gain_over_copper > 5.0
    assert composite.resistivity_penalty_over_copper < 3.0
