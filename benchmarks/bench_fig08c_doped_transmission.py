"""Experiment E2 -- Fig. 8b/c: iodine doping of SWCNT(7,7).

Paper claim: the pristine armchair tube conducts 0.155 mS (2 channels); after
iodine (p-type) doping the Fermi level moves down and the ballistic
conductance rises to 0.387 mS (5 channels).
"""

import pytest

from repro.analysis.fig8_conductance import run_fig8c
from repro.analysis.paper_reference import PAPER_REFERENCE
from repro.analysis.report import format_comparison


def test_fig8c_doped_swcnt77(benchmark):
    result = benchmark(run_fig8c, n_k=201)

    print()
    print(format_comparison(
        "pristine SWCNT(7,7) conductance",
        result.pristine_conductance_ms,
        PAPER_REFERENCE["pristine_swcnt77_conductance_ms"],
        unit="mS",
    ))
    print(format_comparison(
        "doped SWCNT(7,7) conductance",
        result.doped_conductance_ms,
        PAPER_REFERENCE["doped_swcnt77_conductance_ms"],
        unit="mS",
    ))
    print(
        f"rigid-band Fermi shift used: {result.fermi_shift_ev:.2f} eV "
        f"(paper DFT: {PAPER_REFERENCE['iodine_fermi_shift_ev']} eV; see EXPERIMENTS.md)"
    )

    # The conductance levels (the measurable the paper reports) are reproduced.
    assert result.pristine_conductance_ms == pytest.approx(0.155, rel=0.03)
    assert result.doped_conductance_ms == pytest.approx(0.387, rel=0.05)
    # Doping is p-type (Fermi level moves down) and the tube stays gapless.
    assert result.fermi_shift_ev < 0
    assert result.band_gap_ev == pytest.approx(0.0, abs=1e-6)
    # The transmission staircase never decreases away from the Fermi level.
    centre = result.pristine_transmission[len(result.pristine_transmission) // 2]
    assert result.pristine_transmission.max() > centre
