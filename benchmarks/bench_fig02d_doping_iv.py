"""Experiment E6 -- Fig. 2d: I-V of a side-contacted MWCNT before/after PtCl4 doping.

Paper shape: the same device shows a clearly lower resistance (higher current
at the same bias) after external charge-transfer doping.
"""

import numpy as np

from repro.characterization.iv import doping_comparison_iv


def test_fig2d_doping_before_after(benchmark):
    sweeps = benchmark(doping_comparison_iv, seed=0)

    pristine = sweeps["pristine"]
    doped = sweeps["doped"]

    print()
    print(
        f"low-bias resistance: pristine {pristine.low_bias_resistance/1e3:.1f} kOhm, "
        f"doped {doped.low_bias_resistance/1e3:.1f} kOhm "
        f"({pristine.low_bias_resistance/doped.low_bias_resistance:.2f}x reduction)"
    )

    # Doping lowers the resistance...
    assert doped.low_bias_resistance < pristine.low_bias_resistance
    # ...by a meaningful factor (the device still has its contact resistance,
    # so the improvement is bounded) ...
    ratio = pristine.low_bias_resistance / doped.low_bias_resistance
    assert 1.05 < ratio < 4.0
    # ...and at every common bias point the doped device carries at least as
    # much current.
    valid = ~np.isnan(pristine.currents) & ~np.isnan(doped.currents)
    assert np.all(doped.currents[valid] >= pristine.currents[valid] * 0.99)
    assert pristine.survived and doped.survived
