"""Tests for the experiment drivers (figures/tables reproduction) and reporting."""

import numpy as np
import pytest

from repro.analysis import (
    PAPER_REFERENCE,
    ampacity_table,
    density_table,
    format_table,
    run_fig8c,
    run_fig9,
    run_fig10_capacitance,
    run_fig10_resistance,
    run_fig12,
    summarize_at_length,
    thermal_table,
)
from repro.analysis.fig8_conductance import run_fig8a
from repro.analysis.fig9_conductivity import crossover_length_um
from repro.analysis.fig10_tcad import run_fig10_m1_m2
from repro.analysis.fig12_delay_ratio import (
    DelayRatioStudy,
    doping_benefit_vs_length,
)
from repro.analysis.paper_reference import reference
from repro.analysis.report import format_comparison, write_csv
from repro.analysis.tables import doping_resistance_table


class TestPaperReference:
    def test_lookup(self):
        assert reference("quantum_resistance_kohm") == pytest.approx(12.9)
        with pytest.raises(KeyError):
            reference("nonexistent")

    def test_delay_reference_shape(self):
        targets = PAPER_REFERENCE["delay_reduction_at_500um"]
        assert targets[10.0] > targets[14.0] > targets[22.0]


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1.0, "b": "x"}, {"a": 123456.0, "b": "yy"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert format_table([], title="empty") == "empty"

    def test_format_comparison(self):
        text = format_comparison("G", 0.1549, 0.155, unit="mS")
        assert "0.1549" in text and "0.155" in text

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv([{"a": 1, "b": 2.5}], str(path))
        content = path.read_text()
        assert "a,b" in content and "1,2.5" in content
        with pytest.raises(ValueError):
            write_csv([], str(path))


class TestFig8Drivers:
    def test_fig8a_metallic_tubes_cluster_at_two_channels(self):
        records = run_fig8a(diameter_range_nm=(0.6, 1.6), n_k=101)
        channels = np.array([r["channels"] for r in records])
        assert np.allclose(channels, 2.0, atol=0.1)
        families = {r["family"] for r in records}
        assert families == {"armchair", "zigzag"}

    def test_fig8c_reproduces_conductance_values(self):
        result = run_fig8c(n_k=201)
        assert result.pristine_conductance_ms == pytest.approx(
            PAPER_REFERENCE["pristine_swcnt77_conductance_ms"], rel=0.03
        )
        assert result.doped_conductance_ms == pytest.approx(
            PAPER_REFERENCE["doped_swcnt77_conductance_ms"], rel=0.05
        )
        assert result.fermi_shift_ev < 0
        assert result.band_gap_ev == pytest.approx(0.0, abs=1e-6)
        assert result.energies_ev.shape == result.pristine_transmission.shape


class TestFig9Driver:
    def test_cnt_conductivity_increases_with_length(self):
        records = run_fig9(lengths_um=(0.1, 1.0, 10.0, 100.0))
        mwcnt = [r for r in records if r["line"] == "MWCNT D=22nm"]
        values = [r["conductivity_ms_per_m"] for r in sorted(mwcnt, key=lambda r: r["length_um"])]
        assert values == sorted(values)

    def test_copper_conductivity_length_independent(self):
        records = run_fig9(lengths_um=(0.1, 1.0, 10.0))
        copper = [r for r in records if r["line"] == "Cu w=20nm"]
        values = [r["conductivity_ms_per_m"] for r in copper]
        assert max(values) == pytest.approx(min(values), rel=1e-9)

    def test_long_mwcnt_beats_narrow_copper(self):
        records = run_fig9(lengths_um=(0.01, 0.1, 1.0, 10.0, 100.0))
        crossover = crossover_length_um(records, "MWCNT D=22nm", "Cu w=20nm")
        assert crossover is not None
        assert crossover <= 100.0

    def test_copper_size_effect_ablation(self):
        with_effects = run_fig9(lengths_um=(1.0,), include_cu_size_effects=True)
        without = run_fig9(lengths_um=(1.0,), include_cu_size_effects=False)
        cu_with = [r for r in with_effects if r["kind"] == "Cu"][0]
        cu_without = [r for r in without if r["kind"] == "Cu"][0]
        assert cu_without["conductivity_ms_per_m"] > cu_with["conductivity_ms_per_m"]


class TestFig10Drivers:
    def test_capacitance_extraction_summary(self):
        result = run_fig10_capacitance(resolution=3)
        assert result["is_physical"]
        assert 0.0 < result["coupling_fraction"] < 1.0
        assert result["victim_total_af_per_um"] > 0
        assert ".end" in result["spice_netlist"]

    def test_m1_m2_crossing_coupling(self):
        result = run_fig10_m1_m2(resolution=2)
        assert result["is_physical"]
        assert result["m1_m2_coupling_aF"] > 0
        assert result["coupling_fraction"] < 1.0

    def test_via_resistance_extraction(self):
        result = run_fig10_resistance(resolution_nm=10.0)
        assert result["resistance_ohm"] > 0
        assert result["hotspot_factor"] > 1.0


class TestFig12Driver:
    @pytest.fixture(scope="class")
    def fast_records(self):
        study = DelayRatioStudy(
            lengths_um=(100.0, 500.0),
            channel_counts=(2.0, 10.0),
            use_transient=False,
        )
        return run_fig12(study)

    def test_summary_matches_paper_ordering(self, fast_records):
        summary = summarize_at_length(fast_records, length_um=500.0, channels=10.0)
        assert set(summary) == {10.0, 14.0, 22.0}
        assert summary[10.0] > summary[14.0] > summary[22.0]

    def test_reduction_magnitudes_close_to_paper(self, fast_records):
        summary = summarize_at_length(fast_records, length_um=500.0, channels=10.0)
        targets = PAPER_REFERENCE["delay_reduction_at_500um"]
        for diameter, target in targets.items():
            assert summary[diameter] == pytest.approx(target, abs=0.05)

    def test_doping_more_effective_for_longer_lines(self, fast_records):
        series = doping_benefit_vs_length(fast_records, diameter_nm=10.0, channels=10.0)
        reductions = [value for _, value in series]
        assert reductions == sorted(reductions)

    def test_pristine_ratio_is_unity(self, fast_records):
        pristine = [r for r in fast_records if r["channels_per_shell"] == 2.0]
        assert all(r["delay_ratio"] == pytest.approx(1.0) for r in pristine)

    def test_transient_and_elmore_agree_on_ordering(self):
        study_fast = DelayRatioStudy(
            diameters_nm=(10.0, 22.0),
            lengths_um=(500.0,),
            channel_counts=(2.0, 10.0),
            use_transient=False,
        )
        study_slow = DelayRatioStudy(
            diameters_nm=(10.0, 22.0),
            lengths_um=(500.0,),
            channel_counts=(2.0, 10.0),
            use_transient=True,
            n_segments=10,
        )
        fast = summarize_at_length(run_fig12(study_fast), 500.0, 10.0)
        slow = summarize_at_length(run_fig12(study_slow), 500.0, 10.0)
        assert (fast[10.0] > fast[22.0]) and (slow[10.0] > slow[22.0])
        # The two delay metrics agree within a few percentage points.
        assert fast[10.0] == pytest.approx(slow[10.0], abs=0.04)

    def test_study_validation(self):
        with pytest.raises(ValueError):
            DelayRatioStudy(channel_counts=(4.0, 10.0))
        with pytest.raises(ValueError):
            DelayRatioStudy(contact_resistance=-1.0)


class TestTables:
    def test_ampacity_table_rows(self):
        rows = ampacity_table()
        assert len(rows) == 4
        cu = rows[0]
        cnt = rows[1]
        assert cu["max_current_uA"] == pytest.approx(50.0, rel=0.01)
        assert cnt["max_current_density_A_per_cm2"] == pytest.approx(1e9, rel=0.1)

    def test_thermal_table_rows(self):
        rows = thermal_table()
        conductivity_row = rows[0]
        assert conductivity_row["cnt"] > conductivity_row["copper"]
        assert rows[1]["cnt"] > 1.0

    def test_density_table_rows(self):
        rows = density_table()
        labels = [row["structure"] for row in rows]
        assert any("minimum density" in label for label in labels)
        minimum = rows[1]
        packed = rows[2]
        assert packed["resistance_ohm"] < minimum["resistance_ohm"]

    def test_doping_resistance_table(self):
        rows = doping_resistance_table(lengths_um=(1.0, 100.0))
        assert all(row["doped_kohm"] < row["pristine_kohm"] for row in rows)
        assert all(row["improvement"] > 1.0 for row in rows)
