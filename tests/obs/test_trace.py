"""Span recording: nesting, sinks, no-op mode, lazy attrs, carriers."""

import json
import os

import pytest

from repro.obs.trace import (
    activate_carrier,
    carrier_from_header,
    carrier_to_header,
    current_carrier,
    trace_sink,
    trace_span,
    tracing,
    tracing_enabled,
)


def _read_spans(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestSpanRecording:
    def test_nested_spans_share_trace_and_chain_parents(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        with tracing(sink):
            with trace_span("outer", kind="test"):
                with trace_span("inner"):
                    pass
        spans = {span["name"]: span for span in _read_spans(sink)}
        assert set(spans) == {"outer", "inner"}
        assert spans["inner"]["trace_id"] == spans["outer"]["trace_id"]
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["parent_id"] is None
        assert spans["outer"]["wall_s"] >= spans["inner"]["wall_s"] >= 0.0
        assert spans["outer"]["attrs"] == {"kind": "test"}

    def test_sibling_spans_get_distinct_ids(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        with tracing(sink):
            with trace_span("root"):
                with trace_span("child"):
                    pass
                with trace_span("child"):
                    pass
        spans = _read_spans(sink)
        assert len({span["span_id"] for span in spans}) == 3
        assert len({span["trace_id"] for span in spans}) == 1

    def test_exception_is_recorded_and_reraised(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        with tracing(sink):
            with pytest.raises(ValueError):
                with trace_span("failing"):
                    raise ValueError("boom")
        (span,) = _read_spans(sink)
        assert span["error"] == "ValueError: boom"

    def test_span_set_attaches_mid_block_attrs(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        with tracing(sink):
            with trace_span("spanned") as span:
                span.set("result", 42)
        (span,) = _read_spans(sink)
        assert span["attrs"]["result"] == 42

    def test_unserializable_attrs_do_not_lose_the_span(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        with tracing(sink):
            with trace_span("odd", payload=object()):
                pass
        (span,) = _read_spans(sink)
        assert span["name"] == "odd"  # default=str rendered the attr


class TestDisabledMode:
    def test_disabled_records_nothing_and_skips_lazy_attrs(self, tmp_path):
        def explode():
            raise AssertionError("lazy attr evaluated while tracing is off")

        assert not tracing_enabled()
        with trace_span("invisible", expensive=explode) as span:
            span.set("ignored", 1)
        assert span.trace_id is None
        assert current_carrier() is None

    def test_lazy_attrs_evaluate_only_at_record_time(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        calls = []
        with tracing(sink):
            with trace_span("lazy", value=lambda: calls.append(1) or "computed"):
                assert calls == []  # not yet rendered
        (span,) = _read_spans(sink)
        assert span["attrs"]["value"] == "computed"
        assert calls == [1]

    def test_failing_lazy_attr_renders_placeholder(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        with tracing(sink):
            with trace_span("lazy", bad=lambda: 1 / 0):
                pass
        (span,) = _read_spans(sink)
        assert span["attrs"]["bad"] == "<error>"

    def test_tracing_scope_restores_previous_sink(self, tmp_path):
        outer = str(tmp_path / "outer.jsonl")
        inner = str(tmp_path / "inner.jsonl")
        with tracing(outer):
            with tracing(inner):
                assert trace_sink() == os.path.abspath(inner)
            assert trace_sink() == os.path.abspath(outer)
        assert trace_sink() is None


class TestCarriers:
    def test_carrier_names_open_span_and_sink(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        with tracing(sink):
            with trace_span("root") as span:
                carrier = current_carrier()
        assert carrier["trace_id"] == span.trace_id
        assert carrier["span_id"] == span.span_id
        assert carrier["sink"] == os.path.abspath(sink)

    def test_activate_carrier_joins_the_remote_trace(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        with tracing(sink):
            with trace_span("sender") as sender:
                carrier = current_carrier()
        # Receiving side: no sink configured, context comes from the carrier.
        with activate_carrier(carrier):
            with trace_span("receiver"):
                pass
        assert trace_sink() is None  # restored after the block
        spans = {span["name"]: span for span in _read_spans(sink)}
        assert spans["receiver"]["trace_id"] == sender.trace_id
        assert spans["receiver"]["parent_id"] == sender.span_id

    def test_activate_tolerates_none_and_garbage(self):
        for carrier in (None, {}, {"trace_id": "x"}, "junk", 17):
            with activate_carrier(carrier):
                assert current_carrier() is None

    def test_header_round_trip(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        with tracing(sink):
            with trace_span("root"):
                carrier = current_carrier()
        header = carrier_to_header(carrier)
        assert carrier_from_header(header) == carrier

    def test_malformed_headers_decode_to_none(self):
        for value in (None, "", "not json", "[1,2]", '{"trace_id": ""}'):
            assert carrier_from_header(value) is None
