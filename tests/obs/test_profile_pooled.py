"""Profile blocks for pooled executors: solve_s accrues, dispatch_s is sane.

Regression coverage for two pooled-profiling defects: the profile flag was
never forwarded into pool workers (so every pooled point reported
``solve_s = 0``), and ``dispatch_s`` ignored the result-retrieval wait, so
``wall_s`` could exceed ``solve_s + dispatch_s`` by the whole transfer
time.
"""

import pytest

from repro.api import Engine, SweepSpec
from repro.api.experiment import Experiment, ParamSpec
from repro.circuit import Circuit, Step, transient_analysis


def _rc_transient(tau_scale: float = 1.0) -> list[dict]:
    circuit = Circuit("rc")
    circuit.add_voltage_source(
        "vin", "in", "0", Step(0.0, 1.0, delay=1e-12, rise_time=2e-12)
    )
    circuit.add_resistor("r", "in", "out", 1e3 * tau_scale)
    circuit.add_capacitor("c", "out", "0", 1e-13)
    # backend="sparse" forces the compiled solver even for this tiny
    # system -- profiled_solves only meters the compiled step path.
    result = transient_analysis(
        circuit, stop_time=2e-10, time_step=1e-12, backend="sparse"
    )
    return [{"tau_scale": tau_scale, "v_out": result.final_voltage("out")}]


def _experiment() -> Experiment:
    return Experiment(
        name="adhoc_profiled_rc",
        fn=_rc_transient,
        params=(ParamSpec("tau_scale", "float", 1.0, "R multiplier"),),
        description="tiny compiled-backend transient for profiling tests",
    )


SPEC = SweepSpec.grid(tau_scale=[1.0, 2.0, 3.0])


class TestPooledProfile:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_solve_time_accrues_per_point(self, executor):
        with Engine(executor=executor, max_workers=2, profile=True) as engine:
            result = engine.sweep(_experiment(), SPEC, use_cache=False)
        aggregate = result.meta["profile"]
        assert aggregate["points_profiled"] == len(SPEC)
        assert aggregate["solve_s"] > 0.0
        assert aggregate["dispatch_s"] >= 0.0
        assert aggregate["wall_s"] >= aggregate["solve_s"]

    def test_pooled_point_blocks_split_wall_into_solve_and_dispatch(self):
        with Engine(executor="thread", max_workers=2, profile=True) as engine:
            points = list(engine.iter_sweep(_experiment(), SPEC, use_cache=False))
        for point in points:
            block = point.result.meta["profile"]
            assert block["solve_s"] > 0.0
            assert block["dispatch_s"] >= 0.0
            assert block["wall_s"] >= block["solve_s"]

    def test_profile_rides_outside_the_content_hash(self):
        plain = Engine().sweep(_experiment(), SPEC, use_cache=False)
        with Engine(executor="thread", max_workers=2, profile=True) as engine:
            profiled = engine.sweep(_experiment(), SPEC, use_cache=False)
        assert profiled.content_hash == plain.content_hash
