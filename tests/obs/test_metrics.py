"""Metrics registry: instruments, labels, snapshot, Prometheus rendering."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    counter,
    metrics_snapshot,
    record_solver_stats,
    reset_metrics,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("events_total").inc()
        registry.counter("events_total").inc(3)
        assert registry.counter("events_total").value == 4

    def test_labels_create_independent_series(self):
        registry = MetricsRegistry()
        registry.counter("events_total", outcome="hit").inc()
        registry.counter("events_total", outcome="miss").inc(2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]['events_total{outcome="hit"}'] == 1
        assert snapshot["counters"]['events_total{outcome="miss"}'] == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("r", a="1", b="2").inc()
        registry.counter("r", b="2", a="1").inc()
        assert registry.counter("r", a="1", b="2").value == 2

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4

    def test_histogram_counts_sum_and_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency", buckets=[0.1, 1.0])
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(5.55)
        assert hist.counts == [1, 1, 1]  # per-bucket, +Inf last
        assert hist.cumulative() == [1, 2, 3]

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("mixed")
        with pytest.raises(TypeError):
            registry.gauge("mixed")

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestSnapshotAndRender:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", state="done").inc()
        registry.gauge("depth", state="queued").set(3)
        registry.histogram("seconds").observe(0.2)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["gauges"]['depth{state="queued"}'] == 3
        assert snapshot["histograms"]["seconds"] == {"count": 1, "sum": 0.2}

    def test_prometheus_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", state="done").inc(2)
        registry.histogram("repro_seconds", buckets=[0.5, 1.0]).observe(0.7)
        text = registry.render_prometheus()
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{state="done"} 2' in text
        assert "# TYPE repro_seconds histogram" in text
        assert 'repro_seconds_bucket{le="0.5"} 0' in text
        assert 'repro_seconds_bucket{le="1"} 1' in text
        assert 'repro_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_seconds_sum 0.7" in text
        assert "repro_seconds_count 1" in text
        assert text.endswith("\n")

    def test_type_line_emitted_once_per_family(self):
        registry = MetricsRegistry()
        registry.counter("family_total", k="a").inc()
        registry.counter("family_total", k="b").inc()
        text = registry.render_prometheus()
        assert text.count("# TYPE family_total counter") == 1

    def test_reset_clears_every_series(self):
        registry = MetricsRegistry()
        registry.counter("gone_total").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestModuleRegistry:
    def test_module_helpers_share_one_registry(self):
        reset_metrics()
        counter("repro_test_events_total").inc()
        assert (
            metrics_snapshot()["counters"]["repro_test_events_total"] == 1
        )
        reset_metrics()

    def test_record_solver_stats_absorbs_counters(self):
        class Stats:
            steps = 10
            iterations = 25
            factorizations = 3
            refreshes = 0

        reset_metrics()
        record_solver_stats(Stats())
        counters = metrics_snapshot()["counters"]
        assert counters["repro_solver_steps_total"] == 10
        assert counters["repro_solver_iterations_total"] == 25
        assert counters["repro_solver_factorizations_total"] == 3
        assert "repro_solver_refreshes_total" not in counters  # zero elided
        reset_metrics()
