"""Trace context crosses pools, stores, workers and the HTTP service.

The acceptance contract of the tracing layer: one ``trace_id`` covers a
whole logical request no matter how many processes/threads execute it,
and turning tracing on never changes a single result bit.
"""

import json
import threading

import pytest

from repro.api import Engine, SweepSpec
from repro.dist import SharedStore
from repro.obs.trace import current_carrier, trace_span, tracing
from repro.service import ServiceClient, SpecQueue, make_server, serve_queue

SPEC = SweepSpec.grid(length_um=[1.0, 10.0, 100.0])


def _read_spans(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


def _ancestors(span, by_id):
    seen = []
    parent = span.get("parent_id")
    while parent is not None and parent in by_id:
        seen.append(by_id[parent])
        parent = by_id[parent].get("parent_id")
    return seen


class TestPoolPropagation:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_one_trace_id_across_a_pooled_sweep(self, tmp_path, executor):
        sink = str(tmp_path / "trace.jsonl")
        with tracing(sink):
            with Engine(
                cache_dir=str(tmp_path / "cache"), executor=executor, max_workers=2
            ) as engine:
                engine.sweep("table_density", SPEC)
        spans = _read_spans(sink)
        names = {span["name"] for span in spans}
        assert {"engine.sweep", "engine.point"} <= names
        assert len({span["trace_id"] for span in spans}) == 1
        points = [span for span in spans if span["name"] == "engine.point"]
        assert len(points) == len(SPEC)
        if executor == "process":
            # The points really ran in pool workers, not the parent.
            parent_pid = next(
                span["pid"] for span in spans if span["name"] == "engine.sweep"
            )
            assert any(span["pid"] != parent_pid for span in points)

    def test_tracing_leaves_content_hashes_bit_identical(self, tmp_path):
        baseline = Engine(cache_dir=str(tmp_path / "cache-a")).sweep(
            "table_density", SPEC
        )
        with tracing(str(tmp_path / "trace.jsonl")):
            with Engine(
                cache_dir=str(tmp_path / "cache-b"),
                executor="process",
                max_workers=2,
            ) as engine:
                traced = engine.sweep("table_density", SPEC)
        assert traced.content_hash == baseline.content_hash
        # NaN-valued fields defeat == on raw records; the canonical JSON
        # serialisation is the bit-level comparison the hash attests to.
        assert json.dumps(traced.to_records(), default=str) == json.dumps(
            baseline.to_records(), default=str
        )


class TestStorePropagation:
    def test_lease_persists_the_claiming_trace(self, tmp_path):
        store = SharedStore(str(tmp_path / "store"))
        path = store.entry_path("exp", "k" * 16)
        with tracing(str(tmp_path / "trace.jsonl")):
            with trace_span("claimer"):
                carrier = current_carrier()
                assert store.claim(path, "w1", ttl=60.0) == "acquired"
        lease = store.read_lease(path)
        assert lease.trace == carrier

    def test_untraced_lease_has_no_trace(self, tmp_path):
        store = SharedStore(str(tmp_path / "store"))
        path = store.entry_path("exp", "k" * 16)
        store.claim(path, "w1", ttl=60.0)
        assert store.read_lease(path).trace is None


class TestServicePropagation:
    def test_submit_spans_are_ancestors_across_two_daemons(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        server = make_server(str(tmp_path / "queue"), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url)
            with tracing(sink):
                with trace_span("test.submit"):
                    jobs = [
                        client.submit_sweep("table_density", SPEC),
                        client.submit_sweep(
                            "table_density",
                            SweepSpec.grid(length_um=[3.0, 30.0]),
                        ),
                    ]
            queue = SpecQueue(str(tmp_path / "queue"))
            store = SharedStore(str(tmp_path / "store"))
            daemons = [
                threading.Thread(
                    target=serve_queue,
                    args=(queue, store),
                    kwargs={"drain": True, "worker_id": f"d{i}"},
                )
                for i in range(2)
            ]
            for daemon in daemons:
                daemon.start()
            for daemon in daemons:
                daemon.join(timeout=60.0)
            assert all(queue.status(job)["state"] == "done" for job in jobs)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)

        spans = _read_spans(sink)
        by_id = {span["span_id"]: span for span in spans}
        assert len({span["trace_id"] for span in spans}) == 1
        submits = [s for s in spans if s["name"] == "client.submit_sweep"]
        daemon_jobs = [s for s in spans if s["name"] == "daemon.job"]
        assert len(submits) == 2
        assert len(daemon_jobs) == 2
        # Every daemon-side execution descends from one of the client's
        # submit spans (via the carrier stored in the queued job document).
        for job_span in daemon_jobs:
            names = {span["name"] for span in _ancestors(job_span, by_id)}
            assert "client.submit_sweep" in names
            assert "test.submit" in names
        for point in (s for s in spans if s["name"] == "worker.point"):
            names = {span["name"] for span in _ancestors(point, by_id)}
            assert "daemon.job" in names

    def test_service_job_hashes_match_serial_run(self, tmp_path):
        server = make_server(str(tmp_path / "queue"), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url)
            with tracing(str(tmp_path / "trace.jsonl")):
                with trace_span("test.submit"):
                    job_id = client.submit_sweep("table_density", SPEC)
            serve_queue(
                SpecQueue(str(tmp_path / "queue")),
                SharedStore(str(tmp_path / "store")),
                drain=True,
            )
            fetched = client.fetch_results(job_id)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
        serial = Engine(cache_dir=str(tmp_path / "cache")).sweep(
            "table_density", SPEC
        )
        assert fetched.content_hash == serial.content_hash


class TestWorkerMetrics:
    def test_worker_report_carries_a_metrics_snapshot(self, tmp_path):
        from repro.dist import run_worker
        from repro.obs.metrics import reset_metrics

        reset_metrics()
        report = run_worker(
            "table_density", SPEC, SharedStore(str(tmp_path / "store"))
        )
        assert report.ok
        counters = report.metrics["counters"]
        assert counters['repro_claim_outcomes_total{status="acquired"}'] >= len(
            SPEC
        ) - 1
        reset_metrics()
