"""Trace inspection: tolerant loading, summaries, trees, critical paths."""

import json

from repro.obs.inspect import (
    critical_path,
    load_spans,
    render_critical_path,
    render_summary,
    render_tree,
    summarize,
)


def _span(name, span_id, parent=None, trace="t1", wall=1.0, t_start=0.0, **attrs):
    return {
        "name": name,
        "trace_id": trace,
        "span_id": span_id,
        "parent_id": parent,
        "t_start": t_start,
        "wall_s": wall,
        "cpu_s": wall / 2,
        "pid": 100,
        "attrs": attrs,
    }


SPANS = [
    _span("root", "a", wall=4.0, t_start=0.0),
    _span("child", "b", parent="a", wall=3.0, t_start=0.1, index=0),
    _span("child", "c", parent="a", wall=0.5, t_start=0.2, index=1),
    _span("leaf", "d", parent="b", wall=2.0, t_start=0.3),
]


class TestLoading:
    def test_load_skips_junk_and_sorts_by_start(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [
            json.dumps(SPANS[1]),
            "not json at all",
            '{"torn": ',
            json.dumps({"no_span_id": True, "name": "x"}),
            json.dumps(SPANS[0]),
            "",
        ]
        path.write_text("\n".join(lines) + "\n")
        spans = load_spans(str(path))
        assert [span["span_id"] for span in spans] == ["a", "b"]

    def test_load_merges_multiple_sinks(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        first.write_text(json.dumps(SPANS[0]) + "\n")
        second.write_text(json.dumps(SPANS[1]) + "\n")
        assert len(load_spans([str(first), str(second)])) == 2


class TestSummarize:
    def test_rows_aggregate_per_name_sorted_by_total(self):
        rows = summarize(SPANS)
        assert [row["span"] for row in rows] == ["root", "child", "leaf"]
        child = rows[1]
        assert child["count"] == 2
        assert child["total_s"] == 3.5
        assert child["max_s"] == 3.0

    def test_render_summary_headers_traces_and_processes(self):
        text = render_summary(SPANS)
        assert "4 spans, 1 trace(s), 1 process(es)" in text
        assert render_summary([]) == "no spans"


class TestTree:
    def test_tree_nests_children_under_parents(self):
        text = render_tree(SPANS)
        lines = text.splitlines()
        assert lines[1] == "trace t1:"
        assert lines[2].startswith("  root")
        assert lines[3].startswith("    child")
        assert "      leaf" in text

    def test_orphan_parent_renders_as_root(self):
        orphan = _span("stranded", "z", parent="never-recorded")
        text = render_tree([orphan])
        assert "stranded" in text

    def test_sibling_elision(self):
        spans = [_span("root", "r", wall=10.0)] + [
            _span("point", f"p{i}", parent="r", t_start=float(i))
            for i in range(25)
        ]
        text = render_tree(spans, max_children=10)
        assert text.count("point") == 10
        assert "... 15 more" in text


class TestCriticalPath:
    def test_follows_slowest_children(self):
        names = [span["name"] for span in critical_path(SPANS)]
        assert names == ["root", "child", "leaf"]

    def test_render_shows_percentages(self):
        text = render_critical_path(SPANS)
        assert "root  4000.0 ms  (100%)" in text
        assert "leaf  2000.0 ms  (50%)" in text
        assert render_critical_path([]) == "no spans"
