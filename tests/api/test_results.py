"""Tests for the columnar ResultSet container and its round-trips."""

import math

import numpy as np
import pytest

from repro.api import ResultSet, content_hash

RECORDS = [
    {"line": "Cu", "length_um": 1.0, "r_ohm": 5.0},
    {"line": "Cu", "length_um": 10.0, "r_ohm": 50.0},
    {"line": "CNT", "length_um": 1.0, "r_ohm": 20.0},
    {"line": "CNT", "length_um": 10.0, "r_ohm": 30.0},
]


class TestConstruction:
    def test_from_records_and_back(self):
        rs = ResultSet.from_records(RECORDS)
        assert rs.to_records() == RECORDS
        assert len(rs) == 4
        assert rs.columns == ["line", "length_um", "r_ohm"]

    def test_missing_keys_become_none(self):
        rs = ResultSet.from_records([{"a": 1}, {"b": 2}])
        assert rs.to_records() == [{"a": 1, "b": None}, {"a": None, "b": 2}]

    def test_numpy_scalars_normalised(self):
        rs = ResultSet.from_records([{"x": np.float64(1.5), "n": np.int64(3)}])
        record = rs.to_records()[0]
        assert type(record["x"]) is float and type(record["n"]) is int

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            ResultSet({"a": [1, 2], "b": [1]})

    def test_empty(self):
        rs = ResultSet.from_records([])
        assert len(rs) == 0 and rs.to_records() == []


class TestRelationalOps:
    @pytest.fixture
    def rs(self):
        return ResultSet.from_records(RECORDS, meta={"experiment": "demo"})

    def test_filter_equality(self, rs):
        cu = rs.filter(line="Cu")
        assert len(cu) == 2
        assert cu.unique("line") == ["Cu"]
        assert cu.meta["experiment"] == "demo"

    def test_filter_predicate(self, rs):
        long_lines = rs.filter(lambda r: r["length_um"] > 5.0, line="CNT")
        assert long_lines.to_records() == [RECORDS[3]]

    def test_filter_unknown_column(self, rs):
        with pytest.raises(KeyError, match="no column"):
            rs.filter(width=3)

    def test_group_by_single_key(self, rs):
        groups = rs.group_by("line")
        assert set(groups) == {"Cu", "CNT"}
        assert all(len(group) == 2 for group in groups.values())

    def test_group_by_multiple_keys(self, rs):
        groups = rs.group_by("line", "length_um")
        assert ("Cu", 1.0) in groups and len(groups) == 4

    def test_select_and_column(self, rs):
        projected = rs.select("r_ohm", "line")
        assert projected.columns == ["r_ohm", "line"]
        assert rs.column("r_ohm") == [5.0, 50.0, 20.0, 30.0]
        with pytest.raises(KeyError):
            rs.column("nope")

    def test_sorted_by(self, rs):
        ordered = rs.sorted_by("r_ohm", reverse=True)
        assert ordered.column("r_ohm") == [50.0, 30.0, 20.0, 5.0]


class TestSerialisation:
    def test_json_round_trip_in_memory(self):
        rs = ResultSet.from_records(RECORDS, meta={"experiment": "demo", "params": {"n": 3}})
        restored = ResultSet.from_json(rs.to_json())
        assert restored == rs
        assert restored.meta["params"] == {"n": 3}

    def test_json_round_trip_file(self, tmp_path):
        path = str(tmp_path / "out.json")
        rs = ResultSet.from_records(RECORDS)
        rs.to_json(path)
        assert ResultSet.from_json(path) == rs

    def test_json_tamper_detection(self):
        rs = ResultSet.from_records(RECORDS)
        tampered = rs.to_json().replace("50.0", "51.0")
        with pytest.raises(ValueError, match="content hash"):
            ResultSet.from_json(tampered)

    def test_csv_round_trip(self, tmp_path):
        rs = ResultSet.from_records(RECORDS)
        assert ResultSet.from_csv(rs.to_csv()) == rs
        path = str(tmp_path / "out.csv")
        rs.to_csv(path)
        assert ResultSet.from_csv(path) == rs

    def test_csv_preserves_mixed_types(self):
        rs = ResultSet.from_records(
            [{"name": "a", "n": 2, "x": 1.5, "ok": True, "missing": None}]
        )
        restored = ResultSet.from_csv(rs.to_csv())
        assert restored.to_records() == [
            {"name": "a", "n": 2, "x": 1.5, "ok": True, "missing": None}
        ]


class TestProvenance:
    def test_content_hash_stable_and_data_sensitive(self):
        first = ResultSet.from_records(RECORDS)
        second = ResultSet.from_records(RECORDS, meta={"wall_time_s": 99.0})
        assert first.content_hash == second.content_hash  # meta-independent
        changed = ResultSet.from_records(RECORDS[:3])
        assert changed.content_hash != first.content_hash
        assert content_hash(RECORDS) == first.content_hash

    def test_equality_ignores_meta_and_handles_nan(self):
        a = ResultSet.from_records([{"x": math.nan}], meta={"a": 1})
        b = ResultSet.from_records([{"x": math.nan}], meta={"b": 2})
        assert a == b
        assert ResultSet.from_records([{"x": 1.0}]) != ResultSet.from_records([{"x": 2.0}])


class TestBestAndTopK:
    @pytest.fixture
    def rs(self):
        return ResultSet.from_records(RECORDS)

    def test_best_min_and_max(self, rs):
        assert rs.best("r_ohm")["r_ohm"] == 5.0
        assert rs.best("r_ohm", mode="max")["r_ohm"] == 50.0

    def test_best_ties_go_to_the_earliest_record(self):
        rs = ResultSet.from_records(
            [{"tag": "first", "v": 1.0}, {"tag": "second", "v": 1.0}]
        )
        assert rs.best("v")["tag"] == "first"

    def test_best_skips_none_and_nan(self):
        rs = ResultSet.from_records(
            [{"v": None}, {"v": math.nan}, {"v": 3.0}, {"v": 7.0}]
        )
        assert rs.best("v")["v"] == 3.0

    def test_best_unknown_column(self, rs):
        with pytest.raises(KeyError, match="no_such"):
            rs.best("no_such")

    def test_best_empty_or_all_missing(self):
        with pytest.raises(ValueError, match="no record has a comparable"):
            ResultSet.from_records([{"v": None}]).best("v")

    def test_best_bad_mode(self, rs):
        with pytest.raises(ValueError, match="'min' or 'max'"):
            rs.best("r_ohm", mode="middle")

    def test_top_k_orders_and_truncates(self, rs):
        top = rs.top_k("r_ohm", 2)
        assert [r["r_ohm"] for r in top.to_records()] == [5.0, 20.0]
        worst = rs.top_k("r_ohm", 3, mode="max")
        assert [r["r_ohm"] for r in worst.to_records()] == [50.0, 30.0, 20.0]

    def test_top_k_keeps_incomparables_last(self):
        rs = ResultSet.from_records([{"v": math.nan}, {"v": 2.0}, {"v": 1.0}])
        assert [r["v"] for r in rs.top_k("v", 2).to_records()] == [1.0, 2.0]
        tail = rs.top_k("v", 3).to_records()
        assert math.isnan(tail[-1]["v"])

    def test_top_k_beyond_length_returns_everything(self, rs):
        assert len(rs.top_k("r_ohm", 99)) == len(rs)

    def test_top_k_preserves_meta(self, rs):
        rs.meta["note"] = "tagged"
        assert rs.top_k("r_ohm", 1).meta["note"] == "tagged"

    def test_top_k_bad_k(self, rs):
        with pytest.raises(ValueError, match="k >= 1"):
            rs.top_k("r_ohm", 0)
