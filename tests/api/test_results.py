"""Tests for the columnar ResultSet container and its round-trips."""

import math

import numpy as np
import pytest

from repro.api import ResultSet, content_hash

RECORDS = [
    {"line": "Cu", "length_um": 1.0, "r_ohm": 5.0},
    {"line": "Cu", "length_um": 10.0, "r_ohm": 50.0},
    {"line": "CNT", "length_um": 1.0, "r_ohm": 20.0},
    {"line": "CNT", "length_um": 10.0, "r_ohm": 30.0},
]


class TestConstruction:
    def test_from_records_and_back(self):
        rs = ResultSet.from_records(RECORDS)
        assert rs.to_records() == RECORDS
        assert len(rs) == 4
        assert rs.columns == ["line", "length_um", "r_ohm"]

    def test_missing_keys_become_none(self):
        rs = ResultSet.from_records([{"a": 1}, {"b": 2}])
        assert rs.to_records() == [{"a": 1, "b": None}, {"a": None, "b": 2}]

    def test_numpy_scalars_normalised(self):
        rs = ResultSet.from_records([{"x": np.float64(1.5), "n": np.int64(3)}])
        record = rs.to_records()[0]
        assert type(record["x"]) is float and type(record["n"]) is int

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            ResultSet({"a": [1, 2], "b": [1]})

    def test_empty(self):
        rs = ResultSet.from_records([])
        assert len(rs) == 0 and rs.to_records() == []


class TestRelationalOps:
    @pytest.fixture
    def rs(self):
        return ResultSet.from_records(RECORDS, meta={"experiment": "demo"})

    def test_filter_equality(self, rs):
        cu = rs.filter(line="Cu")
        assert len(cu) == 2
        assert cu.unique("line") == ["Cu"]
        assert cu.meta["experiment"] == "demo"

    def test_filter_predicate(self, rs):
        long_lines = rs.filter(lambda r: r["length_um"] > 5.0, line="CNT")
        assert long_lines.to_records() == [RECORDS[3]]

    def test_filter_unknown_column(self, rs):
        with pytest.raises(KeyError, match="no column"):
            rs.filter(width=3)

    def test_group_by_single_key(self, rs):
        groups = rs.group_by("line")
        assert set(groups) == {"Cu", "CNT"}
        assert all(len(group) == 2 for group in groups.values())

    def test_group_by_multiple_keys(self, rs):
        groups = rs.group_by("line", "length_um")
        assert ("Cu", 1.0) in groups and len(groups) == 4

    def test_select_and_column(self, rs):
        projected = rs.select("r_ohm", "line")
        assert projected.columns == ["r_ohm", "line"]
        assert rs.column("r_ohm") == [5.0, 50.0, 20.0, 30.0]
        with pytest.raises(KeyError):
            rs.column("nope")

    def test_sorted_by(self, rs):
        ordered = rs.sorted_by("r_ohm", reverse=True)
        assert ordered.column("r_ohm") == [50.0, 30.0, 20.0, 5.0]


class TestSerialisation:
    def test_json_round_trip_in_memory(self):
        rs = ResultSet.from_records(RECORDS, meta={"experiment": "demo", "params": {"n": 3}})
        restored = ResultSet.from_json(rs.to_json())
        assert restored == rs
        assert restored.meta["params"] == {"n": 3}

    def test_json_round_trip_file(self, tmp_path):
        path = str(tmp_path / "out.json")
        rs = ResultSet.from_records(RECORDS)
        rs.to_json(path)
        assert ResultSet.from_json(path) == rs

    def test_json_tamper_detection(self):
        rs = ResultSet.from_records(RECORDS)
        tampered = rs.to_json().replace("50.0", "51.0")
        with pytest.raises(ValueError, match="content hash"):
            ResultSet.from_json(tampered)

    def test_csv_round_trip(self, tmp_path):
        rs = ResultSet.from_records(RECORDS)
        assert ResultSet.from_csv(rs.to_csv()) == rs
        path = str(tmp_path / "out.csv")
        rs.to_csv(path)
        assert ResultSet.from_csv(path) == rs

    def test_csv_preserves_mixed_types(self):
        rs = ResultSet.from_records(
            [{"name": "a", "n": 2, "x": 1.5, "ok": True, "missing": None}]
        )
        restored = ResultSet.from_csv(rs.to_csv())
        assert restored.to_records() == [
            {"name": "a", "n": 2, "x": 1.5, "ok": True, "missing": None}
        ]


class TestProvenance:
    def test_content_hash_stable_and_data_sensitive(self):
        first = ResultSet.from_records(RECORDS)
        second = ResultSet.from_records(RECORDS, meta={"wall_time_s": 99.0})
        assert first.content_hash == second.content_hash  # meta-independent
        changed = ResultSet.from_records(RECORDS[:3])
        assert changed.content_hash != first.content_hash
        assert content_hash(RECORDS) == first.content_hash

    def test_equality_ignores_meta_and_handles_nan(self):
        a = ResultSet.from_records([{"x": math.nan}], meta={"a": 1})
        b = ResultSet.from_records([{"x": math.nan}], meta={"b": 2})
        assert a == b
        assert ResultSet.from_records([{"x": 1.0}]) != ResultSet.from_records([{"x": 2.0}])
