"""Tests for the engine's ``batch`` executor and experiment ``batch_fn``.

The batch executor stacks same-experiment sweep points into one
``Experiment.run_batch`` call.  Its contract: results, streaming
behaviour, cache entries and content hashes are indistinguishable from
the serial executor -- batching is purely a wall-clock optimisation.
"""

import pytest

from repro.api import Engine, ParamSpec, SweepSpec, register_experiment, unregister_experiment
from repro.api.experiment import Consumes, PipelineError, get_experiment

BATCH_CALLS = {"batched": 0, "single": 0}


@pytest.fixture
def batched_experiment():
    """A registered experiment with a counting ``batch_fn``."""
    BATCH_CALLS["batched"] = 0
    BATCH_CALLS["single"] = 0

    def single(x: float, n: int):
        BATCH_CALLS["single"] += 1
        return [{"x": x, "i": i, "y": x * i} for i in range(n)]

    def batched(param_dicts):
        BATCH_CALLS["batched"] += 1
        return [single(**params) for params in param_dicts]

    register_experiment(
        "api_test_batched",
        params=(ParamSpec("x", "float", 1.0), ParamSpec("n", "int", 3)),
        batch_fn=batched,
        replace=True,
    )(single)
    yield "api_test_batched"
    unregister_experiment("api_test_batched")


class TestBatchExecutor:
    def test_matches_serial_records_and_hash(self, batched_experiment):
        spec = SweepSpec.grid(x=[1.0, 2.0, 3.0, 4.0])
        serial = Engine().sweep(batched_experiment, spec)
        batch = Engine(executor="batch").sweep(batched_experiment, spec)
        assert batch.to_records() == serial.to_records()
        assert batch.content_hash == serial.content_hash

    def test_points_are_stacked(self, batched_experiment):
        spec = SweepSpec.grid(x=[1.0, 2.0, 3.0])
        Engine(executor="batch").sweep(batched_experiment, spec)
        assert BATCH_CALLS["batched"] == 1

    def test_chunk_size_caps_stacks(self, batched_experiment):
        spec = SweepSpec.grid(x=[1.0, 2.0, 3.0, 4.0, 5.0])
        Engine(executor="batch", chunk_size=2).sweep(batched_experiment, spec)
        assert BATCH_CALLS["batched"] == 3

    def test_streaming_one_point_per_sweep_point(self, batched_experiment):
        seen = []
        spec = SweepSpec.grid(x=[1.0, 2.0, 3.0])
        Engine(executor="batch").sweep(
            batched_experiment, spec, on_result=lambda point: seen.append(point)
        )
        assert sorted(point.index for point in seen) == [0, 1, 2]
        assert all(point.error is None for point in seen)

    def test_cache_shared_with_serial(self, batched_experiment, tmp_path):
        spec = SweepSpec.grid(x=[1.0, 2.0, 3.0])
        batch_engine = Engine(executor="batch", cache_dir=str(tmp_path))
        batch_engine.sweep(batched_experiment, spec)
        single_calls = BATCH_CALLS["single"]
        serial_engine = Engine(cache_dir=str(tmp_path))
        again = serial_engine.sweep(batched_experiment, spec)
        assert BATCH_CALLS["single"] == single_calls  # all cache hits
        assert sorted(record["x"] for record in again.to_records() if record["i"] == 0) == [
            1.0,
            2.0,
            3.0,
        ]

    def test_experiment_without_batch_fn_runs_serially(self, batched_experiment):
        def plain(x: float):
            return [{"x": x}]

        register_experiment(
            "api_test_plain", params=(ParamSpec("x", "float", 1.0),), replace=True
        )(plain)
        try:
            spec = SweepSpec.grid(x=[1.0, 2.0])
            result = Engine(executor="batch").sweep("api_test_plain", spec)
            assert sorted(record["x"] for record in result.to_records()) == [1.0, 2.0]
        finally:
            unregister_experiment("api_test_plain")

    def test_failing_batch_fn_falls_back_to_serial(self):
        def single(x: float):
            return [{"x": x}]

        def exploding(param_dicts):
            raise RuntimeError("batch path is broken")

        register_experiment(
            "api_test_exploding_batch",
            params=(ParamSpec("x", "float", 1.0),),
            batch_fn=exploding,
            replace=True,
        )(single)
        try:
            spec = SweepSpec.grid(x=[1.0, 2.0])
            result = Engine(executor="batch").sweep("api_test_exploding_batch", spec)
            assert sorted(record["x"] for record in result.to_records()) == [1.0, 2.0]
        finally:
            unregister_experiment("api_test_exploding_batch")

    def test_registry_circuit_sweep_hash_identity(self):
        """A real physics sweep: batch executor must be hash-identical."""
        spec = SweepSpec.grid(lengths_um=[(10.0,), (50.0,)])
        base = {
            "diameters_nm": (10.0,),
            "channel_counts": (2.0, 6.0),
            "n_segments": 6,
        }
        serial = Engine().sweep("fig12", spec, base_params=base)
        batch = Engine(executor="batch").sweep("fig12", spec, base_params=base)
        assert batch.content_hash == serial.content_hash


class TestBatchContract:
    def test_batch_fn_with_consumes_rejected(self):
        with pytest.raises(ValueError):
            register_experiment(
                "api_test_bad_batch",
                params=(ParamSpec("x", "float", 1.0),),
                consumes=(Consumes(experiment="fig12", inject="upstream"),),
                batch_fn=lambda dicts: [[] for _ in dicts],
                replace=True,
            )(lambda x, upstream: [{"x": x}])

    def test_run_batch_without_batch_fn_raises(self, batched_experiment):
        register_experiment(
            "api_test_nobatch", params=(ParamSpec("x", "float", 1.0),), replace=True
        )(lambda x: [{"x": x}])
        try:
            with pytest.raises(PipelineError):
                get_experiment("api_test_nobatch").run_batch([{"x": 1.0}])
        finally:
            unregister_experiment("api_test_nobatch")

    def test_run_batch_length_mismatch_raises(self):
        register_experiment(
            "api_test_shortbatch",
            params=(ParamSpec("x", "float", 1.0),),
            batch_fn=lambda dicts: [[{"x": 0.0}]],  # always one result
            replace=True,
        )(lambda x: [{"x": x}])
        try:
            with pytest.raises(PipelineError):
                get_experiment("api_test_shortbatch").run_batch([{"x": 1.0}, {"x": 2.0}])
        finally:
            unregister_experiment("api_test_shortbatch")


class TestProfileAndLifecycle:
    def test_profile_meta(self, batched_experiment):
        result = Engine(executor="batch", profile=True).sweep(
            batched_experiment, SweepSpec.grid(x=[1.0, 2.0])
        )
        profile = result.meta["profile"]
        assert profile["points_profiled"] == 2
        assert profile["wall_s"] >= 0.0

    def test_profile_never_perturbs_hash(self, batched_experiment):
        spec = SweepSpec.grid(x=[1.0, 2.0])
        plain = Engine(executor="batch").sweep(batched_experiment, spec)
        profiled = Engine(executor="batch", profile=True).sweep(batched_experiment, spec)
        assert profiled.content_hash == plain.content_hash

    def test_chunk_size_validation(self):
        Engine(chunk_size="auto")
        Engine(chunk_size=None)
        Engine(chunk_size=4)
        with pytest.raises(ValueError):
            Engine(chunk_size="huge")
        with pytest.raises(ValueError):
            Engine(chunk_size=0)

    def test_close_and_context_manager(self, batched_experiment):
        with Engine(executor="batch") as engine:
            engine.sweep(batched_experiment, SweepSpec.grid(x=[1.0]))
        engine.close()  # idempotent
