"""Tests for the experiment registry, parameter specs and coercion."""

import pytest

from repro.api import (
    DuplicateExperimentError,
    Experiment,
    ExperimentNotFoundError,
    ParameterError,
    ParamSpec,
    get_experiment,
    list_experiments,
    normalize_records,
    register_experiment,
    unregister_experiment,
)

EXPECTED_EXPERIMENTS = {
    "fig8a",
    "fig8c",
    "fig9",
    "fig10_capacitance",
    "fig10_m1_m2",
    "fig10_resistance",
    "fig12",
    "energy",
    "table_ampacity",
    "table_thermal",
    "table_density",
    "table_doping_resistance",
}

# The extension studies registered in repro.analysis.studies.
EXPECTED_STUDIES = {
    "crosstalk",
    "em_lifetime",
    "variability",
    "growth_window",
    "wafer_uniformity",
    "composite_tradeoff",
    "tlm",
    "self_heating",
}


class TestRegistry:
    def test_every_paper_experiment_is_registered(self):
        names = {experiment.name for experiment in list_experiments()}
        assert EXPECTED_EXPERIMENTS <= names

    def test_every_extension_study_is_registered(self):
        names = {experiment.name for experiment in list_experiments()}
        assert EXPECTED_STUDIES <= names
        assert len(EXPECTED_EXPERIMENTS | EXPECTED_STUDIES) >= 19

    def test_extension_studies_tagged_and_described(self):
        for experiment in list_experiments(tag="extension"):
            assert experiment.description
            for spec in experiment.params:
                assert spec.help, f"{experiment.name}.{spec.name} lacks help text"

    def test_em_lifetime_gain_when_copper_fails_immediately(self):
        # At a stress density where copper fails instantly, copper's gain
        # over itself is undefined (NaN) while surviving materials are
        # infinitely better -- not inf across the board.
        import math

        from repro.api import Engine

        records = Engine().run("em_lifetime", current_density=1.0e12).to_records()
        by_material = {record["material"]: record for record in records}
        assert by_material["copper"]["lifetime_years"] == 0.0
        assert math.isnan(by_material["copper"]["gain_over_copper"])
        assert by_material["cnt"]["gain_over_copper"] == float("inf")

    def test_cheap_studies_run_and_cache_through_the_engine(self, tmp_path):
        # The heavyweight studies (crosstalk, fig12, ...) are exercised by the
        # benchmarks; here a representative cheap subset proves every study is
        # a real engine citizen: runnable, memoised and replayable.
        from repro.api import Engine

        engine = Engine(cache_dir=str(tmp_path))
        for name, params in [
            ("em_lifetime", {}),
            ("variability", {"n_devices": 50}),
            ("growth_window", {"temperatures_c": (400.0, 600.0)}),
            ("wafer_uniformity", {}),
            ("composite_tradeoff", {"fractions": (0.0, 0.3)}),
            ("tlm", {}),
            ("self_heating", {}),
        ]:
            first = engine.run(name, params)
            assert len(first) > 0, name
            replay = engine.run(name, params)
            assert replay.meta["cache_hit"] is True, name
            assert replay == first, name

    def test_lookup_unknown_name(self):
        with pytest.raises(ExperimentNotFoundError, match="registered:"):
            get_experiment("fig99")

    def test_lookup_typo_suggests_nearest_names(self):
        with pytest.raises(ExperimentNotFoundError, match="did you mean: variability"):
            get_experiment("varibility")

    def test_lookup_far_off_name_has_no_suggestion(self):
        with pytest.raises(ExperimentNotFoundError) as excinfo:
            get_experiment("zzzzzzzz")
        assert "did you mean" not in str(excinfo.value)

    def test_tag_filtering(self):
        tables = {e.name for e in list_experiments(tag="table")}
        assert "table_ampacity" in tables
        assert "fig9" not in tables

    def test_registration_collision(self):
        @register_experiment("api_test_collision")
        def first():
            return []

        try:
            with pytest.raises(DuplicateExperimentError, match="already registered"):

                @register_experiment("api_test_collision")
                def second():
                    return []

            # replace=True overrides explicitly.
            @register_experiment("api_test_collision", replace=True)
            def third():
                return [{"x": 1}]

            assert get_experiment("api_test_collision").run() == [{"x": 1}]
        finally:
            unregister_experiment("api_test_collision")

    def test_description_defaults_to_docstring(self):
        @register_experiment("api_test_doc")
        def documented():
            """First line wins.

            Not this one.
            """
            return []

        try:
            assert get_experiment("api_test_doc").description == "First line wins."
        finally:
            unregister_experiment("api_test_doc")


class TestParamSpec:
    def test_scalar_coercion(self):
        assert ParamSpec("x", "float").coerce("2.5") == 2.5
        assert ParamSpec("x", "int").coerce("7") == 7
        assert ParamSpec("x", "str").coerce(14) == "14"

    def test_bool_coercion(self):
        spec = ParamSpec("x", "bool")
        assert spec.coerce("true") is True
        assert spec.coerce("False") is False
        assert spec.coerce(True) is True
        with pytest.raises(ParameterError):
            spec.coerce("maybe")

    def test_tuple_coercion_from_csv_string(self):
        assert ParamSpec("x", "floats").coerce("1,2.5,3") == (1.0, 2.5, 3.0)
        assert ParamSpec("x", "ints").coerce([1, 2]) == (1, 2)
        assert ParamSpec("x", "floats").coerce(5) == (5.0,)

    def test_choices(self):
        spec = ParamSpec("tech", "str", "45nm", choices=("14nm", "45nm"))
        assert spec.coerce("14nm") == "14nm"
        with pytest.raises(ParameterError, match="must be one of"):
            spec.coerce("7nm")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown param kind"):
            ParamSpec("x", "complex")

    def test_bad_value_mentions_param(self):
        with pytest.raises(ParameterError, match="'x'"):
            ParamSpec("x", "float").coerce("not-a-number")


class TestExperimentParams:
    def experiment(self):
        return Experiment(
            name="demo",
            fn=lambda a, b, flag: [{"a": a, "b": b, "flag": flag}],
            params=(
                ParamSpec("a", "float", 1.0),
                ParamSpec("b", "floats", (1.0, 2.0)),
                ParamSpec("flag", "bool", True),
            ),
        )

    def test_defaults_and_overrides(self):
        experiment = self.experiment()
        resolved = experiment.resolve_params({"a": "3"})
        assert resolved == {"a": 3.0, "b": (1.0, 2.0), "flag": True}

    def test_unknown_param_rejected(self):
        with pytest.raises(ParameterError, match="no parameter 'c'"):
            self.experiment().resolve_params({"c": 1})

    def test_missing_required_param(self):
        experiment = Experiment(
            name="demo", fn=lambda a: [], params=(ParamSpec("a", "float"),)
        )
        with pytest.raises(ParameterError, match="missing required"):
            experiment.resolve_params()

    def test_duplicate_param_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate parameter"):
            Experiment(
                name="demo",
                fn=lambda a: [],
                params=(ParamSpec("a"), ParamSpec("a")),
            )

    def test_run_normalizes(self):
        experiment = self.experiment()
        records = experiment.run(flag="false")
        assert records == [{"a": 1.0, "b": (1.0, 2.0), "flag": False}]


class TestNormalizeRecords:
    def test_list_of_dicts_passthrough(self):
        assert normalize_records([{"a": 1}]) == [{"a": 1}]

    def test_single_dict_wrapped(self):
        assert normalize_records({"a": 1}) == [{"a": 1}]

    def test_dataclass_converted(self):
        from dataclasses import dataclass

        @dataclass
        class Point:
            x: float
            y: float

        assert normalize_records(Point(1.0, 2.0)) == [{"x": 1.0, "y": 2.0}]

    def test_bad_types_rejected(self):
        with pytest.raises(TypeError):
            normalize_records(42)
        with pytest.raises(TypeError):
            normalize_records([1, 2])
