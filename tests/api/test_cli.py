"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.api import ResultSet
from repro.api.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_lists_every_paper_experiment(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        for name in ("fig8a", "fig8c", "fig9", "fig10_capacitance", "fig12",
                     "energy", "table_ampacity", "table_density"):
            assert name in out

    def test_tag_filter(self, capsys):
        code, out, _ = run_cli(capsys, "list", "--tag", "table")
        assert code == 0
        assert "table_ampacity" in out and "fig9" not in out


class TestDescribe:
    def test_describe_shows_params(self, capsys):
        code, out, _ = run_cli(capsys, "describe", "fig9")
        assert code == 0
        assert "lengths_um" in out and "floats" in out
        assert "include_cu_size_effects" in out

    def test_describe_unknown_experiment(self, capsys):
        code, _, err = run_cli(capsys, "describe", "fig99")
        assert code == 2
        assert "fig99" in err


class TestRun:
    def test_run_prints_table(self, capsys):
        code, out, _ = run_cli(capsys, "run", "table_density")
        assert code == 0
        assert "Cu 100x50 nm" in out
        assert "content hash" in out

    def test_run_with_params_and_outputs(self, capsys, tmp_path):
        csv_path = str(tmp_path / "fig9.csv")
        json_path = str(tmp_path / "fig9.json")
        code, out, _ = run_cli(
            capsys,
            "run", "fig9",
            "-p", "lengths_um=1,10",
            "-p", "mwcnt_diameters_nm=22",
            "--csv", csv_path,
            "--json", json_path,
        )
        assert code == 0
        restored = ResultSet.from_json(json_path)
        assert len(restored) == 8  # 4 lines x 2 lengths
        assert set(restored.unique("kind")) == {"SWCNT", "MWCNT", "Cu"}
        from_csv = ResultSet.from_csv(csv_path)
        assert from_csv == restored

    def test_run_bad_param_value(self, capsys):
        code, _, err = run_cli(capsys, "run", "fig9", "-p", "lengths_um=banana")
        assert code == 2
        assert "lengths_um" in err

    def test_run_unknown_param(self, capsys):
        code, _, err = run_cli(capsys, "run", "fig9", "-p", "bogus=1")
        assert code == 2
        assert "bogus" in err

    def test_run_uses_cache_dir(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        code, out, _ = run_cli(capsys, "run", "table_density", "--cache-dir", cache)
        assert code == 0 and "cache hit" not in out
        code, out, _ = run_cli(capsys, "run", "table_density", "--cache-dir", cache)
        assert code == 0 and "cache hit" in out


class TestSweep:
    def test_grid_sweep(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "table_density", "--grid", "length_um=1,10", "--limit", "0"
        )
        assert code == 0
        assert "grid over ['length_um'], 2 points" in out

    def test_zip_sweep_with_semicolon_tuple_axis(self, capsys):
        # Tuple-kind axes separate their sweep values with ';'.
        code, out, _ = run_cli(
            capsys,
            "sweep", "table_doping_resistance",
            "--zip", "lengths_um=1,10;100,500",
            "--limit", "0",
        )
        assert code == 0
        assert "zip over ['lengths_um'], 2 points" in out

    def test_parallel_sweep(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "sweep", "table_density",
            "--grid", "length_um=1,5,10",
            "--executor", "thread", "--workers", "2",
            "--limit", "4",
        )
        assert code == 0
        assert "3 points" in out

    def test_unequal_zip_axes_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys,
            "sweep", "table_thermal",
            "--zip", "via_diameter_nm=50,100", "via_height_nm=100",
        )
        assert code == 2
        assert "equal lengths" in err

    def test_empty_axis_clean_error(self, capsys):
        code, _, err = run_cli(capsys, "sweep", "table_density", "--grid", "length_um=")
        assert code == 2
        assert "empty" in err

    def test_bad_workers_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys,
            "sweep", "table_density", "--grid", "length_um=1,10", "--workers", "0",
        )
        assert code == 2
        assert "max_workers" in err

    def test_assignment_without_equals_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "table_density", "--grid", "length_um"])
