"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.api import ResultSet
from repro.api.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_lists_every_paper_experiment(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        for name in ("fig8a", "fig8c", "fig9", "fig10_capacitance", "fig12",
                     "energy", "table_ampacity", "table_density"):
            assert name in out

    def test_tag_filter(self, capsys):
        code, out, _ = run_cli(capsys, "list", "--tag", "table")
        assert code == 0
        assert "table_ampacity" in out and "fig9" not in out


class TestDescribe:
    def test_describe_shows_params(self, capsys):
        code, out, _ = run_cli(capsys, "describe", "fig9")
        assert code == 0
        assert "lengths_um" in out and "floats" in out
        assert "include_cu_size_effects" in out

    def test_describe_unknown_experiment(self, capsys):
        code, _, err = run_cli(capsys, "describe", "fig99")
        assert code == 2
        assert "fig99" in err


class TestRun:
    def test_run_prints_table(self, capsys):
        code, out, _ = run_cli(capsys, "run", "table_density")
        assert code == 0
        assert "Cu 100x50 nm" in out
        assert "content hash" in out

    def test_run_with_params_and_outputs(self, capsys, tmp_path):
        csv_path = str(tmp_path / "fig9.csv")
        json_path = str(tmp_path / "fig9.json")
        code, out, _ = run_cli(
            capsys,
            "run", "fig9",
            "-p", "lengths_um=1,10",
            "-p", "mwcnt_diameters_nm=22",
            "--csv", csv_path,
            "--json", json_path,
        )
        assert code == 0
        restored = ResultSet.from_json(json_path)
        assert len(restored) == 8  # 4 lines x 2 lengths
        assert set(restored.unique("kind")) == {"SWCNT", "MWCNT", "Cu"}
        from_csv = ResultSet.from_csv(csv_path)
        assert from_csv == restored

    def test_run_bad_param_value(self, capsys):
        code, _, err = run_cli(capsys, "run", "fig9", "-p", "lengths_um=banana")
        assert code == 2
        assert "lengths_um" in err

    def test_run_unknown_param(self, capsys):
        code, _, err = run_cli(capsys, "run", "fig9", "-p", "bogus=1")
        assert code == 2
        assert "bogus" in err

    def test_run_uses_cache_dir(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        code, out, _ = run_cli(capsys, "run", "table_density", "--cache-dir", cache)
        assert code == 0 and "cache hit" not in out
        code, out, _ = run_cli(capsys, "run", "table_density", "--cache-dir", cache)
        assert code == 0 and "cache hit" in out


class TestSweep:
    def test_grid_sweep(self, capsys):
        code, out, _ = run_cli(
            capsys, "sweep", "table_density", "--grid", "length_um=1,10", "--limit", "0"
        )
        assert code == 0
        assert "grid over ['length_um'], 2 points" in out

    def test_zip_sweep_with_semicolon_tuple_axis(self, capsys):
        # Tuple-kind axes separate their sweep values with ';'.
        code, out, _ = run_cli(
            capsys,
            "sweep", "table_doping_resistance",
            "--zip", "lengths_um=1,10;100,500",
            "--limit", "0",
        )
        assert code == 0
        assert "zip over ['lengths_um'], 2 points" in out

    def test_parallel_sweep(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "sweep", "table_density",
            "--grid", "length_um=1,5,10",
            "--executor", "thread", "--workers", "2",
            "--limit", "4",
        )
        assert code == 0
        assert "3 points" in out

    def test_unequal_zip_axes_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys,
            "sweep", "table_thermal",
            "--zip", "via_diameter_nm=50,100", "via_height_nm=100",
        )
        assert code == 2
        assert "equal lengths" in err

    def test_empty_axis_clean_error(self, capsys):
        code, _, err = run_cli(capsys, "sweep", "table_density", "--grid", "length_um=")
        assert code == 2
        assert "empty" in err

    def test_bad_workers_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys,
            "sweep", "table_density", "--grid", "length_um=1,10", "--workers", "0",
        )
        assert code == 2
        assert "max_workers" in err

    def test_assignment_without_equals_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "table_density", "--grid", "length_um"])

    def test_sweep_streams_progress_to_stderr(self, capsys):
        code, out, err = run_cli(
            capsys, "sweep", "table_density", "--grid", "length_um=1,10", "--limit", "0"
        )
        assert code == 0
        assert "[1/2]" in err and "[2/2]" in err
        assert "length_um=" in err and "... ok" in err

    def test_sweep_progress_marks_cache_hits(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        run_cli(capsys, "sweep", "table_density", "--grid", "length_um=1,10",
                "--cache-dir", cache)
        _, _, err = run_cli(
            capsys, "sweep", "table_density", "--grid", "length_um=1,10",
            "--cache-dir", cache,
        )
        assert err.count("cached") == 2

    def test_no_progress_flag(self, capsys):
        code, _, err = run_cli(
            capsys, "sweep", "table_density", "--grid", "length_um=1,10",
            "--no-progress", "--limit", "0",
        )
        assert code == 0
        assert "[1/2]" not in err

    def test_partial_failure_prints_completed_points(self, capsys):
        from repro.api import ParamSpec, register_experiment, unregister_experiment

        @register_experiment(
            "api_test_cli_flaky", params=(ParamSpec("x", "float", 1.0),), replace=True
        )
        def flaky(x: float):
            if x == 2.0:
                raise RuntimeError("boom")
            return [{"x": x, "y": x * 10}]

        try:
            code, out, err = run_cli(
                capsys,
                "sweep", "api_test_cli_flaky", "--grid", "x=1,2,3", "--limit", "0",
            )
            assert code == 1
            assert "FAILED" in err and "boom" in err
            assert "1 of 3 sweep points failed" in err
            # The completed points are still rendered (partial ResultSet).
            assert "2 records" in out
        finally:
            unregister_experiment("api_test_cli_flaky")


class TestCacheCommand:
    def _populate(self, capsys, cache):
        run_cli(capsys, "run", "table_density", "--cache-dir", cache, "--limit", "0")
        run_cli(capsys, "run", "table_thermal", "--cache-dir", cache, "--limit", "0")

    def test_stats(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self._populate(capsys, cache)
        code, out, _ = run_cli(capsys, "cache", "stats", "--cache-dir", cache)
        assert code == 0
        assert "2 entries" in out
        assert "table_density" in out and "table_thermal" in out

    def test_stats_empty_cache(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "cache", "stats", "--cache-dir", str(tmp_path / "nope")
        )
        assert code == 0
        assert "0 entries" in out

    def test_clear(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self._populate(capsys, cache)
        code, out, _ = run_cli(capsys, "cache", "clear", "--cache-dir", cache)
        assert code == 0
        assert "removed 2 cache entries" in out

    def test_prune_by_experiment(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self._populate(capsys, cache)
        code, out, _ = run_cli(
            capsys, "cache", "prune", "--cache-dir", cache,
            "--experiment", "table_density",
        )
        assert code == 0
        assert "removed 1 cache entries" in out and "table_density" in out
        code, out, _ = run_cli(capsys, "cache", "stats", "--cache-dir", cache)
        assert "table_thermal" in out and "table_density" not in out

    def test_prune_dry_run(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        self._populate(capsys, cache)
        code, out, _ = run_cli(
            capsys, "cache", "prune", "--cache-dir", cache,
            "--older-than", "0s", "--dry-run",
        )
        assert code == 0
        assert "would remove 2 cache entries" in out
        _, out, _ = run_cli(capsys, "cache", "stats", "--cache-dir", cache)
        assert "2 entries" in out

    def test_prune_without_criteria_clean_error(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "cache", "prune", "--cache-dir", str(tmp_path)
        )
        assert code == 2
        assert "at least one" in err

    def test_prune_bad_age_clean_error(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "cache", "prune", "--cache-dir", str(tmp_path),
            "--older-than", "banana",
        )
        assert code == 2
        assert "banana" in err

    def test_prune_gc_collects_tombstones_and_stale_leases(self, capsys, tmp_path):
        import os
        import time as time_module

        from repro.dist import SharedStore

        cache = str(tmp_path / "cache")
        self._populate(capsys, cache)
        store = SharedStore(cache)
        pending = os.path.join(cache, "exp-aaaaaaaaaaaaaaaa.json")
        store.claim(pending, "dead-worker", ttl=0.01)
        store.record_failure(
            os.path.join(cache, "exp-bbbbbbbbbbbbbbbb.json"), "dead-worker", "boom"
        )
        time_module.sleep(0.05)

        # --gc alone is valid (no entry criteria needed) and touches no entries.
        code, out, _ = run_cli(capsys, "cache", "prune", "--cache-dir", cache, "--gc")
        assert code == 0
        assert "removed 2 tombstone/lease records" in out
        _, out, _ = run_cli(capsys, "cache", "stats", "--cache-dir", cache)
        assert "2 entries" in out

    def test_prune_gc_dry_run(self, capsys, tmp_path):
        import os

        from repro.dist import SharedStore

        cache = str(tmp_path / "cache")
        SharedStore(cache).record_failure(
            os.path.join(cache, "exp-cccccccccccccccc.json"), "w", "boom"
        )
        code, out, _ = run_cli(
            capsys, "cache", "prune", "--cache-dir", cache, "--gc", "--dry-run"
        )
        assert code == 0
        assert "would remove 1 tombstone/lease records" in out
        code, out, _ = run_cli(capsys, "cache", "prune", "--cache-dir", cache, "--gc")
        assert "removed 1 tombstone/lease records" in out


class TestStudyCommand:
    def test_list_shows_registered_studies(self, capsys):
        code, out, _ = run_cli(capsys, "study", "list")
        assert code == 0
        assert "variability_to_delay" in out
        assert "growth_to_wafer" in out
        assert "composite_tradeoff_fom" in out

    def test_describe_shows_pipeline_and_outputs(self, capsys):
        code, out, _ = run_cli(capsys, "study", "describe", "growth_to_wafer")
        assert code == 0
        assert "growth_window (depth 1)" in out
        assert "* wafer_window (depth 0)" in out
        assert "catalyst<-catalyst" in out
        assert "default sweep" in out
        assert "uniformity" in out  # output schema table

    def test_describe_unknown_study_suggests(self, capsys):
        code, _, err = run_cli(capsys, "study", "describe", "growth_to_wafr")
        assert code == 2
        assert "did you mean: growth_to_wafer" in err

    def test_run_executes_pipeline_with_stage_override(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        code, out, err = run_cli(
            capsys, "study", "run", "growth_to_wafer",
            "--grid", "seed=0,1", "-p", "catalyst=Fe",
            "-p", "growth_window.duration_s=500",
            "--cache-dir", cache, "--limit", "0",
        )
        assert code == 0
        assert "wafer_window: 2 records" in out
        assert "[2/2]" in err  # per-point progress streamed
        # Re-run: everything (including the upstream stage) is cached.
        code, out, _ = run_cli(
            capsys, "study", "run", "growth_to_wafer",
            "--grid", "seed=0,1", "-p", "catalyst=Fe",
            "-p", "growth_window.duration_s=500",
            "--cache-dir", cache, "--limit", "0", "--no-progress",
        )
        assert code == 0

    def test_run_bad_stage_param_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "study", "run", "growth_to_wafer", "-p", "nope.x=1",
        )
        assert code == 2
        assert "nope" in err

    def test_run_sharded_exports_merge_to_serial(self, capsys, tmp_path):
        parts = []
        for index in (0, 1):
            path = str(tmp_path / f"part{index}.json")
            code, _, _ = run_cli(
                capsys, "study", "run", "growth_to_wafer",
                "--grid", "seed=0,1,2", "--shards", "2", "--shard-index", str(index),
                "--json", path, "--limit", "0", "--no-progress",
            )
            assert code == 0
            parts.append(path)
        serial_path = str(tmp_path / "serial.json")
        run_cli(
            capsys, "study", "run", "growth_to_wafer", "--grid", "seed=0,1,2",
            "--json", serial_path, "--limit", "0", "--no-progress",
        )
        code, out, _ = run_cli(
            capsys, "merge", *parts, "--json", str(tmp_path / "merged.json"),
            "--limit", "0",
        )
        assert code == 0
        merged = ResultSet.from_json(str(tmp_path / "merged.json"))
        serial = ResultSet.from_json(serial_path)
        assert merged.content_hash == serial.content_hash

    def test_run_with_store_and_cache_dir_rejected(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "study", "run", "growth_to_wafer",
            "--store", str(tmp_path / "a"), "--cache-dir", str(tmp_path / "b"),
        )
        assert code == 2
        assert "not both" in err


class TestDocsCommand:
    def test_prints_catalog(self, capsys):
        code, out, _ = run_cli(capsys, "docs")
        assert code == 0
        assert out.startswith("# Experiment catalog")
        assert "## fig9" in out

    def test_write_and_check_round_trip(self, capsys, tmp_path):
        path = str(tmp_path / "EXPERIMENTS.md")
        code, out, _ = run_cli(capsys, "docs", "--write", path)
        assert code == 0 and "wrote" in out
        code, out, _ = run_cli(capsys, "docs", "--check", path)
        assert code == 0 and "up to date" in out

    def test_check_detects_drift(self, capsys, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        path.write_text("# stale\n")
        code, _, err = run_cli(capsys, "docs", "--check", str(path))
        assert code == 1
        assert "stale" in err and "--write" in err


class TestTraceCommand:
    def test_summary_of_a_recorded_run(self, capsys, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        code, _, _ = run_cli(
            capsys, "run", "table_density", "--limit", "0", "--trace", sink
        )
        assert code == 0
        code, out, _ = run_cli(capsys, "trace", "summary", sink)
        assert code == 0
        assert "cli.run" in out and "1 trace(s)" in out

    def test_missing_sink_is_a_clean_error(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "trace", "summary", str(tmp_path / "absent.jsonl")
        )
        assert code == 2
        assert err.startswith("error:")

    def test_empty_sink_reports_no_spans(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code, _, err = run_cli(capsys, "trace", "summary", str(empty))
        assert code == 1
        assert "no spans" in err


class TestSweepSeed:
    def test_seed_threads_into_base_params(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "sweep", "variability",
            "--grid", "length_um=1,10",
            "-p", "n_devices=8",
            "--seed", "3",
            "--limit", "0",
        )
        assert code == 0
        assert "2 points" in out

    def test_seed_needs_a_seed_parameter(self, capsys):
        code, _, err = run_cli(
            capsys,
            "sweep", "table_density",
            "--grid", "length_um=1,10",
            "--seed", "3",
        )
        assert code == 2
        assert "declares no 'seed' parameter" in err

    def test_seed_conflicts_with_explicit_param(self, capsys):
        code, _, err = run_cli(
            capsys,
            "sweep", "variability",
            "--grid", "length_um=1,10",
            "-p", "seed=1",
            "--seed", "3",
        )
        assert code == 2
        assert "seed" in err

    def test_seed_conflicts_with_seed_axis(self, capsys):
        code, _, err = run_cli(
            capsys,
            "sweep", "variability",
            "--grid", "seed=1,2",
            "--seed", "3",
        )
        assert code == 2
        assert "seed" in err


class TestCampaign:
    GRID = "temperatures_c=" + ";".join(str(t) for t in range(300, 800, 50))

    def campaign(self, capsys, tmp_path, label, *extra):
        return run_cli(
            capsys,
            "campaign", "run", "growth_window",
            "--grid", self.GRID,
            "--objective", "quality", "--mode", "max",
            "--strategy", "surrogate",
            "--batch", "2", "--budget", "6", "--seed", "0",
            "--cache-dir", str(tmp_path / "cache"),
            "--report", str(tmp_path / f"report-{label}.json"),
            "--limit", "0",
            *extra,
        )

    def test_campaign_run_and_cache_replay(self, capsys, tmp_path):
        code, out, _ = self.campaign(capsys, tmp_path, "first")
        assert code == 0
        assert "campaign" in out and "best" in out
        first = json.loads((tmp_path / "report-first.json").read_text())
        assert first["n_visited"] == 6
        assert first["n_executed"] == 6

        # Same store, same seed, fresh campaign: a pure cache replay.
        code, _, _ = self.campaign(capsys, tmp_path, "replay")
        assert code == 0
        replay = json.loads((tmp_path / "report-replay.json").read_text())
        assert replay["n_executed"] == 0
        assert replay["result_hash"] == first["result_hash"]
        assert replay["best_value"] == first["best_value"]

    def test_campaign_rejects_no_cache(self, capsys, tmp_path):
        code, _, err = self.campaign(capsys, tmp_path, "x", "--no-cache")
        assert code == 2
        assert "cache" in err

    def test_campaign_unknown_objective_is_clean(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys,
            "campaign", "run", "growth_window",
            "--grid", self.GRID,
            "--objective", "nope",
            "--budget", "4",
            "--cache-dir", str(tmp_path / "cache"),
            "--limit", "0",
        )
        assert code == 2
        assert "'nope'" in err
