"""The quickstart snippets in the package docstrings must actually run.

Guards against docstring drift: every indented code block following a ``::``
marker is extracted and executed -- for the top-level package and for every
module of the public API surface (``repro.api``, ``repro.analysis``,
``repro.dist``, ``repro.service`` and the newer :mod:`repro.api.cache`,
:mod:`repro.api.catalog`, :mod:`repro.analysis.studies`).
"""

import textwrap

import pytest

import repro
import repro.analysis
import repro.analysis.studies
import repro.api
import repro.api.cache
import repro.api.catalog
import repro.api.study
import repro.dist
import repro.service
import repro.service.daemon


def _code_blocks(doc: str) -> list[str]:
    """Extract the indented literal blocks following ``::`` markers."""
    blocks: list[str] = []
    lines = doc.splitlines()
    i = 0
    while i < len(lines):
        if lines[i].rstrip().endswith("::"):
            i += 1
            block: list[str] = []
            while i < len(lines) and (not lines[i].strip() or lines[i].startswith("    ")):
                block.append(lines[i])
                i += 1
            if block:
                blocks.append(textwrap.dedent("\n".join(block)))
        else:
            i += 1
    return blocks


def test_docstring_has_quickstart_blocks():
    blocks = _code_blocks(repro.__doc__)
    assert len(blocks) >= 2, "expected model and experiment quickstart blocks"


def test_docstring_snippets_run(capsys):
    for block in _code_blocks(repro.__doc__):
        exec(compile(block, "<repro docstring>", "exec"), {})
    assert capsys.readouterr().out  # the snippets print their results


def test_api_names_exported_from_top_level():
    from repro import Engine, Experiment, ResultSet, SweepSpec  # noqa: F401

    assert set(["Engine", "Experiment", "ResultSet", "SweepSpec"]) <= set(repro.__all__)


DOCUMENTED_MODULES = [
    repro.api,
    repro.analysis,
    repro.analysis.studies,
    repro.api.cache,
    repro.api.catalog,
    repro.api.study,
    repro.dist,
    repro.service,
    repro.service.daemon,
]


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda module: module.__name__
)
def test_module_docstring_snippets_run(module):
    """Every public API module carries at least one runnable quickstart block."""
    blocks = _code_blocks(module.__doc__ or "")
    assert blocks, f"{module.__name__} docstring has no runnable :: blocks"
    for block in blocks:
        exec(compile(block, f"<{module.__name__} docstring>", "exec"), {})


def test_streaming_names_exported_from_api():
    from repro.api import SweepError, SweepPoint, cache_stats, prune_cache  # noqa: F401

    assert {"SweepError", "SweepPoint", "cache_stats", "prune_cache"} <= set(
        repro.api.__all__
    )
