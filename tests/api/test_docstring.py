"""The quickstart snippets in ``repro.__doc__`` must actually run.

Guards against docstring drift: every indented code block of the package
docstring is extracted and executed.
"""

import textwrap

import repro


def _code_blocks(doc: str) -> list[str]:
    """Extract the indented literal blocks following ``::`` markers."""
    blocks: list[str] = []
    lines = doc.splitlines()
    i = 0
    while i < len(lines):
        if lines[i].rstrip().endswith("::"):
            i += 1
            block: list[str] = []
            while i < len(lines) and (not lines[i].strip() or lines[i].startswith("    ")):
                block.append(lines[i])
                i += 1
            if block:
                blocks.append(textwrap.dedent("\n".join(block)))
        else:
            i += 1
    return blocks


def test_docstring_has_quickstart_blocks():
    blocks = _code_blocks(repro.__doc__)
    assert len(blocks) >= 2, "expected model and experiment quickstart blocks"


def test_docstring_snippets_run(capsys):
    for block in _code_blocks(repro.__doc__):
        exec(compile(block, "<repro docstring>", "exec"), {})
    assert capsys.readouterr().out  # the snippets print their results


def test_api_names_exported_from_top_level():
    from repro import Engine, Experiment, ResultSet, SweepSpec  # noqa: F401

    assert set(["Engine", "Experiment", "ResultSet", "SweepSpec"]) <= set(repro.__all__)
