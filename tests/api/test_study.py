"""Tests for composable study pipelines: typed artifacts, consumes DAGs,
staged execution and chained cache invalidation."""

import pytest

from repro.api import (
    Consumes,
    DuplicateStudyError,
    Engine,
    Experiment,
    OutputSchemaError,
    OutputSpec,
    ParameterError,
    ParamSpec,
    PipelineError,
    Study,
    StudyNotFoundError,
    SweepError,
    SweepSpec,
    get_study,
    list_studies,
    register_experiment,
    register_study,
    resolve_pipeline,
    unregister_experiment,
    unregister_study,
)

CALLS = {"source": 0, "scale": 0, "sink": 0}


@pytest.fixture
def pipeline_experiments():
    """A three-stage synthetic pipeline: source -> scale -> sink.

    ``base`` binds through every stage; ``unused`` lets tests change a
    source parameter without changing the source's *records* (exercising
    content-hash -- not parameter-hash -- chaining).
    """
    for key in CALLS:
        CALLS[key] = 0

    @register_experiment(
        "pipe_source",
        params=(
            ParamSpec("base", "float", 1.0),
            ParamSpec("n", "int", 3),
            ParamSpec("unused", "float", 0.0),
        ),
        outputs=(OutputSpec("i", "int"), OutputSpec("value", "float")),
        replace=True,
    )
    def source(base, n, unused):
        CALLS["source"] += 1
        if base < 0:
            raise ValueError("base must be non-negative")
        return [{"i": i, "value": base * (i + 1)} for i in range(n)]

    @register_experiment(
        "pipe_scale",
        params=(ParamSpec("base", "float", 1.0), ParamSpec("gain", "float", 2.0)),
        outputs=(OutputSpec("i", "int"), OutputSpec("scaled", "float")),
        consumes=(
            Consumes("pipe_source", inject="source_result", bind={"base": "base"}),
        ),
        replace=True,
    )
    def scale(source_result, base, gain):
        CALLS["scale"] += 1
        return [
            {"i": row["i"], "scaled": row["value"] * gain}
            for row in source_result.to_records()
        ]

    @register_experiment(
        "pipe_sink",
        params=(ParamSpec("base", "float", 1.0), ParamSpec("offset", "float", 0.0)),
        outputs=(OutputSpec("total", "float"),),
        consumes=(
            Consumes("pipe_scale", inject="scaled_result", bind={"base": "base"}),
        ),
        replace=True,
    )
    def sink(scaled_result, base, offset):
        CALLS["sink"] += 1
        return [{"total": sum(scaled_result.column("scaled")) + offset}]

    yield
    for name in ("pipe_source", "pipe_scale", "pipe_sink"):
        unregister_experiment(name)


class TestTypedOutputs:
    def test_unknown_output_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown output kind"):
            OutputSpec("x", "complex")

    def test_missing_declared_column_raises(self):
        experiment = Experiment(
            name="t", fn=lambda: [{"a": 1.0}], outputs=(OutputSpec("b", "float"),)
        )
        with pytest.raises(OutputSchemaError, match="missing declared output 'b'"):
            experiment.run()

    def test_wrong_kind_raises(self):
        experiment = Experiment(
            name="t", fn=lambda: [{"a": "oops"}], outputs=(OutputSpec("a", "float"),)
        )
        with pytest.raises(OutputSchemaError, match="expects kind 'float'"):
            experiment.run()

    def test_bool_is_not_a_float(self):
        experiment = Experiment(
            name="t", fn=lambda: [{"a": True}], outputs=(OutputSpec("a", "float"),)
        )
        with pytest.raises(OutputSchemaError):
            experiment.run()

    def test_int_cell_satisfies_float_output(self):
        experiment = Experiment(
            name="t",
            fn=lambda: [{"a": 2, "extra": "fine"}],
            outputs=(OutputSpec("a", "float"),),
        )
        assert experiment.run() == [{"a": 2, "extra": "fine"}]


class TestRequireColumns:
    def test_returns_self_when_present(self):
        from repro.api import ResultSet

        rs = ResultSet({"a": [1], "b": [2]}, meta={"experiment": "up"})
        assert rs.require_columns("a", "b") is rs

    def test_names_source_and_missing_columns(self):
        from repro.api import MissingColumnsError, ResultSet

        rs = ResultSet({"a": [1]}, meta={"experiment": "up"})
        with pytest.raises(MissingColumnsError, match="'up' artifact is missing.*'b'"):
            rs.require_columns("a", "b")

    def test_message_renders_verbatim(self):
        # KeyError.__str__ would repr-quote the message; the subclass keeps
        # the plain text, so tombstones/progress lines stay readable.
        from repro.api import ResultSet

        rs = ResultSet({"a": [1]}, meta={"experiment": "up"})
        with pytest.raises(KeyError) as excinfo:
            rs.require_columns("b")
        assert not str(excinfo.value).startswith('"')


class TestConsumesContract:
    def test_inject_colliding_with_param_rejected(self):
        with pytest.raises(ValueError, match="collides with a declared parameter"):
            Experiment(
                name="t",
                fn=lambda x: [],
                params=(ParamSpec("x"),),
                consumes=(Consumes("up", inject="x"),),
            )

    def test_bind_to_unknown_own_param_rejected(self):
        with pytest.raises(ValueError, match="binds unknown parameter"):
            Experiment(
                name="t",
                fn=lambda: [],
                consumes=(Consumes("up", inject="u", bind={"a": "nope"}),),
            )

    def test_duplicate_inject_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate inject"):
            Experiment(
                name="t",
                fn=lambda: [],
                consumes=(Consumes("up", inject="u"), Consumes("up2", inject="u")),
            )

    def test_direct_run_of_composite_raises(self, pipeline_experiments):
        from repro.api import get_experiment

        with pytest.raises(PipelineError, match="Engine.run"):
            get_experiment("pipe_sink").run()

    def test_undeclared_inputs_rejected(self, pipeline_experiments):
        from repro.api import get_experiment

        experiment = get_experiment("pipe_source")
        with pytest.raises(PipelineError, match="undeclared inputs"):
            experiment.run_with_inputs({"bogus": None}, {"base": 1.0, "n": 1, "unused": 0.0})


class TestResolvePipeline:
    def test_topological_order(self, pipeline_experiments):
        pipeline = resolve_pipeline("pipe_sink")
        assert pipeline.stage_names == ["pipe_source", "pipe_scale", "pipe_sink"]
        assert [stage.depth for stage in pipeline.stages] == [2, 1, 0]
        assert pipeline.target == "pipe_sink"

    def test_unregistered_upstream_is_pipeline_error(self):
        @register_experiment(
            "pipe_dangling",
            consumes=(Consumes("pipe_not_registered", inject="up"),),
            replace=True,
        )
        def dangling(up):
            return []

        try:
            with pytest.raises(PipelineError, match="unregistered"):
                resolve_pipeline("pipe_dangling")
        finally:
            unregister_experiment("pipe_dangling")

    def test_cycle_detected(self):
        @register_experiment(
            "pipe_cycle_a", consumes=(Consumes("pipe_cycle_b", inject="b"),), replace=True
        )
        def cycle_a(b):
            return []

        @register_experiment(
            "pipe_cycle_b", consumes=(Consumes("pipe_cycle_a", inject="a"),), replace=True
        )
        def cycle_b(a):
            return []

        try:
            with pytest.raises(PipelineError, match="dependency cycle"):
                resolve_pipeline("pipe_cycle_a")
        finally:
            unregister_experiment("pipe_cycle_a")
            unregister_experiment("pipe_cycle_b")

    def test_bind_to_unknown_upstream_param_rejected(self, pipeline_experiments):
        @register_experiment(
            "pipe_badbind",
            params=(ParamSpec("base", "float", 1.0),),
            consumes=(
                Consumes("pipe_source", inject="up", bind={"nope": "base"}),
            ),
            replace=True,
        )
        def badbind(up, base):
            return []

        try:
            with pytest.raises(PipelineError, match="unknown upstream parameter"):
                resolve_pipeline("pipe_badbind")
        finally:
            unregister_experiment("pipe_badbind")

    def test_overrides_outside_pipeline_rejected(self, pipeline_experiments):
        with pytest.raises(PipelineError, match="outside the pipeline"):
            resolve_pipeline("pipe_sink", {"fig9": {"x": 1}})

    def test_unknown_override_param_rejected(self, pipeline_experiments):
        with pytest.raises(ParameterError):
            resolve_pipeline("pipe_sink", {"pipe_source": {"nope": 1}})

    def test_override_of_bound_param_rejected(self, pipeline_experiments):
        # pipe_source.base is bound from pipe_scale: an override would be
        # silently overwritten by the binding, so it must be rejected.
        with pytest.raises(PipelineError, match="bound from 'pipe_scale'"):
            resolve_pipeline("pipe_sink", {"pipe_source": {"base": 9.0}})


class TestEngineComposite:
    def test_run_injects_upstream_results(self, pipeline_experiments):
        result = Engine().run("pipe_sink", base=2.0)
        # source values 2,4,6; scaled x2 -> 4,8,12; total 24
        assert result.to_records() == [{"total": 24.0}]
        assert CALLS == {"source": 1, "scale": 1, "sink": 1}
        assert set(result.meta["upstream"]) == {"scaled_result"}
        assert (
            result.meta["upstream"]["scaled_result"]["experiment"] == "pipe_scale"
        )

    def test_downstream_only_change_hits_upstream_cache(
        self, pipeline_experiments, tmp_path
    ):
        cache = str(tmp_path)
        Engine(cache_dir=cache).run("pipe_sink", base=2.0)
        assert CALLS == {"source": 1, "scale": 1, "sink": 1}

        # (a) changing only a downstream parameter replays all upstream
        # stages from cache.
        engine = Engine(cache_dir=cache)
        engine.run("pipe_sink", base=2.0, offset=5.0)
        assert CALLS == {"source": 1, "scale": 1, "sink": 2}
        assert (engine.cache_hits, engine.cache_misses) == (2, 1)

    def test_upstream_change_invalidates_dependents(
        self, pipeline_experiments, tmp_path
    ):
        cache = str(tmp_path)
        Engine(cache_dir=cache).run("pipe_sink")
        # (b) a bound parameter change re-runs every stage.
        Engine(cache_dir=cache).run("pipe_sink", base=3.0)
        assert CALLS == {"source": 2, "scale": 2, "sink": 2}

    def test_stage_override_invalidates_dependents(
        self, pipeline_experiments, tmp_path
    ):
        cache = str(tmp_path)
        Engine(cache_dir=cache).run("pipe_sink")
        Engine(cache_dir=cache).run(
            "pipe_sink", stage_params={"pipe_source": {"n": 2}}
        )
        assert CALLS == {"source": 2, "scale": 2, "sink": 2}

    def test_content_equal_upstream_change_keeps_downstream_cached(
        self, pipeline_experiments, tmp_path
    ):
        cache = str(tmp_path)
        Engine(cache_dir=cache).run("pipe_sink")
        # `unused` changes the source's cache key but not its records: the
        # chained keys hash upstream *content*, so downstream still hits.
        engine = Engine(cache_dir=cache)
        engine.run("pipe_sink", stage_params={"pipe_source": {"unused": 9.0}})
        assert CALLS["source"] == 2
        assert CALLS["scale"] == 1
        assert CALLS["sink"] == 1

    def test_sweep_shares_upstream_across_points_without_cache(
        self, pipeline_experiments
    ):
        spec = SweepSpec.grid(offset=[0.0, 1.0, 2.0])
        result = Engine().sweep("pipe_sink", spec, base_params={"base": 2.0})
        assert result.column("total") == [24.0, 25.0, 26.0]
        # One upstream chain, three downstream points: the in-run memo
        # deduplicates the shared stages even with no cache directory.
        assert CALLS == {"source": 1, "scale": 1, "sink": 3}

    def test_swept_bound_param_fans_upstream_out(self, pipeline_experiments):
        spec = SweepSpec.grid(base=[1.0, 2.0])
        result = Engine().sweep("pipe_sink", spec)
        assert result.column("total") == [12.0, 24.0]
        assert CALLS == {"source": 2, "scale": 2, "sink": 2}

    def test_thread_executor_matches_serial(self, pipeline_experiments):
        spec = SweepSpec.grid(base=[1.0, 2.0], offset=[0.0, 1.0])
        serial = Engine().sweep("pipe_sink", spec)
        threaded = Engine(executor="thread", max_workers=4).sweep("pipe_sink", spec)
        assert threaded == serial
        assert threaded.content_hash == serial.content_hash

    def test_upstream_failure_fails_only_dependent_points(
        self, pipeline_experiments
    ):
        spec = SweepSpec.grid(base=[1.0, -1.0])
        with pytest.raises(SweepError) as excinfo:
            Engine().sweep("pipe_sink", spec)
        error = excinfo.value
        assert len(error.failures) == 1
        assert error.failures[0].point == {"base": -1.0}
        assert error.failures[0].error.startswith("upstream:")
        assert error.partial.column("total") == [12.0]

    def test_cached_composite_sweep_replays_bit_identical(
        self, pipeline_experiments, tmp_path
    ):
        spec = SweepSpec.grid(base=[1.0, 2.0])
        first = Engine(cache_dir=str(tmp_path)).sweep("pipe_sink", spec)
        second = Engine(cache_dir=str(tmp_path)).sweep("pipe_sink", spec)
        assert CALLS["sink"] == 2  # second sweep fully cached
        assert second.content_hash == first.content_hash


class TestStudyRegistry:
    @pytest.fixture
    def registered_study(self, pipeline_experiments):
        register_study(
            "pipe_study",
            target="pipe_sink",
            description="synthetic three-stage pipeline",
            params={"pipe_source": {"n": 4}},
            sweep=SweepSpec.grid(base=[1.0, 2.0]),
            tags=("test",),
            replace=True,
        )
        yield "pipe_study"
        unregister_study("pipe_study")

    def test_register_get_list(self, registered_study):
        study = get_study("pipe_study")
        assert study.target == "pipe_sink"
        assert study.resolve().stage_names == [
            "pipe_source",
            "pipe_scale",
            "pipe_sink",
        ]
        assert "pipe_study" in [s.name for s in list_studies(tag="test")]

    def test_duplicate_rejected(self, registered_study):
        with pytest.raises(DuplicateStudyError):
            register_study("pipe_study", target="pipe_sink")

    def test_unknown_study_suggests_names(self, registered_study):
        with pytest.raises(StudyNotFoundError, match="did you mean: pipe_study"):
            get_study("pipe_studyy")

    def test_run_study_applies_stage_params(self, registered_study, tmp_path):
        result = Engine(cache_dir=str(tmp_path)).run_study("pipe_study")
        # n=4 from the study override: base=1 -> (1+2+3+4)*2 = 20, base=2 -> 40
        assert result.column("total") == [20.0, 40.0]
        assert result.meta["study"]["name"] == "pipe_study"
        assert result.meta["study"]["stages"] == [
            "pipe_source",
            "pipe_scale",
            "pipe_sink",
        ]

    def test_run_study_runtime_overrides_merge(self, registered_study):
        result = Engine().run_study(
            "pipe_study",
            stage_params={"pipe_sink": {"offset": 1.0}},
            sweep=SweepSpec.grid(base=[1.0]),
        )
        assert result.column("total") == [21.0]

    def test_run_study_without_sweep_runs_once(self, pipeline_experiments):
        study = Study(name="adhoc", target="pipe_sink")
        result = Engine().run_study(study)
        assert result.to_records() == [{"total": 12.0}]

    def test_shard_without_sweep_rejected(self, pipeline_experiments):
        from repro.dist import ShardPlan

        study = Study(name="adhoc", target="pipe_sink")
        with pytest.raises(ValueError, match="declares no sweep"):
            Engine().run_study(study, shard=ShardPlan(2, 0))

    def test_unknown_stage_override_rejected(self, registered_study):
        with pytest.raises(PipelineError, match="outside the pipeline"):
            Engine().run_study("pipe_study", stage_params={"fig9": {"x": 1}})

    def test_typoed_stage_param_fails_fast(self, registered_study):
        # Validated at the call site by resolve_pipeline, not as N sweep-point
        # failures deep inside the run.
        with pytest.raises(ParameterError, match="gian"):
            Engine().run_study(
                "pipe_study", stage_params={"pipe_scale": {"gian": 3.0}}
            )


class TestRegisteredRealStudies:
    """The studies shipped in repro.analysis.studies resolve and run."""

    def test_all_registered_studies_resolve(self):
        studies = list_studies()
        assert {"variability_to_delay", "growth_to_wafer", "composite_tradeoff_fom"} <= {
            s.name for s in studies
        }
        for study in studies:
            pipeline = study.resolve()
            assert pipeline.stage_names[-1] == study.target
            assert len(pipeline) >= 2

    def test_growth_to_wafer_end_to_end(self, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        result = engine.run_study(
            "growth_to_wafer", sweep=SweepSpec.grid(seed=[0, 1], catalyst=["Co"])
        )
        assert len(result) == 2
        assert set(result.columns) >= {"seed", "uniformity", "temperature_c"}
        # The upstream growth_window ran once for the shared catalyst.
        assert engine.cache_misses == 3

    def test_composite_fom_consumes_two_upstreams(self):
        result = Engine().run("composite_fom", fractions=(0.0, 0.3))
        records = result.to_records()
        assert [row["cnt_volume_fraction"] for row in records] == [0.0, 0.3]
        assert records[0]["lifetime_gain"] == pytest.approx(1.0)
        assert records[1]["lifetime_gain"] > 1.0
        assert set(result.meta["upstream"]) == {"tradeoff_result", "lifetime_result"}
