"""Tests for incremental sweep execution: iter_sweep, on_result, SweepError."""

import pytest

from repro.api import (
    Engine,
    ParamSpec,
    SweepError,
    SweepSpec,
    register_experiment,
    unregister_experiment,
)

CALLS = {"count": 0}


@pytest.fixture
def counted_experiment():
    """A tiny registered experiment that counts its executions."""
    CALLS["count"] = 0

    @register_experiment(
        "api_test_stream_counted",
        params=(ParamSpec("x", "float", 1.0), ParamSpec("n", "int", 2)),
        replace=True,
    )
    def counted(x: float, n: int):
        CALLS["count"] += 1
        return [{"x": x, "i": i, "y": x * i} for i in range(n)]

    yield "api_test_stream_counted"
    unregister_experiment("api_test_stream_counted")


@pytest.fixture
def flaky_experiment():
    """A registered experiment that raises for x == 2."""

    @register_experiment(
        "api_test_stream_flaky",
        params=(ParamSpec("x", "float", 1.0),),
        replace=True,
    )
    def flaky(x: float):
        if x == 2.0:
            raise RuntimeError("boom at x=2")
        return [{"x": x, "y": x * 10}]

    yield "api_test_stream_flaky"
    unregister_experiment("api_test_stream_flaky")


class TestIterSweep:
    def test_yields_every_point_exactly_once(self, counted_experiment):
        spec = SweepSpec.grid(x=[1.0, 2.0, 3.0])
        points = list(Engine().iter_sweep(counted_experiment, spec))
        assert sorted(point.index for point in points) == [0, 1, 2]
        assert all(point.ok for point in points)
        assert [p.point for p in sorted(points, key=lambda p: p.index)] == [
            {"x": 1.0}, {"x": 2.0}, {"x": 3.0}
        ]

    def test_point_results_match_run(self, counted_experiment):
        engine = Engine()
        (point,) = engine.iter_sweep(counted_experiment, SweepSpec.grid(x=[5.0]))
        assert point.result == engine.run(counted_experiment, x=5.0)
        assert point.params == {"x": 5.0, "n": 2}

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_executors_yield_same_points(self, counted_experiment, executor):
        spec = SweepSpec.grid(x=[1.0, 2.0, 3.0], n=[1, 3])
        serial = {
            p.index: p.result.to_records()
            for p in Engine().iter_sweep(counted_experiment, spec)
        }
        other = {
            p.index: p.result.to_records()
            for p in Engine(executor=executor, max_workers=3, chunk_size=1).iter_sweep(
                counted_experiment, spec
            )
        }
        assert serial == other

    def test_process_executor_yields_same_points(self):
        # A real registered experiment: process workers rebuild the registry.
        # ResultSet equality is used because the records contain NaN cells.
        spec = SweepSpec.grid(length_um=[1.0, 5.0, 10.0])
        serial = {
            p.index: p.result for p in Engine().iter_sweep("table_density", spec)
        }
        pooled = {
            p.index: p.result
            for p in Engine(executor="process", max_workers=2, chunk_size=1).iter_sweep(
                "table_density", spec
            )
        }
        assert sorted(serial) == sorted(pooled)
        assert all(serial[index] == pooled[index] for index in serial)

    def test_cache_hits_streamed_first(self, counted_experiment, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        engine.sweep(counted_experiment, SweepSpec.grid(x=[2.0]))
        points = list(
            engine.iter_sweep(counted_experiment, SweepSpec.grid(x=[1.0, 2.0, 3.0]))
        )
        # x=2.0 (index 1) was cached and must arrive before the computed points.
        assert points[0].index == 1
        assert points[0].cache_hit
        assert not points[1].cache_hit and not points[2].cache_hit
        assert CALLS["count"] == 3  # 1 from the first sweep + 2 new

    def test_failed_point_is_yielded_not_raised(self, flaky_experiment):
        points = list(
            Engine().iter_sweep(flaky_experiment, SweepSpec.grid(x=[1.0, 2.0, 3.0]))
        )
        by_index = {point.index: point for point in points}
        assert len(by_index) == 3
        assert by_index[1].error is not None
        assert "boom at x=2" in by_index[1].error
        assert by_index[1].result is None and not by_index[1].ok
        assert by_index[0].ok and by_index[2].ok

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_partial_failure_all_executors(self, flaky_experiment, executor):
        engine = Engine(executor=executor, max_workers=2, chunk_size=1)
        points = list(
            engine.iter_sweep(flaky_experiment, SweepSpec.grid(x=[1.0, 2.0, 3.0]))
        )
        failed = [point for point in points if not point.ok]
        assert len(failed) == 1 and failed[0].index == 1
        assert "boom at x=2" in failed[0].error
        assert sorted(p.point["x"] for p in points if p.ok) == [1.0, 3.0]

    def test_unknown_axis_raises_at_call_site(self, counted_experiment):
        # Parameter errors must not be deferred to the first next(): the
        # stream is only handed back once every point resolved.
        with pytest.raises(Exception, match="bogus"):
            Engine().iter_sweep(counted_experiment, SweepSpec.grid(bogus=[1]))
        assert CALLS["count"] == 0

    def test_abandoning_the_stream_cancels_queued_points(self):
        import time as time_module

        calls = {"count": 0}

        @register_experiment(
            "api_test_stream_abandon", params=(ParamSpec("x", "float", 1.0),), replace=True
        )
        def slowish(x: float):
            calls["count"] += 1
            time_module.sleep(0.05)
            return [{"x": x}]

        try:
            engine = Engine(executor="thread", max_workers=1, chunk_size=1)
            spec = SweepSpec.grid(x=[float(i) for i in range(6)])
            iterator = engine.iter_sweep("api_test_stream_abandon", spec)
            next(iterator)
            iterator.close()  # consumer walks away mid-sweep
            # The single worker had at most one more chunk in flight when the
            # generator closed; the queued remainder must have been cancelled
            # rather than executed to completion.
            assert calls["count"] < 6
        finally:
            unregister_experiment("api_test_stream_abandon")


class TestSweepOnResult:
    def test_on_result_called_once_per_point(self, counted_experiment):
        seen = []
        result = Engine().sweep(
            counted_experiment,
            SweepSpec.grid(x=[1.0, 2.0, 3.0]),
            on_result=seen.append,
        )
        assert sorted(point.index for point in seen) == [0, 1, 2]
        assert all(point.ok for point in seen)
        assert len(result) == 6  # 3 points x 2 records

    def test_on_result_sees_cache_hits(self, counted_experiment, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        engine.sweep(counted_experiment, SweepSpec.grid(x=[1.0, 2.0]))
        seen = []
        engine.sweep(
            counted_experiment, SweepSpec.grid(x=[1.0, 2.0]), on_result=seen.append
        )
        assert [point.cache_hit for point in seen] == [True, True]

    def test_streaming_sweep_matches_plain_sweep(self, counted_experiment):
        spec = SweepSpec.grid(x=[1.0, 2.0], n=[1, 2])
        plain = Engine().sweep(counted_experiment, spec)
        streamed = Engine(executor="thread", max_workers=2, chunk_size=1).sweep(
            counted_experiment, spec, on_result=lambda point: None
        )
        assert streamed == plain


class TestSweepError:
    def test_partial_keeps_completed_points(self, flaky_experiment):
        with pytest.raises(SweepError) as excinfo:
            Engine().sweep(flaky_experiment, SweepSpec.grid(x=[1.0, 2.0, 3.0]))
        error = excinfo.value
        assert "1 of 3 sweep points failed" in str(error)
        assert len(error.failures) == 1
        assert error.failures[0].index == 1
        # The partial ResultSet holds the two completed points, in sweep order.
        assert error.partial.column("x") == [1.0, 3.0]
        assert error.partial.column("y") == [10.0, 30.0]

    def test_completed_points_cached_rerun_pays_failures_only(
        self, flaky_experiment, tmp_path
    ):
        engine = Engine(cache_dir=str(tmp_path))
        with pytest.raises(SweepError):
            engine.sweep(flaky_experiment, SweepSpec.grid(x=[1.0, 2.0, 3.0]))
        assert engine.cache_misses == 3
        # Second run: completed points come from the cache, only x=2.0 re-runs.
        engine.cache_hits = engine.cache_misses = 0
        with pytest.raises(SweepError):
            engine.sweep(flaky_experiment, SweepSpec.grid(x=[1.0, 2.0, 3.0]))
        assert engine.cache_hits == 2
        assert engine.cache_misses == 1

    def test_failure_not_raised_until_all_points_ran(self, flaky_experiment):
        seen = []
        with pytest.raises(SweepError):
            Engine().sweep(
                flaky_experiment,
                SweepSpec.grid(x=[2.0, 1.0, 3.0]),  # failure first in sweep order
                on_result=seen.append,
            )
        assert sorted(point.index for point in seen) == [0, 1, 2]
