"""The generated experiment catalog (docs/EXPERIMENTS.md) must not go stale."""

from pathlib import Path

from repro.api import list_experiments
from repro.api.catalog import catalog_markdown, check_catalog

DOCS_PATH = Path(__file__).resolve().parents[2] / "docs" / "EXPERIMENTS.md"


def test_checked_in_catalog_matches_registry():
    assert DOCS_PATH.exists(), "docs/EXPERIMENTS.md is missing"
    assert DOCS_PATH.read_text() == catalog_markdown(), (
        "docs/EXPERIMENTS.md is stale; regenerate with "
        "`python -m repro docs --write docs/EXPERIMENTS.md`"
    )
    assert check_catalog(str(DOCS_PATH))


def test_catalog_lists_every_registered_experiment():
    text = catalog_markdown()
    for experiment in list_experiments():
        assert f"## {experiment.name}" in text
        for spec in experiment.params:
            assert f"`{spec.name}`" in text


def test_catalog_marks_required_params():
    from repro.api import ParamSpec, register_experiment, unregister_experiment

    @register_experiment(
        "api_test_catalog",
        params=(ParamSpec("mandatory", "float", None, "no default"),),
        replace=True,
    )
    def catalogued(mandatory: float):
        return [{"x": mandatory}]

    try:
        text = catalog_markdown()
        assert "*required*" in text
    finally:
        unregister_experiment("api_test_catalog")


def test_check_catalog_detects_drift(tmp_path):
    stale = tmp_path / "EXPERIMENTS.md"
    stale.write_text("# outdated\n")
    assert not check_catalog(str(stale))
    assert not check_catalog(str(tmp_path / "missing.md"))
