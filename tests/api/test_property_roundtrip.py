"""Property-based round-trips: ResultSet serialisation and cache_key stability.

Two layers with one set of invariants:

* a seeded randomized battery that always runs (deterministic across
  machines -- no hypothesis required),
* a hypothesis battery (skipped when hypothesis is not installed) that
  explores the same invariants with shrinking.

Invariants: ``to_json``/``from_json`` is lossless for data, meta and content
hash; ``to_csv``/``from_csv`` is lossless for the numeric tables the
experiments produce; ``cache_key`` is deterministic, insertion-order
independent, and sensitive to every one of its inputs.
"""

import random
import string

import pytest

from repro.api import ResultSet
from repro.api.engine import cache_key

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - image always ships hypothesis
    HAVE_HYPOTHESIS = False

N_SEEDED_CASES = 20
SEED = 20260808


def _random_name(rng, max_size=8):
    return "".join(
        rng.choice(string.ascii_lowercase) for _ in range(rng.randint(1, max_size))
    )


def _random_value(rng, csv_safe=False):
    choices = ["int", "float", "word", "none"]
    if not csv_safe:
        choices += ["bool", "text"]
    kind = rng.choice(choices)
    if kind == "int":
        return rng.randint(-(10**9), 10**9)
    if kind == "float":
        return rng.uniform(-1e12, 1e12) * 10 ** rng.randint(-12, 12)
    if kind == "word":
        # Alphabetic only: cannot be mistaken for a number by the CSV coercion.
        return _random_name(rng)
    if kind == "bool":
        return rng.choice([True, False])
    if kind == "text":
        return "".join(
            rng.choice(string.printable) for _ in range(rng.randint(0, 12))
        )
    return None


def _random_table(rng, csv_safe=False):
    keys = []
    while len(keys) < rng.randint(1, 4):
        key = _random_name(rng)
        if key not in keys:
            keys.append(key)
    return [
        {key: _random_value(rng, csv_safe=csv_safe) for key in keys}
        for _ in range(rng.randint(1, 6))
    ]


def _random_params(rng):
    return {
        _random_name(rng): _random_value(rng, csv_safe=True)
        for _ in range(rng.randint(1, 5))
    }


def _seeded(generator):
    rng = random.Random(SEED)
    return [generator(rng) for _ in range(N_SEEDED_CASES)]


def assert_json_roundtrip(rows):
    original = ResultSet.from_records(
        rows, meta={"experiment": "prop_exp", "version": "1", "params": {"x": 1}}
    )
    restored = ResultSet.from_json(original.to_json())
    assert restored.to_records() == original.to_records()
    assert restored.meta == original.meta
    assert restored.content_hash == original.content_hash


def assert_csv_roundtrip(rows):
    original = ResultSet.from_records(rows)
    restored = ResultSet.from_csv(original.to_csv())
    assert restored.to_records() == original.to_records()
    assert restored.content_hash == original.content_hash


def assert_cache_key_properties(params):
    key = cache_key("prop_exp", "1", params)
    # Deterministic, and independent of dict insertion order.
    assert cache_key("prop_exp", "1", params) == key
    shuffled = dict(reversed(list(params.items())))
    assert cache_key("prop_exp", "1", shuffled) == key
    assert len(key) == 64 and set(key) <= set("0123456789abcdef")
    # Sensitive to name, version, every param value, and upstream hashes.
    assert cache_key("prop_exp2", "1", params) != key
    assert cache_key("prop_exp", "2", params) != key
    for name in params:
        mutated = dict(params)
        mutated[name] = "mutated-sentinel"
        if mutated[name] != params[name]:
            assert cache_key("prop_exp", "1", mutated) != key
    # Empty upstream keeps historical keys valid; a real one chains them.
    assert cache_key("prop_exp", "1", params, upstream={}) == key
    assert cache_key("prop_exp", "1", params, upstream={"dep": "a" * 64}) != key


class TestSeededRoundTrip:
    """Deterministic battery -- runs everywhere, hypothesis or not."""

    @pytest.mark.parametrize("rows", _seeded(_random_table))
    def test_json_roundtrip(self, rows):
        assert_json_roundtrip(rows)

    @pytest.mark.parametrize(
        "rows", _seeded(lambda rng: _random_table(rng, csv_safe=True))
    )
    def test_csv_roundtrip(self, rows):
        assert_csv_roundtrip(rows)

    @pytest.mark.parametrize("params", _seeded(_random_params))
    def test_cache_key_stability(self, params):
        assert_cache_key_properties(params)


if HAVE_HYPOTHESIS:
    names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
    json_values = st.one_of(
        st.integers(min_value=-(10**15), max_value=10**15),
        st.floats(allow_nan=False, allow_infinity=False),
        st.booleans(),
        st.text(max_size=16),
        st.none(),
    )
    csv_values = st.one_of(
        st.integers(min_value=-(10**15), max_value=10**15),
        st.floats(allow_nan=False, allow_infinity=False),
        names,  # alphabetic: survives the CSV numeric coercion unchanged
        st.none(),
    )

    def tables(values):
        return st.lists(names, min_size=1, max_size=4, unique=True).flatmap(
            lambda keys: st.lists(
                st.fixed_dictionaries({key: values for key in keys}),
                min_size=1,
                max_size=6,
            )
        )

    class TestHypothesisRoundTrip:
        """Shrinking exploration of the same invariants."""

        @settings(max_examples=30, deadline=None)
        @given(rows=tables(json_values))
        def test_json_roundtrip(self, rows):
            assert_json_roundtrip(rows)

        @settings(max_examples=30, deadline=None)
        @given(rows=tables(csv_values))
        def test_csv_roundtrip(self, rows):
            assert_csv_roundtrip(rows)

        @settings(max_examples=30, deadline=None)
        @given(params=st.dictionaries(names, csv_values, min_size=1, max_size=5))
        def test_cache_key_stability(self, params):
            assert_cache_key_properties(params)
