"""Tests for the declarative SweepSpec (grid / zip expansion and refinement)."""

import pytest

from repro.api import SweepSpec


class TestGrid:
    def test_cartesian_product_order(self):
        spec = SweepSpec.grid(a=[1, 2], b=["x", "y"])
        assert spec.points() == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]
        assert len(spec) == 4
        assert spec.axis_names == ["a", "b"]

    def test_single_axis(self):
        assert SweepSpec.grid(a=[1, 2, 3]).points() == [{"a": 1}, {"a": 2}, {"a": 3}]

    def test_iteration(self):
        assert list(SweepSpec.grid(a=[1])) == [{"a": 1}]


class TestZip:
    def test_lockstep_pairing(self):
        spec = SweepSpec.zip(a=[1, 2], b=[10, 20])
        assert spec.points() == [{"a": 1, "b": 10}, {"a": 2, "b": 20}]
        assert len(spec) == 2

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            SweepSpec.zip(a=[1, 2], b=[10])


class TestValidation:
    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="at least one axis"):
            SweepSpec.grid()

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="is empty"):
            SweepSpec.grid(a=[])

    def test_scalar_axis_rejected(self):
        with pytest.raises(TypeError, match="iterable"):
            SweepSpec.grid(a=3)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep mode"):
            SweepSpec(mode="random", axes={"a": [1]})


class TestRefine:
    def test_linear_midpoints(self):
        spec = SweepSpec.grid(a=[0.0, 2.0, 4.0]).refine("a", 2)
        assert spec.axes["a"] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_higher_factor(self):
        spec = SweepSpec.grid(a=[0.0, 3.0]).refine("a", 3)
        assert spec.axes["a"] == pytest.approx([0.0, 1.0, 2.0, 3.0])

    def test_log_midpoints(self):
        spec = SweepSpec.grid(a=[1.0, 100.0]).refine("a", 2, scale="log")
        assert spec.axes["a"] == pytest.approx([1.0, 10.0, 100.0])

    def test_log_requires_positive_values(self):
        with pytest.raises(ValueError, match="positive"):
            SweepSpec.grid(a=[0.0, 1.0]).refine("a", 2, scale="log")

    def test_other_axes_untouched(self):
        spec = SweepSpec.grid(a=[1.0, 2.0], b=[5, 6]).refine("a", 2)
        assert spec.axes["b"] == [5, 6]
        assert len(spec) == 6

    def test_refine_zip_rejected(self):
        with pytest.raises(ValueError, match="zip"):
            SweepSpec.zip(a=[1, 2], b=[3, 4]).refine("a")

    def test_unknown_axis_rejected(self):
        with pytest.raises(KeyError, match="no axis"):
            SweepSpec.grid(a=[1, 2]).refine("b")

    def test_bad_factor_and_scale(self):
        spec = SweepSpec.grid(a=[1.0, 2.0])
        with pytest.raises(ValueError, match="factor"):
            spec.refine("a", 1)
        with pytest.raises(ValueError, match="scale"):
            spec.refine("a", 2, scale="cubic")


class TestFromMeta:
    """The hardened descriptor parser: untrusted payloads fail naming the field."""

    def test_round_trip(self):
        spec = SweepSpec.zip(a=[1, 2], b=[3, 4])
        assert SweepSpec.from_meta(spec.to_meta()) == spec

    def test_mode_defaults_to_grid(self):
        spec = SweepSpec.from_meta({"axes": {"a": [1, 2]}})
        assert spec.mode == "grid"

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="expected a mapping"):
            SweepSpec.from_meta(["a", 1])

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match=r"unknown fields \['axis'\]"):
            SweepSpec.from_meta({"axis": {"a": [1]}, "axes": {"a": [1]}})

    def test_missing_axes_rejected(self):
        with pytest.raises(ValueError, match="missing the 'axes' field"):
            SweepSpec.from_meta({"mode": "grid"})

    def test_bad_mode_rejected(self):
        with pytest.raises(
            ValueError, match="'mode' must be 'grid', 'zip' or 'points'"
        ):
            SweepSpec.from_meta({"mode": "cartesian", "axes": {"a": [1]}})

    def test_non_mapping_axes_rejected(self):
        with pytest.raises(ValueError, match="'axes' must be a mapping"):
            SweepSpec.from_meta({"axes": [["a", [1]]]})

    def test_string_axis_values_rejected(self):
        with pytest.raises(ValueError, match="axis 'a' must be a list"):
            SweepSpec.from_meta({"axes": {"a": "1,2"}})

    def test_scalar_axis_values_rejected(self):
        with pytest.raises(ValueError, match="axis 'a' must be a list"):
            SweepSpec.from_meta({"axes": {"a": 7}})

    def test_non_integer_n_points_rejected(self):
        meta = {"axes": {"a": [1, 2]}, "n_points": "2"}
        with pytest.raises(ValueError, match="'n_points' must be an integer"):
            SweepSpec.from_meta(meta)
        meta["n_points"] = True
        with pytest.raises(ValueError, match="'n_points' must be an integer"):
            SweepSpec.from_meta(meta)

    def test_inconsistent_n_points_rejected(self):
        with pytest.raises(ValueError, match="'n_points' is 3 but"):
            SweepSpec.from_meta({"axes": {"a": [1, 2]}, "n_points": 3})


class TestPointsMode:
    def test_explicit_points_round_trip(self):
        points = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        spec = SweepSpec.from_points(points)
        assert spec.mode == "points"
        assert spec.points() == points
        assert len(spec) == 2
        assert spec.axis_names == ["a", "b"]

    def test_points_are_copied(self):
        points = [{"a": 1}]
        spec = SweepSpec.from_points(points)
        points[0]["a"] = 99
        assert spec.points() == [{"a": 1}]
        spec.points()[0]["a"] = 99
        assert spec.points() == [{"a": 1}]

    def test_to_meta_from_meta_round_trip(self):
        spec = SweepSpec.from_points([{"a": 1.0, "b": (2.0,)}, {"a": 3.0, "b": (4.0,)}])
        meta = spec.to_meta()
        assert meta["mode"] == "points"
        assert meta["n_points"] == 2
        again = SweepSpec.from_meta(meta)
        assert again == spec
        assert again.points() == spec.points()

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError, match="at least one point"):
            SweepSpec.from_points([])

    def test_non_mapping_point_rejected(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            SweepSpec.from_points([("a", 1)])

    def test_inconsistent_keys_rejected(self):
        with pytest.raises(ValueError, match="share one key set"):
            SweepSpec.from_points([{"a": 1}, {"b": 2}])

    def test_points_mode_requires_points(self):
        with pytest.raises(ValueError, match=r"needs points=\["):
            SweepSpec(mode="points")

    def test_points_mode_rejects_axes(self):
        with pytest.raises(ValueError, match="not axes"):
            SweepSpec(mode="points", axes={"a": [1]}, points=[{"a": 1}])

    def test_grid_mode_rejects_points(self):
        with pytest.raises(ValueError, match="requires mode='points'"):
            SweepSpec(axes={"a": [1]}, points=[{"a": 1}])

    def test_points_meta_rejects_axes_field(self):
        with pytest.raises(ValueError, match="carries 'points', not 'axes'"):
            SweepSpec.from_meta(
                {"mode": "points", "axes": {"a": [1]}, "points": [{"a": 1}]}
            )

    def test_refine_rejected(self):
        spec = SweepSpec.from_points([{"a": 1}])
        with pytest.raises(ValueError, match="cannot refine a points sweep"):
            spec.refine("a", 3)
