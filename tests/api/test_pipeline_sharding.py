"""SweepSpec.refine + ShardPlan under pipelines: refined downstream sweeps
keep their points on their shard and reuse upstream-stage cache entries."""

import os

import pytest

from repro.api import (
    Consumes,
    Engine,
    ParamSpec,
    SweepSpec,
    register_experiment,
    unregister_experiment,
)
from repro.dist import ShardPlan, merge_results, shard_of

CALLS = {"upstream": 0, "downstream": 0}


@pytest.fixture
def sharded_pipeline():
    for key in CALLS:
        CALLS[key] = 0

    @register_experiment(
        "shardpipe_up",
        params=(ParamSpec("gain", "float", 2.0),),
        replace=True,
    )
    def upstream(gain):
        CALLS["upstream"] += 1
        return [{"gain": gain}]

    @register_experiment(
        "shardpipe_down",
        params=(ParamSpec("x", "float", 1.0), ParamSpec("gain", "float", 2.0)),
        consumes=(Consumes("shardpipe_up", inject="up", bind={"gain": "gain"}),),
        replace=True,
    )
    def downstream(up, x, gain):
        CALLS["downstream"] += 1
        return [{"x": x, "y": x * up.column("gain")[0]}]

    yield
    unregister_experiment("shardpipe_up")
    unregister_experiment("shardpipe_down")


def test_refined_points_stay_on_their_shard():
    """Refinement only *adds* points: every original point keeps its shard."""
    spec = SweepSpec.grid(x=[1.0, 4.0, 16.0])
    refined = spec.refine("x", factor=2)
    original_points = {tuple(p.items()) for p in spec.points()}
    assert original_points <= {tuple(p.items()) for p in refined.points()}
    for point in spec.points():
        assert shard_of(point, 2) == shard_of(point, 2)  # deterministic
        # The identical dict read back from the refined spec hashes the same.
        match = next(p for p in refined.points() if p == point)
        assert shard_of(match, 2) == shard_of(point, 2)


def test_refined_sharded_pipeline_reuses_caches(sharded_pipeline, tmp_path):
    cache = str(tmp_path)
    spec = SweepSpec.grid(x=[1.0, 2.0, 3.0])

    for plan in ShardPlan.partition(2):
        Engine(cache_dir=cache).sweep("shardpipe_down", spec, shard=plan)
    downstream_after_coarse = CALLS["downstream"]
    assert downstream_after_coarse == 3
    # One shared upstream invocation, computed by the first shard engine
    # and served from cache to the second.
    assert CALLS["upstream"] == 1

    refined = spec.refine("x", factor=2)  # x = 1, 1.5, 2, 2.5, 3
    parts = []
    for plan in ShardPlan.partition(2):
        engine = Engine(cache_dir=cache)
        parts.append(engine.sweep("shardpipe_down", refined, shard=plan))
    # Only the two *new* midpoints executed; the coarse points -- still on
    # their original shards -- replayed from cache, as did the upstream.
    assert CALLS["downstream"] == downstream_after_coarse + 2
    assert CALLS["upstream"] == 1

    merged = merge_results(parts)
    serial = Engine(cache_dir=cache).sweep("shardpipe_down", refined)
    assert merged.content_hash == serial.content_hash
    assert merged == serial


def test_upstream_entries_are_shared_between_shards(sharded_pipeline, tmp_path):
    """Both shards key the upstream stage identically (same chained entry)."""
    cache = str(tmp_path)
    spec = SweepSpec.grid(x=[1.0, 2.0, 3.0, 4.0])
    for plan in ShardPlan.partition(2):
        Engine(cache_dir=cache).sweep("shardpipe_down", spec, shard=plan)
    upstream_entries = [
        name for name in os.listdir(cache) if name.startswith("shardpipe_up-")
    ]
    assert len(upstream_entries) == 1
    assert CALLS["upstream"] == 1


def test_sharded_composite_sweep_with_swept_bound_param(sharded_pipeline, tmp_path):
    """Sweeping a bound param fans the upstream out; shards still merge clean."""
    cache = str(tmp_path)
    spec = SweepSpec.grid(x=[1.0, 2.0], gain=[2.0, 3.0])
    parts = [
        Engine(cache_dir=cache).sweep("shardpipe_down", spec, shard=plan)
        for plan in ShardPlan.partition(3)
    ]
    merged = merge_results(parts)
    serial = Engine().sweep("shardpipe_down", spec)
    assert merged.content_hash == serial.content_hash
    # Two distinct gains -> exactly two upstream entries, shard-independent.
    upstream_entries = [
        name for name in os.listdir(cache) if name.startswith("shardpipe_up-")
    ]
    assert len(upstream_entries) == 2
