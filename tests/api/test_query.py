"""The query plane: predicates, metadata queries, exports, and the CLI."""

import json
import os
import time

import pytest

from repro.api import Engine, ParamSpec, ResultSet, register_experiment, unregister_experiment
from repro.api.cli import main
from repro.api.query import (
    Predicate,
    coerce_value,
    export_results,
    parse_predicate,
    query_entries,
)
from repro.dist import SharedStore, SqliteStore


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture
def query_experiment():
    @register_experiment(
        "query_exp",
        params=(ParamSpec("n_segments", "int", 10), ParamSpec("kind", "str", "Cu")),
        replace=True,
    )
    def query_exp(n_segments, kind):
        return [{"n_segments": n_segments, "kind": kind, "r": 3.0 * n_segments}]

    yield "query_exp"
    unregister_experiment("query_exp")


def _populated_store(tmp_path, query_experiment):
    store = SqliteStore(str(tmp_path / "catalog.db"))
    engine = Engine(store=store)
    for n in (10, 40, 80):
        engine.run(query_experiment, n_segments=n)
    return store


class TestPredicateParsing:
    def test_operators_and_coercion(self):
        assert parse_predicate("n_segments>50") == Predicate("n_segments", ">", 50)
        assert parse_predicate("x >= 1.5") == Predicate("x", ">=", 1.5)
        assert parse_predicate("kind==Cu") == Predicate("kind", "==", "Cu")
        assert parse_predicate("kind=Cu") == Predicate("kind", "==", "Cu")
        assert parse_predicate("flag!=true") == Predicate("flag", "!=", True)
        assert parse_predicate("x<=2") == Predicate("x", "<=", 2)
        assert parse_predicate("x<2") == Predicate("x", "<", 2)

    def test_quoted_values_stay_strings(self):
        assert parse_predicate("kind=='42'") == Predicate("kind", "==", "42")
        assert coerce_value('"true"') == "true"

    @pytest.mark.parametrize("bad", ["", "n_segments", ">50", "x>", "==3"])
    def test_malformed_predicates_raise(self, bad):
        with pytest.raises(ValueError, match="predicate"):
            parse_predicate(bad)

    def test_matching_is_type_tolerant(self):
        predicate = parse_predicate("n_segments>50")
        assert predicate.matches({"n_segments": 80}) is True
        assert predicate.matches({"n_segments": 10}) is False
        assert predicate.matches({"n_segments": "copper"}) is False  # not an error
        assert predicate.matches({"other": 80}) is False
        assert predicate.matches(None) is False


class TestQueryEntries:
    def test_where_filters_on_params(self, query_experiment, tmp_path):
        store = _populated_store(tmp_path, query_experiment)
        hits = query_entries(store, where=[parse_predicate("n_segments>50")])
        assert [entry.params["n_segments"] for entry in hits] == [80]
        both = query_entries(store, where=[parse_predicate("n_segments>20")])
        assert {entry.params["n_segments"] for entry in both} == {40, 80}

    def test_experiment_filter_and_sort(self, query_experiment, tmp_path):
        store = _populated_store(tmp_path, query_experiment)
        assert query_entries(store, experiment="nope") == []
        newest_first = query_entries(
            store, experiment="query_exp", sort="timestamp", descending=True
        )
        stamps = [entry.mtime for entry in newest_first]
        assert stamps == sorted(stamps, reverse=True)
        by_size = query_entries(store, sort="size")
        assert [e.size_bytes for e in by_size] == sorted(e.size_bytes for e in by_size)

    def test_limit_and_validation(self, query_experiment, tmp_path):
        store = _populated_store(tmp_path, query_experiment)
        assert len(query_entries(store, limit=2)) == 2
        assert query_entries(store, limit=0) == []
        with pytest.raises(ValueError, match="sort"):
            query_entries(store, sort="colour")
        with pytest.raises(ValueError, match="limit"):
            query_entries(store, limit=-1)

    def test_age_window(self, query_experiment, tmp_path):
        store = _populated_store(tmp_path, query_experiment)
        now = time.time()
        assert len(query_entries(store, newer_than=3600.0, now=now)) == 3
        assert query_entries(store, older_than=3600.0, now=now) == []
        assert len(query_entries(store, older_than=3600.0, now=now + 7200.0)) == 3

    def test_works_on_directory_stores_too(self, query_experiment, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine = Engine(cache_dir=cache_dir)
        for n in (10, 80):
            engine.run(query_experiment, n_segments=n)
        hits = query_entries(
            SharedStore(cache_dir), where=[parse_predicate("n_segments>50")]
        )
        assert [entry.params["n_segments"] for entry in hits] == [80]


class TestExportResults:
    def test_export_tags_records_with_provenance(self, query_experiment, tmp_path):
        store = _populated_store(tmp_path, query_experiment)
        entries = query_entries(store, where=[parse_predicate("n_segments>20")])
        merged = export_results(store, entries, query={"where": ["n_segments>20"]})
        assert merged.meta["executor"] == "query"
        assert merged.meta["n_entries"] == 2
        assert merged.meta["n_skipped"] == 0
        assert merged.meta["query"] == {"where": ["n_segments>20"]}
        records = merged.to_records()
        assert len(records) == 2
        assert {record["experiment"] for record in records} == {"query_exp"}
        assert all(record["entry_key"] for record in records)
        # Sweep-style parameter tagging: the record's own column survives,
        # the parameter lands under the usual prefix on collision.
        assert {record["param_n_segments"] for record in records} == {40, 80}

    def test_vanished_entries_are_counted_skipped(self, query_experiment, tmp_path):
        store = _populated_store(tmp_path, query_experiment)
        entries = query_entries(store)
        store.remove_entries([entries[0].path])
        merged = export_results(store, entries)
        assert merged.meta["n_entries"] == 2
        assert merged.meta["n_skipped"] == 1


class TestQueryCli:
    def test_query_table_and_filters(self, query_experiment, tmp_path, capsys):
        store = _populated_store(tmp_path, query_experiment)
        spec = "sqlite:///" + str(tmp_path / "catalog.db")
        code, out, _ = run_cli(
            capsys,
            "query",
            "--store",
            spec,
            "--where",
            "n_segments>50",
            "--sort",
            "timestamp",
            "--desc",
        )
        assert code == 0
        assert "query_exp" in out
        assert "n_segments=80" in out
        assert "n_segments=10" not in out

    def test_query_export_and_csv(self, query_experiment, tmp_path, capsys):
        _populated_store(tmp_path, query_experiment)
        spec = "sqlite:///" + str(tmp_path / "catalog.db")
        export = str(tmp_path / "out.json")
        csv_path = str(tmp_path / "out.csv")
        code, out, _ = run_cli(
            capsys, "query", "--store", spec, "--where", "n_segments>20",
            "--export", export, "--csv", csv_path,
        )
        assert code == 0
        merged = ResultSet.from_json(export)
        assert len(merged) == 2
        assert os.path.getsize(csv_path) > 0

    def test_query_rejects_bad_predicate(self, tmp_path, capsys):
        spec = "sqlite:///" + str(tmp_path / "catalog.db")
        code, _, err = run_cli(capsys, "query", "--store", spec, "--where", "oops")
        assert code == 2
        assert "predicate" in err

    def test_migrate_then_query_cli(self, query_experiment, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        engine = Engine(cache_dir=cache_dir)
        for n in (10, 80):
            engine.run(query_experiment, n_segments=n)
        spec = "sqlite:///" + str(tmp_path / "migrated.db")

        code, out, _ = run_cli(capsys, "migrate", cache_dir, spec)
        assert code == 0
        assert "migrated 2 entries" in out

        code, out, _ = run_cli(
            capsys, "query", "--store", spec, "--where", "n_segments>50"
        )
        assert code == 0
        assert "n_segments=80" in out

    def test_run_with_store_spec(self, query_experiment, tmp_path, capsys):
        spec = "sqlite:///" + str(tmp_path / "run.db")
        code, _, _ = run_cli(capsys, "run", query_experiment, "--store", spec)
        assert code == 0
        store = SqliteStore(str(tmp_path / "run.db"))
        assert len(store.entries()) == 1

    def test_store_and_cache_dir_are_exclusive(self, query_experiment, tmp_path, capsys):
        code, _, err = run_cli(
            capsys,
            "run",
            query_experiment,
            "--store",
            "sqlite:///" + str(tmp_path / "x.db"),
            "--cache-dir",
            str(tmp_path / "cache"),
        )
        assert code == 2
        assert "not both" in err
