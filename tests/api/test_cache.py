"""Tests for cache inspection and eviction (repro.api.cache)."""

import os
import time

import pytest

from repro.api import Engine, ParamSpec, register_experiment, unregister_experiment
from repro.api.cache import (
    cache_stats,
    clear_cache,
    parse_age,
    prune_cache,
    scan_cache,
)


@pytest.fixture
def populated_cache(tmp_path):
    """A cache directory holding entries of two experiments plus a foreign file."""

    @register_experiment(
        "api_test_cache_a", params=(ParamSpec("x", "float", 1.0),), replace=True
    )
    def experiment_a(x: float):
        return [{"x": x}]

    @register_experiment(
        "api_test_cache_b", params=(ParamSpec("x", "float", 1.0),), replace=True
    )
    def experiment_b(x: float):
        return [{"x": x * 2}]

    engine = Engine(cache_dir=str(tmp_path))
    engine.run("api_test_cache_a", x=1.0)
    engine.run("api_test_cache_a", x=2.0)
    engine.run("api_test_cache_b", x=1.0)
    (tmp_path / "exported_results.json").write_text("{}")

    yield str(tmp_path)
    unregister_experiment("api_test_cache_a")
    unregister_experiment("api_test_cache_b")


class TestScanAndStats:
    def test_scan_lists_entries_with_provenance(self, populated_cache):
        entries = scan_cache(populated_cache)
        assert len(entries) == 3
        assert {entry.experiment for entry in entries} == {
            "api_test_cache_a",
            "api_test_cache_b",
        }
        for entry in entries:
            assert entry.version == "1"
            assert "x" in entry.params
            assert entry.size_bytes > 0
            assert entry.age_seconds() >= 0.0

    def test_scan_ignores_foreign_files(self, populated_cache):
        assert all("exported" not in e.path for e in scan_cache(populated_cache))

    def test_scan_without_meta_skips_payload_parsing(self, populated_cache):
        entries = scan_cache(populated_cache, read_meta=False)
        assert len(entries) == 3
        assert all(e.version is None and e.params is None for e in entries)
        assert {e.experiment for e in entries} == {
            "api_test_cache_a",
            "api_test_cache_b",
        }

    def test_scan_missing_dir_is_empty(self, tmp_path):
        assert scan_cache(str(tmp_path / "nope")) == []
        assert scan_cache(None) == []

    def test_stats_aggregates(self, populated_cache):
        stats = cache_stats(populated_cache)
        assert stats.n_entries == 3
        assert stats.total_bytes == sum(e.size_bytes for e in stats.entries)
        assert stats.experiments() == ["api_test_cache_a", "api_test_cache_b"]
        groups = stats.by_experiment()
        assert len(groups["api_test_cache_a"]) == 2
        assert len(groups["api_test_cache_b"]) == 1

    def test_corrupt_entry_still_listed(self, populated_cache):
        entries = scan_cache(populated_cache)
        with open(entries[0].path, "w") as handle:
            handle.write("{not json")
        rescanned = scan_cache(populated_cache)
        assert len(rescanned) == 3
        corrupt = [e for e in rescanned if e.path == entries[0].path]
        assert corrupt[0].version is None and corrupt[0].params is None


class TestClear:
    def test_clear_removes_entries_only(self, populated_cache):
        assert clear_cache(populated_cache) == 3
        assert scan_cache(populated_cache) == []
        assert os.path.exists(os.path.join(populated_cache, "exported_results.json"))

    def test_clear_missing_dir(self, tmp_path):
        assert clear_cache(str(tmp_path / "nope")) == 0
        assert clear_cache(None) == 0


class TestPrune:
    def test_prune_by_experiment_only_removes_matching(self, populated_cache):
        removed = prune_cache(populated_cache, experiment="api_test_cache_a")
        assert len(removed) == 2
        remaining = scan_cache(populated_cache)
        assert [entry.experiment for entry in remaining] == ["api_test_cache_b"]

    def test_prune_by_version(self, populated_cache):
        assert prune_cache(populated_cache, version="99") == []

        # Re-register experiment_b at version 2 and run it: one new entry.
        @register_experiment(
            "api_test_cache_b",
            params=(ParamSpec("x", "float", 1.0),),
            version="2",
            replace=True,
        )
        def experiment_b_v2(x: float):
            return [{"x": x * 3}]

        Engine(cache_dir=populated_cache).run("api_test_cache_b", x=1.0)
        removed = prune_cache(populated_cache, experiment="api_test_cache_b", version="1")
        assert len(removed) == 1
        versions = {
            e.version for e in scan_cache(populated_cache) if e.experiment == "api_test_cache_b"
        }
        assert versions == {"2"}

    def test_prune_by_age(self, populated_cache):
        entries = scan_cache(populated_cache)
        old = entries[0]
        past = time.time() - 3600.0
        os.utime(old.path, (past, past))
        removed = prune_cache(populated_cache, older_than=1800.0)
        assert [entry.path for entry in removed] == [old.path]
        assert len(scan_cache(populated_cache)) == 2

    def test_prune_dry_run_removes_nothing(self, populated_cache):
        matched = prune_cache(
            populated_cache, experiment="api_test_cache_a", dry_run=True
        )
        assert len(matched) == 2
        assert len(scan_cache(populated_cache)) == 3

    def test_prune_criteria_combine_with_and(self, populated_cache):
        matched = prune_cache(
            populated_cache,
            experiment="api_test_cache_a",
            older_than=3600.0,
            dry_run=True,
        )
        assert matched == []  # entries are fresh, so the age filter excludes them

    def test_prune_requires_a_criterion(self, populated_cache):
        with pytest.raises(ValueError, match="at least one"):
            prune_cache(populated_cache)

    def test_pruned_entries_recompute_on_next_run(self, populated_cache):
        prune_cache(populated_cache, experiment="api_test_cache_a")
        engine = Engine(cache_dir=populated_cache)
        result = engine.run("api_test_cache_a", x=1.0)
        assert engine.cache_misses == 1 and "cache_hit" not in result.meta


class TestParseAge:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("45s", 45.0),
            ("30m", 1800.0),
            ("12h", 43200.0),
            ("7d", 604800.0),
            ("2w", 1209600.0),
            ("90", 90.0),
            ("1.5h", 5400.0),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_age(text) == expected

    @pytest.mark.parametrize("text", ["", "banana", "7y", "-3s", "nan", "inf", "nand"])
    def test_invalid(self, text):
        # NaN in particular must be rejected: age < NaN is always False, so a
        # NaN older_than would turn prune into an unintended full clear.
        with pytest.raises(ValueError):
            parse_age(text)

    def test_prune_rejects_non_finite_age(self, populated_cache):
        with pytest.raises(ValueError, match="finite"):
            prune_cache(populated_cache, older_than=float("nan"))
        assert len(scan_cache(populated_cache)) == 3
