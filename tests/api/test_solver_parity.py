"""Dense-vs-sparse MNA parity for every registered circuit-backed experiment.

Any experiment tagged ``"circuit"`` ultimately runs through the MNA solver,
so forcing its whole execution through the dense and the sparse backend must
produce ResultSets that agree to solver precision.  The parametrisation
discovers the circuit-backed experiments from the registry, so a future PR
that registers a new one is automatically pulled in (and reminded, via the
skip message, to provide fast parameters here).
"""

import math

import pytest

from repro.api import Engine
from repro.api.experiment import ensure_registered, list_experiments
from repro.circuit import solver_backend
from repro.circuit.compiled import SolverOptions, solver_options

PARITY_RTOL = 1.0e-9

# Small-but-representative parameters per circuit-backed experiment: the
# parity property does not depend on problem size, so keep the test fast.
FAST_PARAMS = {
    "fig12": {
        "diameters_nm": (10.0,),
        "lengths_um": (50.0,),
        "channel_counts": (2.0, 6.0),
        "n_segments": 8,
        "use_transient": True,
    },
    "crosstalk": {
        "n_segments": 5,
        "n_time_steps": 150,
        "resolution": 2,
        "line_length_um": 20.0,
    },
    "energy": {
        "lengths_um": (100.0, 500.0),
    },
    # Composite experiment: the engine resolves the upstream `variability`
    # stage (pure Monte Carlo, no MNA) and injects it; only the downstream
    # delay corners exercise the solver backends.
    "variability_delay": {
        "length_um": 5.0,
        "n_segments": 4,
        "n_time_steps": 120,
    },
}


def _circuit_experiment_names() -> list[str]:
    ensure_registered()
    return [experiment.name for experiment in list_experiments(tag="circuit")]


def _records_close(dense: list[dict], sparse: list[dict]) -> None:
    assert len(dense) == len(sparse)
    for row_dense, row_sparse in zip(dense, sparse):
        assert row_dense.keys() == row_sparse.keys()
        for key, value in row_dense.items():
            other = row_sparse[key]
            if isinstance(value, float) and isinstance(other, float):
                if math.isnan(value):
                    assert math.isnan(other)
                else:
                    assert other == pytest.approx(value, rel=PARITY_RTOL, abs=1e-15), key
            else:
                assert other == value, key


@pytest.mark.parametrize("name", _circuit_experiment_names())
def test_dense_and_sparse_backends_agree(name):
    if name not in FAST_PARAMS:
        pytest.fail(
            f"experiment {name!r} is tagged 'circuit' but has no fast parameters "
            "in FAST_PARAMS; add a small configuration so its dense/sparse "
            "parity is covered"
        )
    params = FAST_PARAMS[name]
    with solver_backend("dense"):
        dense = Engine().run(name, **params)
    with solver_backend("sparse"):
        sparse = Engine().run(name, **params)
    _records_close(dense.to_records(), sparse.to_records())


@pytest.mark.parametrize("name", _circuit_experiment_names())
def test_frozen_newton_agrees_with_dense(name):
    """Jacobian-freeze mode through whole experiments: same <=1e-9 bar.

    The freeze policy reuses LU factorizations across Newton iterations and
    steps (see ``tests/circuit/test_solver_reuse.py`` for the per-step
    mechanics); here every circuit-tagged registry experiment is run end to
    end with freezing on and must match the dense reference to the same
    tolerance as exact sparse Newton.
    """
    if name not in FAST_PARAMS:
        pytest.fail(
            f"experiment {name!r} is tagged 'circuit' but has no fast parameters "
            "in FAST_PARAMS; add a small configuration so its freeze-mode "
            "parity is covered"
        )
    params = FAST_PARAMS[name]
    with solver_backend("dense"):
        dense = Engine().run(name, **params)
    with solver_backend("sparse"), solver_options(SolverOptions(newton="freeze")):
        frozen = Engine().run(name, **params)
    _records_close(dense.to_records(), frozen.to_records())


def test_registry_has_circuit_backed_experiments():
    """The parametrisation above must never silently become empty."""
    assert set(_circuit_experiment_names()) >= {"fig12", "crosstalk", "energy"}
