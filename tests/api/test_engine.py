"""Tests for the execution engine: caching, fan-out and legacy parity."""

import json
import os
import warnings

import pytest

from repro.api import (
    Engine,
    ParamSpec,
    SweepSpec,
    cache_key,
    register_experiment,
    unregister_experiment,
)

CALLS = {"count": 0}


@pytest.fixture
def counted_experiment():
    """A tiny registered experiment that counts its executions."""
    CALLS["count"] = 0

    @register_experiment(
        "api_test_counted",
        params=(ParamSpec("x", "float", 1.0), ParamSpec("n", "int", 3)),
        replace=True,
    )
    def counted(x: float, n: int):
        CALLS["count"] += 1
        return [{"x": x, "i": i, "y": x * i} for i in range(n)]

    yield "api_test_counted"
    unregister_experiment("api_test_counted")


class TestRun:
    def test_run_returns_resultset_with_provenance(self, counted_experiment):
        result = Engine().run(counted_experiment, x=2.0)
        assert result.to_records() == [
            {"x": 2.0, "i": 0, "y": 0.0},
            {"x": 2.0, "i": 1, "y": 2.0},
            {"x": 2.0, "i": 2, "y": 4.0},
        ]
        assert result.meta["experiment"] == counted_experiment
        assert result.meta["params"] == {"x": 2.0, "n": 3}
        assert result.meta["wall_time_s"] >= 0.0

    def test_param_kwargs_win_over_mapping(self, counted_experiment):
        result = Engine().run(counted_experiment, params={"x": 1.0}, x=5.0, n=1)
        assert result.to_records() == [{"x": 5.0, "i": 0, "y": 0.0}]

    def test_invalid_executor_and_workers(self):
        with pytest.raises(ValueError):
            Engine(executor="gpu")
        with pytest.raises(ValueError):
            Engine(max_workers=0)
        with pytest.raises(ValueError):
            Engine(chunk_size=0)


class TestCache:
    def test_hit_miss_semantics(self, counted_experiment, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        first = engine.run(counted_experiment, x=2.0)
        assert (engine.cache_hits, engine.cache_misses) == (0, 1)
        assert CALLS["count"] == 1

        second = engine.run(counted_experiment, x=2.0)
        assert (engine.cache_hits, engine.cache_misses) == (1, 1)
        assert CALLS["count"] == 1  # served from disk, not recomputed
        assert second == first
        assert second.meta["cache_hit"] is True
        assert "cache_hit" not in first.meta

    def test_different_params_miss(self, counted_experiment, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        engine.run(counted_experiment, x=2.0)
        engine.run(counted_experiment, x=3.0)
        assert CALLS["count"] == 2

    def test_no_cache_dir_always_recomputes(self, counted_experiment):
        engine = Engine()
        engine.run(counted_experiment)
        engine.run(counted_experiment)
        assert CALLS["count"] == 2

    def test_use_cache_false_bypasses(self, counted_experiment, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        engine.run(counted_experiment)
        engine.run(counted_experiment, use_cache=False)
        assert CALLS["count"] == 2

    def test_corrupt_entry_recomputed(self, counted_experiment, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        engine.run(counted_experiment)
        for entry in os.listdir(tmp_path):
            (tmp_path / entry).write_text("{not json")
        result = engine.run(counted_experiment)
        assert CALLS["count"] == 2
        assert "cache_hit" not in result.meta

    def test_cache_key_depends_on_version_and_params(self):
        base = cache_key("fig9", "1", {"a": 1})
        assert cache_key("fig9", "2", {"a": 1}) != base
        assert cache_key("fig9", "1", {"a": 2}) != base
        assert cache_key("fig8a", "1", {"a": 1}) != base
        assert cache_key("fig9", "1", {"a": 1}) == base

    def test_clear_cache(self, counted_experiment, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        engine.run(counted_experiment)
        assert engine.clear_cache() == 1
        assert engine.clear_cache() == 0


class TestSweep:
    def test_sweep_tags_records_with_point(self, counted_experiment):
        result = Engine().sweep(
            counted_experiment,
            SweepSpec.grid(x=[1.0, 2.0]),
            base_params={"n": 2},
        )
        assert len(result) == 4
        # The swept axis collides with the record column "x", so the sweep
        # value is stored under the param_ prefix and output is preserved.
        assert result.columns[0] == "param_x"
        assert result.column("param_x") == [1.0, 1.0, 2.0, 2.0]
        assert result.meta["sweep"]["n_points"] == 2

    def test_sweep_non_colliding_axis_plain_column(self, counted_experiment):
        result = Engine().sweep(counted_experiment, SweepSpec.grid(n=[1, 2]))
        assert result.column("n") == [1, 2, 2]  # n=1 yields 1 record, n=2 yields 2
        assert result.meta["sweep"]["axes"] == {"n": [1, 2]}

    def test_parallel_executors_match_serial(self, counted_experiment):
        spec = SweepSpec.grid(x=[1.0, 2.0, 3.0], n=[2, 4])
        serial = Engine().sweep(counted_experiment, spec)
        threaded = Engine(executor="thread", max_workers=3).sweep(counted_experiment, spec)
        assert serial == threaded

    def test_process_pool_matches_serial(self):
        # Uses a real registered experiment: process workers must rebuild the
        # registry on their own via ensure_registered().
        spec = SweepSpec.grid(length_um=[1.0, 5.0, 10.0])
        serial = Engine().sweep("table_density", spec)
        pooled = Engine(executor="process", max_workers=2, chunk_size=1).sweep(
            "table_density", spec
        )
        assert serial == pooled

    def test_sweep_cache_pays_only_new_points(self, counted_experiment, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        spec = SweepSpec.grid(x=[1.0, 2.0])
        engine.sweep(counted_experiment, spec)
        assert CALLS["count"] == 2
        refined = SweepSpec.grid(x=[1.0, 1.5, 2.0])
        result = engine.sweep(counted_experiment, refined)
        assert CALLS["count"] == 3  # only x=1.5 executed
        assert result.column("param_x") == [1.0] * 3 + [1.5] * 3 + [2.0] * 3

    def test_sweep_accepts_adhoc_experiment_instance(self):
        # An Experiment that was never registered must behave like run()
        # for the in-process executors.
        from repro.api import Experiment

        adhoc = Experiment(
            name="api_test_adhoc",
            fn=lambda x: [{"y": x * 2}],
            params=(ParamSpec("x", "float", 1.0),),
        )
        spec = SweepSpec.grid(x=[1.0, 2.0])
        serial = Engine().sweep(adhoc, spec)
        assert serial.column("y") == [2.0, 4.0]
        threaded = Engine(executor="thread", max_workers=2, chunk_size=1).sweep(adhoc, spec)
        assert threaded == serial
        # The process executor cannot ship an unregistered instance to
        # workers; it must refuse loudly rather than resolve a same-named
        # registry entry.
        with pytest.raises(ValueError, match="registered"):
            Engine(executor="process", chunk_size=1).sweep(adhoc, spec)

    def test_clear_cache_leaves_foreign_json_alone(self, counted_experiment, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        engine.run(counted_experiment)
        exported = tmp_path / "my_results.json"
        exported.write_text("{}")
        assert engine.clear_cache() == 1
        assert exported.exists()

    def test_zip_sweep(self, counted_experiment):
        result = Engine().sweep(
            counted_experiment, SweepSpec.zip(x=[1.0, 2.0], n=[1, 2])
        )
        assert len(result) == 3  # 1 record + 2 records


class TestLegacyParity:
    def test_fig9_engine_matches_legacy_driver(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.analysis import run_fig9

            legacy = run_fig9(lengths_um=(0.1, 1.0, 10.0))
        engine = Engine().run("fig9", lengths_um=(0.1, 1.0, 10.0))
        assert engine.to_records() == legacy

    def test_fig12_engine_matches_legacy_driver(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.analysis import DelayRatioStudy, run_fig12

            legacy = run_fig12(
                DelayRatioStudy(
                    lengths_um=(100.0, 500.0),
                    channel_counts=(2.0, 10.0),
                    use_transient=False,
                )
            )
        engine = Engine().run(
            "fig12",
            lengths_um=(100.0, 500.0),
            channel_counts=(2.0, 10.0),
            use_transient=False,
        )
        assert engine.to_records() == legacy

    def test_legacy_drivers_warn(self):
        from repro.analysis import run_fig9

        with pytest.warns(DeprecationWarning, match="repro.api.Engine"):
            run_fig9(lengths_um=(1.0,))

    def test_cached_engine_result_round_trips_legacy_records(self, tmp_path):
        engine = Engine(cache_dir=str(tmp_path))
        first = engine.run("table_doping_resistance", lengths_um=(1.0, 10.0))
        second = engine.run("table_doping_resistance", lengths_um=(1.0, 10.0))
        assert second.meta["cache_hit"] is True
        assert second.to_records() == first.to_records()
