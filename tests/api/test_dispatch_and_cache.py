"""Engine dispatch granularity and cache-write crash safety."""

import os

import pytest

from repro.api import Engine, SweepSpec
from repro.api.engine import cache_key
from repro.api.experiment import Experiment, ParamSpec


def _experiment() -> Experiment:
    return Experiment(
        name="adhoc_dispatch",
        fn=lambda x=1.0: [{"x": x, "y": 2.0 * x}],
        params=(ParamSpec("x", "float", 1.0, "input"),),
        description="test experiment",
    )


class TestDispatchGranularity:
    def test_default_is_one_future_per_point(self):
        engine = Engine(executor="thread", max_workers=2)
        assert engine._chunks(list(range(64))) == [[i] for i in range(64)]

    def test_explicit_chunk_size_batches(self):
        engine = Engine(executor="thread", chunk_size=8)
        chunks = engine._chunks(list(range(20)))
        assert [len(chunk) for chunk in chunks] == [8, 8, 4]
        assert [i for chunk in chunks for i in chunk] == list(range(20))

    @pytest.mark.parametrize("chunk_size", [None, 3])
    def test_pooled_sweep_matches_serial(self, chunk_size):
        spec = SweepSpec.grid(x=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        serial = Engine().sweep(_experiment(), spec)
        pooled = Engine(executor="thread", max_workers=3, chunk_size=chunk_size).sweep(
            _experiment(), spec
        )
        assert pooled == serial

    def test_streamed_points_arrive_individually(self):
        """Every uncached point must surface as its own SweepPoint."""
        engine = Engine(executor="thread", max_workers=2)
        spec = SweepSpec.grid(x=[float(i) for i in range(12)])
        points = list(engine.iter_sweep(_experiment(), spec))
        assert sorted(p.index for p in points) == list(range(12))
        assert all(p.ok and not p.cache_hit for p in points)


class TestCacheCrashSafety:
    def _engine_and_paths(self, tmp_path):
        engine = Engine(cache_dir=str(tmp_path / "cache"))
        experiment = _experiment()
        result = engine.run(experiment, x=3.0)
        path = engine._cache_path(experiment, experiment.resolve_params({"x": 3.0}))
        return engine, experiment, result, path

    def test_crash_during_replace_leaves_no_debris(self, tmp_path, monkeypatch):
        engine, experiment, result, path = self._engine_and_paths(tmp_path)
        os.unlink(path)

        def exploding_replace(src, dst):
            raise OSError("simulated crash between write and publish")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            engine._cache_store(path, result)
        monkeypatch.undo()
        # No temp files and no (possibly partial) final entry survive.
        assert os.listdir(engine.cache_dir) == []
        assert engine._cache_load(path) is None

    def test_crash_never_corrupts_existing_entry(self, tmp_path, monkeypatch):
        """A crashed re-write must leave the previous good entry readable."""
        engine, experiment, result, path = self._engine_and_paths(tmp_path)
        good = engine._cache_load(path)
        assert good is not None

        monkeypatch.setattr(
            os, "replace", lambda src, dst: (_ for _ in ()).throw(OSError("crash"))
        )
        with pytest.raises(OSError):
            engine._cache_store(path, result)
        monkeypatch.undo()
        reloaded = engine._cache_load(path)
        assert reloaded is not None
        assert reloaded.to_records() == good.to_records()

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        engine, experiment, result, path = self._engine_and_paths(tmp_path)
        with open(path, "w") as handle:
            handle.write('{"truncated": ')
        assert engine._cache_load(path) is None
        fresh = engine.run(experiment, x=3.0)  # silently recomputes + rewrites
        assert fresh.to_records() == result.to_records()
        assert engine._cache_load(path) is not None

    def test_cache_key_stability(self):
        key = cache_key("exp", "1", {"b": 2, "a": 1})
        assert key == cache_key("exp", "1", {"a": 1, "b": 2})
