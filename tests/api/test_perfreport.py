"""Perf-trajectory report (repro.api.perfreport, `python -m repro perf-report`)."""

import json

import pytest

from repro.api.cli import main
from repro.api.perfreport import (
    find_regressions,
    load_trajectory,
    report_rows,
    report_text,
)


def _bench(pr, cases, mode="full", floors=None):
    return {
        "schema": 1,
        "pr": pr,
        "mode": mode,
        "speedup_floors": floors or {},
        "host": {"cpus": 4},
        "cases": cases,
    }


def _case(name, legacy_s, fast_s):
    return {
        "name": name,
        "legacy_s": legacy_s,
        "fast_s": fast_s,
        "speedup": round(legacy_s / fast_s, 2),
        "parity_max_rel": 0.0,
    }


@pytest.fixture
def trajectory(tmp_path):
    """Three points: PR 3 and PR 4 (full) plus an ad-hoc smoke point."""
    (tmp_path / "BENCH_3.json").write_text(
        json.dumps(
            _bench(3, [_case("transient", 1.0, 0.025), _case("mc", 0.5, 0.05)],
                   floors={"transient": 5.0})
        )
    )
    (tmp_path / "BENCH_4.json").write_text(
        json.dumps(
            _bench(4, [_case("transient", 1.0, 0.02), _case("mc", 0.5, 0.1)],
                   floors={"transient": 5.0})
        )
    )
    (tmp_path / "BENCH_smoke.json").write_text(
        json.dumps(_bench(None, [_case("transient", 0.1, 0.05)], mode="smoke"))
    )
    (tmp_path / "not_a_bench.json").write_text("{}")
    return str(tmp_path)


class TestLoadTrajectory:
    def test_orders_numeric_then_adhoc(self, trajectory):
        records = load_trajectory(trajectory)
        assert [record.label for record in records] == ["3", "4", "smoke"]
        assert [record.pr for record in records] == [3, 4, None]

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_trajectory(str(tmp_path / "nope")) == []


class TestRowsAndRegressions:
    def test_rows_carry_speedup_deltas(self, trajectory):
        rows = report_rows(load_trajectory(trajectory))
        transient = [row for row in rows if row["case"] == "transient"]
        assert [row["bench"] for row in transient] == ["3", "4", "smoke"]
        # 40x -> 50x between PR 3 and PR 4: +25%.
        assert transient[1]["vs_prev"] == "+25.0%"
        # The smoke point has no same-mode predecessor: no delta.
        assert transient[2]["vs_prev"] == ""

    def test_case_filter(self, trajectory):
        rows = report_rows(load_trajectory(trajectory), case="mc")
        assert {row["case"] for row in rows} == {"mc"}
        with pytest.raises(ValueError, match="no case"):
            report_rows(load_trajectory(trajectory), case="nope")

    def test_speedup_drop_is_flagged(self, trajectory):
        findings = find_regressions(load_trajectory(trajectory), threshold=0.15)
        # mc fell 10x -> 5x (-50%); transient improved.
        assert len(findings) == 1
        assert "mc" in findings[0] and "-50" in findings[0]

    def test_threshold_tolerates_jitter(self, trajectory):
        assert find_regressions(load_trajectory(trajectory), threshold=0.6) == []

    def test_floor_violation_is_flagged(self, tmp_path):
        (tmp_path / "BENCH_5.json").write_text(
            json.dumps(
                _bench(5, [_case("transient", 1.0, 0.5)], floors={"transient": 5.0})
            )
        )
        findings = find_regressions(load_trajectory(str(tmp_path)))
        assert len(findings) == 1 and "below the 5.0x floor" in findings[0]


class TestReportCLI:
    def test_report_text_renders(self, trajectory):
        text, findings = report_text(trajectory)
        assert "BENCH_3" in text and "BENCH_4" in text
        assert len(findings) == 1

    def test_cli_prints_report(self, trajectory, capsys):
        assert main(["perf-report", "--dir", trajectory]) == 0
        out = capsys.readouterr().out
        assert "perf trajectory" in out and "transient" in out

    def test_cli_check_fails_on_regression(self, trajectory, capsys):
        assert main(["perf-report", "--dir", trajectory, "--check"]) == 1
        assert "regression" in capsys.readouterr().err

    def test_cli_check_passes_on_clean_trajectory(self, trajectory):
        assert (
            main(["perf-report", "--dir", trajectory, "--check", "--threshold", "0.6"])
            == 0
        )

    def test_cli_empty_directory(self, tmp_path, capsys):
        assert main(["perf-report", "--dir", str(tmp_path)]) == 0
        assert "no BENCH_" in capsys.readouterr().out

    def test_committed_trajectory_is_clean(self, capsys):
        """The repo's own committed BENCH_*.json must pass the check gate.

        The lenient threshold tolerates the host-dependent parallel-scaling
        cases (pool/worker speedups jitter between machines); catastrophic
        hot-path regressions still trip it, and the floor checks are exact.
        """
        assert main(["perf-report", "--check", "--threshold", "0.5"]) == 0


def _matplotlib_available() -> bool:
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


class TestPlot:
    def test_plot_writes_chart_or_degrades(self, trajectory, tmp_path):
        """plot_trajectory writes the file iff matplotlib is installed --
        and reports which, instead of raising, either way."""
        from repro.api.perfreport import load_trajectory, plot_trajectory

        out = str(tmp_path / "trajectory.svg")
        wrote = plot_trajectory(load_trajectory(trajectory), out)
        assert wrote is _matplotlib_available()
        assert wrote is (
            __import__("os").path.exists(out)
        )

    def test_cli_plot_never_fails_without_matplotlib(self, trajectory, tmp_path, capsys):
        """`perf-report --plot` must exit 0 whether or not matplotlib exists:
        CI and scripts pass --plot unconditionally."""
        out = str(tmp_path / "chart.svg")
        assert main(["perf-report", "--dir", trajectory, "--plot", out]) == 0
        captured = capsys.readouterr()
        if _matplotlib_available():
            assert f"wrote {out}" in captured.out
        else:
            assert "matplotlib not installed" in captured.err
            assert not __import__("os").path.exists(out)

    def test_cli_plot_composes_with_check(self, trajectory, tmp_path, capsys):
        out = str(tmp_path / "chart.svg")
        # The regression in the fixture trajectory still gates the exit code.
        assert main(["perf-report", "--dir", trajectory, "--plot", out, "--check"]) == 1
