"""Strategy unit tests: pool bookkeeping, seeding, selection behaviour."""

import pytest

from repro.api import ResultSet, SweepSpec
from repro.campaign import (
    STRATEGIES,
    LatinHypercubeStrategy,
    RandomStrategy,
    RefineStrategy,
    SurrogateStrategy,
    make_strategy,
    point_objectives,
)

SPACE = SweepSpec.grid(x=[0.0, 1.0, 2.0, 3.0, 4.0], y=[0.0, 1.0, 2.0, 3.0])


def history_of(points, objective_values):
    """A minimal tagged history: one record per point with an 'obj' column."""
    return ResultSet.from_records(
        [{**point, "obj": value} for point, value in zip(points, objective_values)]
    )


class TestPointObjectives:
    def test_aggregates_one_score_per_point(self):
        history = history_of([{"x": 0.0, "y": 0.0}, {"x": 1.0, "y": 0.0}], [3.0, 1.0])
        scores = point_objectives(history, ["x", "y"], "obj", mode="min")
        assert len(scores) == 2
        assert sorted(scores.values()) == [1.0, 3.0]

    def test_multi_record_point_keeps_extremal_value(self):
        records = [
            {"x": 0.0, "y": 0.0, "obj": 5.0},
            {"x": 0.0, "y": 0.0, "obj": 2.0},
            {"x": 0.0, "y": 0.0, "obj": 9.0},
        ]
        history = ResultSet.from_records(records)
        assert list(
            point_objectives(history, ["x", "y"], "obj", mode="min").values()
        ) == [2.0]
        assert list(
            point_objectives(history, ["x", "y"], "obj", mode="max").values()
        ) == [9.0]

    def test_nan_and_none_cells_are_skipped(self):
        history = ResultSet.from_records(
            [
                {"x": 0.0, "y": 0.0, "obj": float("nan")},
                {"x": 1.0, "y": 0.0, "obj": None},
                {"x": 2.0, "y": 0.0, "obj": 4.0},
            ]
        )
        assert list(
            point_objectives(history, ["x", "y"], "obj", mode="min").values()
        ) == [4.0]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="'min' or 'max'"):
            point_objectives(ResultSet.from_records([]), ["x"], "obj", mode="best")


class TestPoolBookkeeping:
    def test_unvisited_excludes_history_points(self):
        strategy = RandomStrategy(SPACE, "obj", seed=1)
        visited = SPACE.points()[:3]
        history = history_of(visited, [1.0, 2.0, 3.0])
        remaining = strategy.unvisited(history)
        assert len(remaining) == len(SPACE) - 3
        assert all(p not in visited for p in remaining)

    def test_param_prefixed_tag_columns_count_as_visited(self):
        # The engine tags a colliding axis as param_<axis>; identity must
        # survive that spelling.
        strategy = RandomStrategy(SPACE, "obj", seed=1)
        history = ResultSet.from_records([{"param_x": 0.0, "y": 0.0, "obj": 1.0}])
        remaining = strategy.unvisited(history)
        assert len(remaining) == len(SPACE) - 1

    def test_batch_clamped_to_remaining_pool(self):
        strategy = RandomStrategy(SPACE, "obj", seed=1)
        points = SPACE.points()
        history = history_of(points[:-2], [0.0] * (len(points) - 2))
        assert len(strategy.propose(history, batch_size=10)) == 2

    def test_exhausted_pool_proposes_nothing(self):
        strategy = RandomStrategy(SPACE, "obj", seed=1)
        points = SPACE.points()
        history = history_of(points, [0.0] * len(points))
        assert strategy.propose(history, batch_size=4) == []

    def test_bad_batch_size_rejected(self):
        strategy = RandomStrategy(SPACE, "obj", seed=1)
        with pytest.raises(ValueError, match="batch_size"):
            strategy.propose(ResultSet.from_records([]), batch_size=0)


class TestSeeding:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_same_seed_same_proposals(self, name):
        empty = ResultSet.from_records([])
        a = make_strategy(name, SPACE, "obj", mode="min", seed=42)
        b = make_strategy(name, SPACE, "obj", mode="min", seed=42)
        assert a.propose(empty, 5) == b.propose(empty, 5)

    def test_different_seeds_eventually_differ(self):
        empty = ResultSet.from_records([])
        draws_a = RandomStrategy(SPACE, "obj", seed=1).propose(empty, 10)
        draws_b = RandomStrategy(SPACE, "obj", seed=2).propose(empty, 10)
        assert draws_a != draws_b

    def test_proposals_are_copies(self):
        strategy = RandomStrategy(SPACE, "obj", seed=0)
        batch = strategy.propose(ResultSet.from_records([]), 1)
        batch[0]["x"] = 999.0
        assert all(p["x"] != 999.0 for p in strategy.pool)


class TestLatinHypercube:
    def test_batch_spreads_over_strata(self):
        space = SweepSpec.grid(x=[float(i) for i in range(20)])
        strategy = LatinHypercubeStrategy(space, "obj", seed=3)
        batch = strategy.propose(ResultSet.from_records([]), 4)
        # One draw per contiguous stratum of 5 -> all four quartiles hit.
        strata = {int(point["x"] // 5) for point in batch}
        assert strata == {0, 1, 2, 3}


class TestRefine:
    def test_zooms_towards_incumbent_best(self):
        space = SweepSpec.grid(x=[float(i) for i in range(11)])
        strategy = RefineStrategy(space, "obj", mode="min", seed=0)
        history = history_of(
            [{"x": 2.0}, {"x": 5.0}, {"x": 9.0}], [4.0, 0.5, 7.0]
        )
        batch = strategy.propose(history, 3)
        assert all(abs(point["x"] - 5.0) <= 2.0 for point in batch)

    def test_no_history_falls_back_to_stratified(self):
        strategy = RefineStrategy(SPACE, "obj", seed=0)
        assert len(strategy.propose(ResultSet.from_records([]), 4)) == 4


class TestSurrogate:
    def test_falls_back_until_min_fit_points(self):
        strategy = SurrogateStrategy(SPACE, "obj", seed=0, min_fit=3)
        history = history_of(SPACE.points()[:2], [1.0, 2.0])
        assert len(strategy.propose(history, 4)) == 4

    def test_exploits_the_basin_once_fit(self):
        # Objective: distance to x=10 on a 1-D line; with a clear history
        # signal and no jitter, EI must concentrate near the minimum.
        space = SweepSpec.grid(x=[float(i) for i in range(21)])
        strategy = SurrogateStrategy(
            space, "obj", mode="min", seed=0, jitter=0.0, min_fit=3
        )
        visited = [{"x": 0.0}, {"x": 5.0}, {"x": 9.0}, {"x": 15.0}, {"x": 20.0}]
        history = history_of(visited, [abs(p["x"] - 10.0) for p in visited])
        batch = strategy.propose(history, 3)
        assert all(abs(point["x"] - 10.0) <= 4.0 for point in batch)

    def test_jitter_bounds_validated(self):
        with pytest.raises(ValueError, match="jitter"):
            SurrogateStrategy(SPACE, "obj", jitter=1.5)


class TestEncoding:
    def test_numeric_axes_min_max_normalised(self):
        strategy = RandomStrategy(SPACE, "obj", seed=0)
        assert strategy.encode({"x": 0.0, "y": 0.0}) == [0.0, 0.0]
        assert strategy.encode({"x": 4.0, "y": 3.0}) == [1.0, 1.0]
        assert strategy.encode({"x": 2.0, "y": 1.5})[0] == pytest.approx(0.5)

    def test_singleton_tuple_values_unwrap(self):
        space = SweepSpec.grid(temperatures_c=[(300.0,), (400.0,), (500.0,)])
        strategy = RandomStrategy(space, "obj", seed=0)
        assert strategy.encode({"temperatures_c": (400.0,)}) == [
            pytest.approx(0.5)
        ]

    def test_categorical_axes_use_declaration_order(self):
        space = SweepSpec.grid(catalyst=["Co", "Fe"], x=[1.0, 2.0])
        strategy = RandomStrategy(space, "obj", seed=0)
        assert strategy.encode({"catalyst": "Co", "x": 1.0})[0] == 0.0
        assert strategy.encode({"catalyst": "Fe", "x": 1.0})[0] == 1.0


class TestFactory:
    def test_all_registered_names_build(self):
        for name in STRATEGIES:
            strategy = make_strategy(name, SPACE, "obj", mode="max", seed=9)
            assert strategy.mode == "max"
            assert strategy.seed == 9

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("genetic", SPACE, "obj")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="'min' or 'max'"):
            RandomStrategy(SPACE, "obj", mode="extremise")
