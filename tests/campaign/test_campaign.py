"""Campaign runner tests: loop mechanics, checkpointing, and the ISSUE's
acceptance campaigns (growth_window optimum finding in <= 1/5 of the grid,
variability_to_delay corner hunting, composite_tradeoff_fom scalarised
tracing)."""

import json

import pytest

from repro.api import (
    Engine,
    ParamSpec,
    SweepSpec,
    register_experiment,
    unregister_experiment,
)
from repro.campaign import (
    CHECKPOINT_VERSION,
    Campaign,
    CampaignError,
    CampaignReport,
)
from repro.dist import SharedStore

CALLS: list[tuple[float, float]] = []

POOL = SweepSpec.grid(
    x=[0.0, 1.0, 2.0, 3.0, 4.0, 5.0], y=[0.0, 1.0, 2.0, 3.0, 4.0]
)


@pytest.fixture
def quad_experiment():
    CALLS.clear()

    @register_experiment(
        "campaign_quad",
        params=(
            ParamSpec("x", "float", 0.0, "input"),
            ParamSpec("y", "float", 0.0, "input"),
        ),
        replace=True,
    )
    def quad(x: float, y: float):
        CALLS.append((x, y))
        return [{"x": x, "y": y, "loss": (x - 3.0) ** 2 + (y - 2.0) ** 2}]

    yield "campaign_quad"
    unregister_experiment("campaign_quad")


def run_campaign(tmp_path, label="a", **overrides):
    settings = dict(
        mode="min",
        strategy="surrogate",
        batch_size=4,
        budget=12,
        seed=0,
        cache_dir=str(tmp_path / f"cache-{label}"),
    )
    settings.update(overrides)
    return Campaign("campaign_quad", POOL, "loss", **settings).run()


class TestConfigValidation:
    def test_bad_mode(self, quad_experiment):
        with pytest.raises(CampaignError, match="'min' or 'max'"):
            Campaign("campaign_quad", POOL, "loss", mode="down")

    def test_bad_batch_size(self, quad_experiment):
        with pytest.raises(CampaignError, match="batch_size"):
            Campaign("campaign_quad", POOL, "loss", batch_size=0)

    def test_bad_budget(self, quad_experiment):
        with pytest.raises(CampaignError, match="budget"):
            Campaign("campaign_quad", POOL, "loss", budget=0)

    def test_budget_clamped_to_pool(self, quad_experiment):
        campaign = Campaign("campaign_quad", POOL, "loss", budget=10_000)
        assert campaign.budget == len(POOL)

    def test_workers_need_a_store(self, quad_experiment):
        with pytest.raises(CampaignError, match="store-backed"):
            Campaign("campaign_quad", POOL, "loss", workers=2)

    def test_engine_and_store_are_exclusive(self, quad_experiment, tmp_path):
        with pytest.raises(CampaignError, match="not both"):
            Campaign(
                "campaign_quad",
                POOL,
                "loss",
                engine=Engine(),
                cache_dir=str(tmp_path / "cache"),
            )

    def test_unknown_objective_column_rejected_at_ingest(
        self, quad_experiment, tmp_path
    ):
        campaign = Campaign(
            "campaign_quad",
            POOL,
            "nope",
            batch_size=4,
            budget=4,
            cache_dir=str(tmp_path / "cache"),
        )
        with pytest.raises(CampaignError, match="'nope' is not in"):
            campaign.run()


class TestStopRules:
    def test_budget_stop(self, quad_experiment, tmp_path):
        report = run_campaign(tmp_path, budget=6, batch_size=3)
        assert report.stop_reason == "budget"
        assert report.n_visited == 6
        assert report.rounds == 2
        assert len(CALLS) == 6

    def test_last_batch_clamped_to_budget(self, quad_experiment, tmp_path):
        report = run_campaign(tmp_path, budget=7, batch_size=4)
        assert report.n_visited == 7

    def test_target_stop(self, quad_experiment, tmp_path):
        report = run_campaign(tmp_path, target=0.0, budget=len(POOL))
        assert report.stop_reason == "target"
        assert report.best_value == 0.0
        assert report.best_point == {"x": 3.0, "y": 2.0}
        assert report.n_visited < len(POOL)

    def test_stall_stop(self, quad_experiment, tmp_path):
        # With tolerance swamping every possible improvement, round two is
        # a guaranteed stall.
        report = run_campaign(
            tmp_path, patience=1, tolerance=1e9, budget=len(POOL)
        )
        assert report.stop_reason == "stalled"
        assert report.rounds == 2

    def test_full_budget_drains_the_pool(self, quad_experiment, tmp_path):
        report = run_campaign(tmp_path, budget=None, strategy="random")
        assert report.n_visited == len(POOL)
        assert report.best_value == 0.0


class TestReport:
    def test_trajectory_and_savings(self, quad_experiment, tmp_path):
        report = run_campaign(tmp_path, budget=8, batch_size=4)
        assert [t["round"] for t in report.trajectory] == [1, 2]
        assert report.n_executed == 8
        assert report.n_cached == 0
        assert report.grid_fraction == pytest.approx(8 / len(POOL))
        assert report.savings == pytest.approx(1.0 - 8 / len(POOL))
        assert report.result is not None
        assert report.result.meta["campaign"]["stop_reason"] == "budget"

    def test_report_round_trips_through_json(self, quad_experiment, tmp_path):
        report = run_campaign(tmp_path, budget=4)
        path = tmp_path / "report.json"
        report.write_json(str(path))
        document = json.loads(path.read_text())
        assert document["experiment"] == "campaign_quad"
        assert document["n_visited"] == 4
        assert document["result_hash"] == report.result.content_hash

    def test_summary_mentions_the_headline_numbers(
        self, quad_experiment, tmp_path
    ):
        summary = run_campaign(tmp_path, budget=4).summary()
        assert "campaign_quad" in summary
        assert "4/30" in summary


class TestDeterminismAndReplay:
    def test_same_seed_is_bit_identical_across_stores(
        self, quad_experiment, tmp_path
    ):
        a = run_campaign(tmp_path, label="a", seed=7)
        b = run_campaign(tmp_path, label="b", seed=7)
        assert a.result.content_hash == b.result.content_hash
        assert a.trajectory == b.trajectory
        assert a.best_point == b.best_point

    def test_different_seeds_diverge(self, quad_experiment, tmp_path):
        a = run_campaign(tmp_path, label="a", seed=1, strategy="random")
        b = run_campaign(tmp_path, label="b", seed=2, strategy="random")
        assert a.result.content_hash != b.result.content_hash

    def test_replay_executes_zero_points(self, quad_experiment, tmp_path):
        first = run_campaign(tmp_path, label="shared")
        executed_once = len(CALLS)
        replay = run_campaign(tmp_path, label="shared")
        assert len(CALLS) == executed_once  # nothing re-ran
        assert replay.n_executed == 0
        assert replay.n_cached == replay.n_visited
        assert replay.result.content_hash == first.result.content_hash

    def test_two_workers_match_serial(self, quad_experiment, tmp_path):
        serial = run_campaign(tmp_path, label="serial", seed=5)
        store = SharedStore(str(tmp_path / "store"))
        sharded = Campaign(
            "campaign_quad",
            POOL,
            "loss",
            mode="min",
            strategy="surrogate",
            batch_size=4,
            budget=12,
            seed=5,
            workers=2,
            store=store,
        ).run()
        assert sharded.result.content_hash == serial.result.content_hash
        assert sharded.n_visited == serial.n_visited


class TestCheckpointing:
    def checkpointed(self, tmp_path, **overrides):
        settings = dict(
            mode="min",
            strategy="surrogate",
            batch_size=4,
            budget=12,
            seed=3,
            cache_dir=str(tmp_path / "cache"),
            checkpoint_path=str(tmp_path / "campaign.json"),
        )
        settings.update(overrides)
        return Campaign("campaign_quad", POOL, "loss", **settings)

    def test_kill_mid_round_resumes_exactly(self, quad_experiment, tmp_path):
        reference = run_campaign(tmp_path, label="ref", seed=3)

        campaign = self.checkpointed(tmp_path)
        original = campaign._execute_batch
        calls = {"n": 0}

        def bomb(batch):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt  # kill between propose and ingest
            return original(batch)

        campaign._execute_batch = bomb
        with pytest.raises(KeyboardInterrupt):
            campaign.run()

        # The crash left a proposed-phase checkpoint with the live batch.
        document = json.loads((tmp_path / "campaign.json").read_text())
        assert document["phase"] == "proposed"
        assert len(document["pending"]) == 4
        assert len(document["visited"]) == 4

        resumed = self.checkpointed(tmp_path).run()
        assert resumed.stop_reason == reference.stop_reason
        assert resumed.n_visited == reference.n_visited
        assert resumed.best_point == reference.best_point
        assert resumed.result.content_hash == reference.result.content_hash

    def test_resume_of_finished_campaign_recomputes_nothing(
        self, quad_experiment, tmp_path
    ):
        first = self.checkpointed(tmp_path).run()
        executed_once = len(CALLS)
        again = self.checkpointed(tmp_path).run()
        assert len(CALLS) == executed_once
        assert again.n_visited == first.n_visited
        assert again.result.content_hash == first.result.content_hash

    def test_config_mismatch_is_rejected(self, quad_experiment, tmp_path):
        self.checkpointed(tmp_path).run()
        with pytest.raises(CampaignError, match="different campaign"):
            self.checkpointed(tmp_path, seed=4).run()

    def test_corrupt_checkpoint_is_rejected(self, quad_experiment, tmp_path):
        (tmp_path / "campaign.json").write_text("not json")
        with pytest.raises(CampaignError, match="not valid JSON"):
            self.checkpointed(tmp_path).run()

    def test_version_mismatch_is_rejected(self, quad_experiment, tmp_path):
        (tmp_path / "campaign.json").write_text(
            json.dumps({"version": CHECKPOINT_VERSION + 1})
        )
        with pytest.raises(CampaignError, match="version"):
            self.checkpointed(tmp_path).run()

    def test_store_divergence_is_detected(self, quad_experiment, tmp_path):
        self.checkpointed(tmp_path).run()
        document = json.loads((tmp_path / "campaign.json").read_text())
        document["history_hash"] = "0" * 64
        (tmp_path / "campaign.json").write_text(json.dumps(document))
        with pytest.raises(CampaignError, match="hash does not match"):
            self.checkpointed(tmp_path).run()


# --- the ISSUE's acceptance campaigns (real catalog experiments) ------------


GROWTH_POOL = SweepSpec.grid(
    temperatures_c=[(200.0 + 25.0 * i,) for i in range(24)],
    catalyst=["Fe", "Co"],
)


class TestGrowthWindowAcceptance:
    def test_optimum_in_a_fifth_of_the_grid(self, tmp_path):
        # The acceptance bar from the issue: find the 48-point grid's best
        # quality within <= 1/5 of the grid's points.
        grid_best = (
            Engine(cache_dir=str(tmp_path / "grid"))
            .sweep("growth_window", GROWTH_POOL)
            .best("quality", mode="max")["quality"]
        )
        budget = len(GROWTH_POOL) // 5  # 9 of 48
        report = Campaign(
            "growth_window",
            GROWTH_POOL,
            "quality",
            mode="max",
            strategy="surrogate",
            batch_size=3,
            budget=budget,
            seed=0,
            cache_dir=str(tmp_path / "campaign"),
        ).run()
        assert report.n_visited <= budget
        assert report.best_value == pytest.approx(grid_best, abs=1e-9)
        assert report.savings >= 0.8  # >= 4/5 of the grid never ran

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_surrogate_beats_random_to_the_target(self, tmp_path, seed):
        # Sample-efficiency regression: with the grid optimum as target,
        # the surrogate must get there in fewer visited points than the
        # uniform-random baseline (scouted margin is ~2-6x).
        def visited(strategy, label):
            return Campaign(
                "growth_window",
                GROWTH_POOL,
                "quality",
                mode="max",
                strategy=strategy,
                batch_size=3,
                seed=seed,
                target=1.0,
                cache_dir=str(tmp_path / f"{label}-{seed}"),
            ).run().n_visited

        assert visited("surrogate", "s") < visited("random", "r")


class TestVariabilityCornerAcceptance:
    def test_worst_case_corner_found_under_budget(self, tmp_path):
        # Corner hunting: maximise delay_ps over a length x n_sigma pool
        # with reduced solver fidelity to keep the test fast.
        pool = SweepSpec.grid(
            length_um=[5.0, 10.0, 20.0], n_sigma=[1.0, 2.0, 3.0]
        )
        base = {"n_segments": 30, "n_time_steps": 80}
        grid_worst = (
            Engine(cache_dir=str(tmp_path / "grid"))
            .sweep("variability_delay", pool, base_params=base)
            .best("delay_ps", mode="max")["delay_ps"]
        )
        report = Campaign(
            "variability_delay",
            pool,
            "delay_ps",
            mode="max",
            strategy="surrogate",
            batch_size=2,
            budget=6,
            seed=0,
            base_params=base,
            cache_dir=str(tmp_path / "campaign"),
        ).run()
        assert report.n_visited < len(pool)
        assert report.best_value == pytest.approx(grid_worst)


class TestCompositeFomAcceptance:
    def test_scalarised_tradeoff_optimum(self, tmp_path):
        # Pareto tracing, scalarised: the lifetime_weight axis sweeps the
        # scalarisation and the campaign must find the best composite FOM.
        pool = SweepSpec.grid(
            lifetime_weight=[0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
            width_nm=[15.0, 20.0, 30.0],
        )
        grid_best = (
            Engine(cache_dir=str(tmp_path / "grid"))
            .sweep("composite_fom", pool)
            .best("figure_of_merit", mode="max")["figure_of_merit"]
        )
        report = Campaign(
            "composite_fom",
            pool,
            "figure_of_merit",
            mode="max",
            strategy="surrogate",
            batch_size=3,
            budget=9,
            seed=0,
            cache_dir=str(tmp_path / "campaign"),
        ).run()
        assert report.n_visited <= len(pool) // 2
        assert report.best_value == pytest.approx(grid_best)
