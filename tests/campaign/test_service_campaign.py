"""Campaign jobs through the service stack: spec validation, daemon
execution, and the HTTP submit_campaign endpoint end to end."""

import threading

import pytest

from repro.api import SweepSpec
from repro.dist import SharedStore
from repro.service import (
    JobSpec,
    ServiceClient,
    ServiceError,
    SpecQueue,
    make_server,
    serve_queue,
)

GROWTH_POOL = SweepSpec.grid(
    temperatures_c=[(200.0 + 25.0 * i,) for i in range(24)],
    catalyst=["Fe", "Co"],
)

CAMPAIGN = {
    "objective": "quality",
    "mode": "max",
    "batch": 3,
    "budget": 9,
    "strategy": "surrogate",
    "seed": 0,
}


def campaign_job(**overrides):
    settings = dict(CAMPAIGN)
    settings.update(overrides)
    return JobSpec(
        kind="campaign", name="growth_window", sweep=GROWTH_POOL,
        campaign=settings,
    )


class TestJobSpec:
    def test_round_trips_through_payload(self):
        job = campaign_job()
        again = JobSpec.from_payload(job.to_payload())
        assert again.kind == "campaign"
        assert again.campaign["objective"] == "quality"
        assert again.campaign["budget"] == 9
        assert SweepSpec.from_meta(again.sweep.to_meta()) == GROWTH_POOL

    def test_describe_names_the_campaign(self):
        description = campaign_job().describe()
        assert "campaign growth_window" in description
        assert "max(quality)" in description
        assert "surrogate" in description

    def test_defaults_fill_in(self):
        job = JobSpec(
            kind="campaign", name="growth_window", sweep=GROWTH_POOL,
            campaign={"objective": "quality"},
        )
        assert job.campaign["mode"] == "min"
        assert job.campaign["strategy"] == "surrogate"
        assert job.campaign["batch"] == 8
        assert job.campaign["seed"] == 0

    def test_requires_campaign_settings(self):
        with pytest.raises(ValueError, match="campaign"):
            JobSpec(kind="campaign", name="growth_window", sweep=GROWTH_POOL)

    def test_requires_a_sweep_pool(self):
        with pytest.raises(ValueError, match="sweep"):
            JobSpec(kind="campaign", name="growth_window", campaign=CAMPAIGN)

    def test_rejects_objective_missing(self):
        with pytest.raises(ValueError, match="objective"):
            campaign_job(objective=None)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            campaign_job(strategy="genetic")

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            campaign_job(mode="down")

    def test_rejects_unknown_settings(self):
        with pytest.raises(ValueError, match="unknown settings"):
            campaign_job(exploration=0.5)

    def test_rejects_non_campaign_kind_with_campaign_settings(self):
        with pytest.raises(ValueError, match="campaign"):
            JobSpec(
                kind="sweep", name="growth_window", sweep=GROWTH_POOL,
                campaign=CAMPAIGN,
            )

    def test_validates_pool_against_registry(self):
        job = campaign_job()
        job.validate()  # growth_window declares these axes
        bad = JobSpec(
            kind="campaign", name="growth_window",
            sweep=SweepSpec.grid(pressure=[1.0]), campaign=CAMPAIGN,
        )
        with pytest.raises(ValueError, match="pressure"):
            bad.validate()


class TestDaemonExecution:
    def test_campaign_job_runs_to_done(self, tmp_path):
        queue = SpecQueue(str(tmp_path / "queue"))
        store = SharedStore(str(tmp_path / "store"))
        job_id = queue.submit(campaign_job())

        report = serve_queue(queue, store, drain=True)
        assert report.executed == [job_id]

        status = queue.status(job_id)
        assert status["state"] == "done"

        result = queue.load_result(job_id)
        summary = result.meta["campaign"]
        assert summary["n_visited"] == 9
        assert summary["best_value"] == 1.0
        assert summary["stop_reason"] == "budget"
        assert len(result) > 0

    def test_campaign_failure_is_recorded_not_fatal(self, tmp_path):
        queue = SpecQueue(str(tmp_path / "queue"))
        store = SharedStore(str(tmp_path / "store"))
        job_id = queue.submit(campaign_job(objective="no_such_column"))

        report = serve_queue(queue, store, drain=True)
        assert report.failed == [job_id]
        assert "no_such_column" in (queue.status(job_id)["error"] or "")


@pytest.fixture()
def service(tmp_path):
    server = make_server(str(tmp_path / "queue"), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield {
            "client": ServiceClient(server.url),
            "queue": server.queue,
            "store": SharedStore(str(tmp_path / "store")),
        }
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestHttpEndToEnd:
    def test_submit_wait_fetch(self, service):
        client = service["client"]
        job_id = client.submit_campaign(
            "growth_window", GROWTH_POOL, "quality",
            mode="max", batch=3, budget=9, seed=0,
        )
        assert client.status(job_id)["state"] == "queued"
        assert client.status(job_id)["kind"] == "campaign"

        serve_queue(service["queue"], service["store"], drain=True)

        status = client.wait(job_id, timeout=60)
        assert status["state"] == "done"
        result = client.fetch_results(job_id)
        assert result.meta["campaign"]["best_value"] == 1.0
        assert result.meta["campaign"]["n_visited"] == 9

    def test_submit_validates_at_the_server(self, service):
        with pytest.raises(ServiceError) as err:
            service["client"].submit_campaign(
                "growth_window", GROWTH_POOL, "quality", strategy="genetic"
            )
        assert err.value.status == 400
        assert "strategy" in str(err.value)

    def test_submit_requires_campaign_fields(self, service):
        with pytest.raises(ServiceError) as err:
            service["client"]._post_json(
                "/submit_campaign",
                {"experiment": "growth_window", "sweep": GROWTH_POOL.to_meta()},
            )
        assert err.value.status == 400
