"""Tests for SWCNT bundles, Cu-CNT composites and the ampacity comparison."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import CNT_MAX_CURRENT_PER_TUBE, MIN_CNT_DENSITY_FOR_DELAY
from repro.core import (
    CuCNTComposite,
    SWCNTBundle,
    ampacity_comparison,
    max_current_cnt,
    max_current_copper_line,
)
from repro.core.ampacity import cnts_needed_to_match_copper, reference_figures_consistent
from repro.core.bundle import max_packing_density
from repro.core.composite import tradeoff_sweep
from repro.core.copper import paper_reference_copper_line
from repro.core.doping import DopingProfile
from repro.units import nm, um


class TestBundle:
    def test_max_packing_density_order_of_magnitude(self):
        # ~1 nm tubes close-pack at roughly 0.6 tubes/nm^2.
        density = max_packing_density(nm(1))
        assert 0.3e18 < density < 1.0e18

    def test_default_density_meets_paper_minimum(self):
        bundle = SWCNTBundle(width=nm(100), height=nm(50), length=um(1))
        assert bundle.meets_minimum_density()
        assert bundle.density_shortfall_factor() > 1.0

    def test_sparse_bundle_fails_minimum_density(self):
        bundle = SWCNTBundle(
            width=nm(100), height=nm(50), length=um(1), density=0.01e18
        )
        assert not bundle.meets_minimum_density()
        assert bundle.density_shortfall_factor() < 1.0

    def test_density_capped_at_close_packing(self):
        bundle = SWCNTBundle(width=nm(100), height=nm(50), length=um(1), density=1e20)
        assert bundle.effective_density == pytest.approx(max_packing_density(nm(1)))

    def test_resistance_inverse_in_tube_count(self):
        sparse = SWCNTBundle(width=nm(100), height=nm(50), length=um(1), density=0.05e18)
        dense = SWCNTBundle(width=nm(100), height=nm(50), length=um(1), density=0.2e18)
        assert sparse.resistance > dense.resistance

    def test_metallic_fraction_reduces_conduction(self):
        sorted_tubes = SWCNTBundle(
            width=nm(100), height=nm(50), length=um(1), metallic_fraction=1.0
        )
        as_grown = SWCNTBundle(
            width=nm(100), height=nm(50), length=um(1), metallic_fraction=1.0 / 3.0
        )
        assert as_grown.resistance > sorted_tubes.resistance
        assert as_grown.max_current < sorted_tubes.max_current

    def test_doping_reduces_bundle_resistance(self):
        pristine = SWCNTBundle(width=nm(100), height=nm(50), length=um(1))
        doped = SWCNTBundle(
            width=nm(100), height=nm(50), length=um(1), doping=DopingProfile.from_channels(6)
        )
        assert doped.resistance < pristine.resistance

    def test_tubes_to_match_current(self):
        bundle = SWCNTBundle(width=nm(100), height=nm(50), length=um(1))
        needed = bundle.tubes_to_match_current(50e-6)
        assert needed == 2

    def test_max_current_proportional_to_conducting_tubes(self):
        bundle = SWCNTBundle(width=nm(100), height=nm(50), length=um(1), metallic_fraction=1.0)
        assert bundle.max_current == pytest.approx(
            bundle.conducting_tube_count * CNT_MAX_CURRENT_PER_TUBE
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SWCNTBundle(width=0.0, height=nm(50), length=um(1))
        with pytest.raises(ValueError):
            SWCNTBundle(width=nm(100), height=nm(50), length=um(1), metallic_fraction=0.0)
        with pytest.raises(ValueError):
            SWCNTBundle(width=nm(100), height=nm(50), length=um(1), density=-1.0)
        with pytest.raises(ValueError):
            SWCNTBundle(width=nm(100), height=nm(50), length=um(1)).tubes_to_match_current(0.0)


class TestAmpacity:
    def test_copper_reference_is_50_ua(self):
        assert max_current_copper_line(nm(100), nm(50)) == pytest.approx(50e-6, rel=0.01)

    def test_single_cnt_carries_20_to_25_ua(self):
        assert 20e-6 <= max_current_cnt(nm(1)) <= 25e-6

    def test_a_few_cnts_match_copper(self):
        # Paper: "a few CNTs are enough to match the current carrying
        # capacity of a typical Cu interconnect".
        assert 1 < cnts_needed_to_match_copper() <= 5

    def test_comparison_rows(self):
        rows = ampacity_comparison()
        assert len(rows) == 3
        labels = [row.label for row in rows]
        assert any("Cu" in label for label in labels)
        cu_row = rows[0]
        cnt_row = rows[1]
        bundle_row = rows[2]
        # CNT current density is ~1000x the copper EM limit.
        assert cnt_row.max_current_density > 100 * cu_row.max_current_density
        # A dense bundle in the same cross-section beats the copper line outright.
        assert bundle_row.max_current > cu_row.max_current

    def test_paper_units_exposed(self):
        rows = ampacity_comparison()
        assert rows[0].max_current_density_a_per_cm2 == pytest.approx(1e6)
        assert rows[0].max_current_ua == pytest.approx(50.0, rel=0.01)

    def test_reference_figures_consistent(self):
        assert reference_figures_consistent()

    def test_validation(self):
        with pytest.raises(ValueError):
            max_current_copper_line(0.0, nm(50))
        with pytest.raises(ValueError):
            max_current_cnt(0.0)


class TestComposite:
    def test_pure_copper_limit(self):
        composite = CuCNTComposite(width=nm(100), height=nm(50), length=um(10), cnt_volume_fraction=0.0)
        copper = paper_reference_copper_line(um(10))
        assert composite.resistance == pytest.approx(copper.resistance, rel=0.2)

    def test_ampacity_gain_increases_with_cnt_fraction(self):
        gains = [
            CuCNTComposite(
                width=nm(100), height=nm(50), length=um(10), cnt_volume_fraction=f
            ).ampacity_gain_over_copper
            for f in (0.0, 0.2, 0.5)
        ]
        assert gains[0] < gains[1] < gains[2]
        assert gains[0] >= 1.0

    def test_composite_always_better_ampacity_than_copper(self):
        composite = CuCNTComposite(width=nm(100), height=nm(50), length=um(10))
        assert composite.ampacity_gain_over_copper > 1.0

    def test_resistivity_penalty_modest(self):
        # The whole point of the composite: big ampacity gain, modest
        # resistivity penalty.
        composite = CuCNTComposite(width=nm(100), height=nm(50), length=um(10), cnt_volume_fraction=0.3)
        assert composite.resistivity_penalty_over_copper < 3.0
        assert composite.ampacity_gain_over_copper > 5.0

    def test_poor_fill_quality_raises_resistance(self):
        good = CuCNTComposite(width=nm(100), height=nm(50), length=um(10), fill_quality=1.0)
        bad = CuCNTComposite(width=nm(100), height=nm(50), length=um(10), fill_quality=0.6)
        assert bad.resistance > good.resistance

    def test_tradeoff_sweep_records(self):
        records = tradeoff_sweep(nm(100), nm(50), um(10), [0.0, 0.25, 0.5, 0.75])
        assert len(records) == 4
        assert records[0]["ampacity_gain"] <= records[-1]["ampacity_gain"]
        assert all(r["effective_resistivity"] > 0 for r in records)

    def test_validation(self):
        with pytest.raises(ValueError):
            CuCNTComposite(width=nm(100), height=nm(50), length=um(1), cnt_volume_fraction=1.5)
        with pytest.raises(ValueError):
            CuCNTComposite(width=nm(100), height=nm(50), length=um(1), fill_quality=0.0)
        with pytest.raises(ValueError):
            CuCNTComposite(width=nm(100), height=nm(50), length=um(1), em_suppression_factor=0.5)

    def test_with_volume_fraction(self):
        composite = CuCNTComposite(width=nm(100), height=nm(50), length=um(1))
        assert composite.with_volume_fraction(0.7).cnt_volume_fraction == pytest.approx(0.7)


class TestCompositePropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_composite_resistance_positive(self, fraction):
        composite = CuCNTComposite(
            width=nm(100), height=nm(50), length=um(5), cnt_volume_fraction=fraction
        )
        assert composite.resistance > 0
        assert composite.max_current > 0

    @settings(max_examples=25, deadline=None)
    @given(
        density=st.floats(min_value=0.001e18, max_value=0.7e18),
        metallic=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_bundle_resistance_decreases_with_density(self, density, metallic):
        base = SWCNTBundle(
            width=nm(200), height=nm(100), length=um(2), density=density, metallic_fraction=metallic
        )
        denser = base.with_density(min(density * 2, 0.7e18))
        assert denser.resistance <= base.resistance * 1.05
