"""Tests for the doping profile, inductance helpers and the unified line front end."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atomistic import Chirality
from repro.core import (
    DopingProfile,
    DistributedRC,
    InterconnectLine,
    MWCNTInterconnect,
    SWCNTInterconnect,
    channels_per_shell_from_fermi_shift,
    kinetic_inductance,
    magnetic_inductance_over_plane,
)
from repro.core.copper import paper_reference_copper_line
from repro.core.doping import DopantSite, doping_sweep
from repro.core.kinetic import kinetic_to_magnetic_ratio, total_inductance_per_length
from repro.units import nm, um


class TestDopingProfile:
    def test_pristine_profile(self):
        profile = DopingProfile.pristine()
        assert profile.channels_per_shell == 2.0
        assert not profile.is_doped
        assert profile.enhancement_factor == pytest.approx(1.0)

    def test_from_channels(self):
        profile = DopingProfile.from_channels(6.0)
        assert profile.is_doped
        assert profile.enhancement_factor == pytest.approx(3.0)

    def test_cannot_go_below_pristine(self):
        with pytest.raises(ValueError):
            DopingProfile(channels_per_shell=1.0)

    def test_iodine_profile_matches_paper_conductance_ratio(self):
        # 0.387 mS / 0.155 mS = 2.5 enhancement.
        profile = DopingProfile.iodine()
        assert profile.enhancement_factor == pytest.approx(2.5)
        assert profile.fermi_shift_ev == pytest.approx(-0.6)

    def test_ptcl4_profile_site(self):
        assert DopingProfile.ptcl4().site is DopantSite.EXTERNAL

    def test_from_fermi_shift_uses_atomistic_bridge(self):
        profile = DopingProfile.from_fermi_shift(Chirality(7, 7), -1.3)
        assert profile.channels_per_shell > 2.0
        assert profile.fermi_shift_ev == pytest.approx(-1.3)

    def test_from_fermi_shift_never_below_pristine(self):
        profile = DopingProfile.from_fermi_shift(Chirality(7, 7), -0.01)
        assert profile.channels_per_shell >= 2.0

    def test_bridge_function_monotone(self):
        small = channels_per_shell_from_fermi_shift(Chirality(7, 7), -0.2)
        large = channels_per_shell_from_fermi_shift(Chirality(7, 7), -1.5)
        assert large >= small

    def test_doping_sweep_spans_paper_range(self):
        profiles = doping_sweep(9)
        channels = [p.channels_per_shell for p in profiles]
        assert channels[0] == pytest.approx(2.0)
        assert channels[-1] == pytest.approx(10.0)
        assert len(profiles) == 9
        assert not profiles[0].is_doped
        assert all(p.is_doped for p in profiles[1:])

    def test_doping_sweep_needs_two_levels(self):
        with pytest.raises(ValueError):
            doping_sweep(1)


class TestKinetic:
    def test_kinetic_inductance_16nh_per_um_per_channel(self):
        assert kinetic_inductance(1.0) == pytest.approx(16e-9 / 1e-6, rel=0.02)

    def test_kinetic_inductance_scales_inverse_channels(self):
        assert kinetic_inductance(4.0) == pytest.approx(kinetic_inductance(1.0) / 4.0)

    def test_kinetic_dominates_magnetic(self):
        # For realistic CNT channel counts the kinetic term is >> magnetic.
        ratio = kinetic_to_magnetic_ratio(18.0, nm(10), nm(60))
        assert ratio > 100.0

    def test_magnetic_inductance_increases_with_height(self):
        low = magnetic_inductance_over_plane(nm(10), nm(20))
        high = magnetic_inductance_over_plane(nm(10), nm(200))
        assert high > low

    def test_total_is_sum(self):
        total = total_inductance_per_length(4.0, nm(10), nm(60))
        assert total == pytest.approx(
            kinetic_inductance(4.0) + magnetic_inductance_over_plane(nm(10), nm(60))
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            kinetic_inductance(0.0)
        with pytest.raises(ValueError):
            magnetic_inductance_over_plane(0.0, nm(50))
        with pytest.raises(ValueError):
            magnetic_inductance_over_plane(nm(100), nm(10))


class TestDistributedRC:
    def test_segments_sum_to_totals(self):
        ladder = DistributedRC(total_resistance=1e4, total_capacitance=1e-14, n_segments=17)
        segments = ladder.segments()
        assert len(segments) == 17
        assert sum(r for r, _ in segments) == pytest.approx(1e4)
        assert sum(c for _, c in segments) == pytest.approx(1e-14)

    def test_elmore_delay_formula(self):
        ladder = DistributedRC(total_resistance=1e4, total_capacitance=1e-14)
        delay = ladder.elmore_delay(driver_resistance=5e3, load_capacitance=1e-15)
        expected = 5e3 * (1e-14 + 1e-15) + 1e4 * (0.5e-14 + 1e-15)
        assert delay == pytest.approx(expected)

    def test_contact_resistance_split_between_ends(self):
        ladder = DistributedRC(
            total_resistance=1e4, total_capacitance=1e-14, contact_resistance=2e3
        )
        assert ladder.end_resistance == pytest.approx(1e3)

    def test_resized_preserves_totals(self):
        ladder = DistributedRC(total_resistance=1e4, total_capacitance=1e-14, n_segments=5)
        finer = ladder.resized(50)
        assert finer.n_segments == 50
        assert finer.total_resistance == ladder.total_resistance

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedRC(total_resistance=-1.0, total_capacitance=1e-14)
        with pytest.raises(ValueError):
            DistributedRC(total_resistance=1.0, total_capacitance=1e-14, n_segments=0)
        with pytest.raises(ValueError):
            DistributedRC(total_resistance=1.0, total_capacitance=1e-14).elmore_delay(-1.0)


class TestInterconnectLine:
    def test_wraps_mwcnt(self):
        tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(100))
        line = InterconnectLine(tube)
        assert line.total_resistance == pytest.approx(tube.resistance)
        assert line.total_capacitance == pytest.approx(tube.capacitance)
        assert line.length == pytest.approx(um(100))

    def test_wraps_copper_with_zero_contact(self):
        line = InterconnectLine(paper_reference_copper_line(um(100)))
        assert line.contact_resistance == pytest.approx(0.0)
        assert line.distributed_resistance == pytest.approx(line.total_resistance)

    def test_cnt_contact_resistance_extracted(self):
        tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(100), contact_resistance=50e3)
        line = InterconnectLine(tube)
        assert line.contact_resistance > 50e3  # includes the quantum term too
        assert line.distributed_resistance < line.total_resistance

    def test_swcnt_contact_resistance_extracted(self):
        tube = SWCNTInterconnect(diameter=nm(1), length=um(10), contact_resistance=20e3)
        line = InterconnectLine(tube)
        assert line.contact_resistance == pytest.approx(20e3 + tube.quantum_contact_resistance)

    def test_distributed_expansion_consistent(self):
        tube = MWCNTInterconnect(outer_diameter=nm(14), length=um(500))
        line = InterconnectLine(tube, n_segments=40)
        ladder = line.distributed()
        assert ladder.n_segments == 40
        total = ladder.total_resistance + ladder.contact_resistance
        assert total == pytest.approx(line.total_resistance, rel=0.01)

    def test_elmore_delay_longer_line_slower(self):
        short = InterconnectLine(MWCNTInterconnect(outer_diameter=nm(10), length=um(100)))
        long = InterconnectLine(MWCNTInterconnect(outer_diameter=nm(10), length=um(500)))
        assert long.elmore_delay(5e3, 1e-16) > short.elmore_delay(5e3, 1e-16)

    def test_doping_reduces_elmore_delay(self):
        pristine = InterconnectLine(MWCNTInterconnect(outer_diameter=nm(10), length=um(500)))
        doped = InterconnectLine(
            MWCNTInterconnect(
                outer_diameter=nm(10), length=um(500), doping=DopingProfile.from_channels(10)
            )
        )
        assert doped.elmore_delay(5e3, 1e-16) < pristine.elmore_delay(5e3, 1e-16)

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            InterconnectLine(MWCNTInterconnect(outer_diameter=nm(10), length=um(1)), n_segments=0)


class TestLinePropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        channels=st.floats(min_value=2.0, max_value=10.0),
        length_um=st.floats(min_value=10.0, max_value=1000.0),
        driver=st.floats(min_value=1e2, max_value=1e5),
    )
    def test_doping_never_increases_delay_materially(self, channels, length_um, driver):
        # Doping can raise the line capacitance marginally (Eq. 5: the quantum
        # capacitance grows with Nc, pulling the series combination a couple of
        # percent closer to C_E), so for strongly driver-dominated cases the
        # delay may tick up by up to ~2 %; anything beyond that would indicate
        # a modelling bug.
        pristine = InterconnectLine(
            MWCNTInterconnect(outer_diameter=nm(14), length=um(length_um))
        )
        doped = InterconnectLine(
            MWCNTInterconnect(
                outer_diameter=nm(14),
                length=um(length_um),
                doping=DopingProfile.from_channels(channels),
            )
        )
        assert doped.elmore_delay(driver, 1e-16) <= pristine.elmore_delay(driver, 1e-16) * 1.02
