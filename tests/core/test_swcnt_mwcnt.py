"""Tests for the SWCNT and MWCNT compact models (paper Eqs. 4-5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import QUANTUM_CONDUCTANCE, QUANTUM_RESISTANCE
from repro.core import MWCNTInterconnect, SWCNTInterconnect, ShellFillingRule
from repro.core.doping import DopingProfile
from repro.core.mwcnt import shell_diameters
from repro.units import nm, um


class TestSWCNT:
    def test_short_tube_resistance_approaches_quantum_limit(self):
        tube = SWCNTInterconnect(diameter=nm(1), length=nm(10))
        assert tube.resistance == pytest.approx(QUANTUM_RESISTANCE / 2.0, rel=0.02)

    def test_resistance_grows_linearly_in_diffusive_limit(self):
        tube1 = SWCNTInterconnect(diameter=nm(1), length=um(10))
        tube2 = SWCNTInterconnect(diameter=nm(1), length=um(20))
        assert tube2.resistance == pytest.approx(2 * tube1.resistance, rel=0.1)

    def test_mean_free_path_1000x_diameter(self):
        tube = SWCNTInterconnect(diameter=nm(1.5), length=um(1))
        assert tube.mean_free_path == pytest.approx(1.5e-6, rel=1e-6)

    def test_mean_free_path_shrinks_with_temperature(self):
        cold = SWCNTInterconnect(diameter=nm(1), length=um(1), temperature=300.0)
        hot = SWCNTInterconnect(diameter=nm(1), length=um(1), temperature=400.0)
        assert hot.mean_free_path < cold.mean_free_path

    def test_defect_mfp_matthiessen(self):
        clean = SWCNTInterconnect(diameter=nm(1), length=um(1))
        damaged = SWCNTInterconnect(diameter=nm(1), length=um(1), defect_mfp=0.5e-6)
        assert damaged.mean_free_path < clean.mean_free_path
        assert damaged.resistance > clean.resistance

    def test_doping_reduces_resistance(self):
        pristine = SWCNTInterconnect(diameter=nm(1), length=um(1))
        doped = pristine.with_doping(DopingProfile.from_channels(5))
        assert doped.resistance < pristine.resistance
        assert doped.resistance == pytest.approx(pristine.resistance * 2 / 5, rel=1e-6)

    def test_contact_resistance_adds(self):
        ideal = SWCNTInterconnect(diameter=nm(1), length=um(1))
        contacted = SWCNTInterconnect(diameter=nm(1), length=um(1), contact_resistance=50e3)
        assert contacted.resistance == pytest.approx(ideal.resistance + 50e3)

    def test_capacitance_dominated_by_electrostatic_term(self):
        tube = SWCNTInterconnect(diameter=nm(1), length=um(1))
        assert tube.capacitance_per_length < tube.electrostatic_capacitance_per_length
        assert tube.capacitance_per_length == pytest.approx(
            tube.electrostatic_capacitance_per_length, rel=0.5
        )

    def test_kinetic_inductance_scales_with_channels(self):
        pristine = SWCNTInterconnect(diameter=nm(1), length=um(1))
        doped = pristine.with_doping(DopingProfile.from_channels(4))
        assert doped.kinetic_inductance_per_length == pytest.approx(
            pristine.kinetic_inductance_per_length / 2.0
        )

    def test_effective_conductivity_rises_with_length_then_saturates(self):
        lengths = [nm(50), nm(500), um(5), um(50)]
        sigmas = [
            SWCNTInterconnect(diameter=nm(1), length=length).effective_conductivity
            for length in lengths
        ]
        assert sigmas[0] < sigmas[1] < sigmas[2]
        # saturation: relative growth slows down
        assert (sigmas[3] - sigmas[2]) / sigmas[2] < (sigmas[1] - sigmas[0]) / sigmas[0]

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SWCNTInterconnect(diameter=0.0, length=um(1))
        with pytest.raises(ValueError):
            SWCNTInterconnect(diameter=nm(1), length=0.0)
        with pytest.raises(ValueError):
            SWCNTInterconnect(diameter=nm(1), length=um(1), contact_resistance=-1.0)
        with pytest.raises(ValueError):
            SWCNTInterconnect(diameter=nm(1), length=um(1), temperature=0.0)
        with pytest.raises(ValueError):
            SWCNTInterconnect(diameter=nm(1), length=um(1), defect_mfp=0.0)

    def test_with_length_copy(self):
        tube = SWCNTInterconnect(diameter=nm(1), length=um(1))
        longer = tube.with_length(um(2))
        assert longer.length == pytest.approx(um(2))
        assert tube.length == pytest.approx(um(1))


class TestShellFilling:
    def test_paper_rule_counts_diameter_minus_one(self):
        # Paper: "Number of shells (Ns) is derived as diameter - 1".
        assert len(shell_diameters(nm(10), ShellFillingRule.PAPER_SIMPLIFIED)) == 9
        assert len(shell_diameters(nm(14), ShellFillingRule.PAPER_SIMPLIFIED)) == 13
        assert len(shell_diameters(nm(22), ShellFillingRule.PAPER_SIMPLIFIED)) == 21

    def test_vdw_rule_spacing(self):
        shells = shell_diameters(nm(10), ShellFillingRule.VAN_DER_WAALS)
        assert shells[0] == pytest.approx(nm(10))
        assert shells[0] - shells[1] == pytest.approx(0.68e-9, rel=1e-6)
        assert min(shells) >= nm(10) * 0.5 - 1e-12

    def test_inner_diameter_ratio_respected(self):
        shells = shell_diameters(nm(20), ShellFillingRule.PAPER_SIMPLIFIED, inner_diameter_ratio=0.5)
        assert min(shells) == pytest.approx(nm(10))

    def test_single_shell_for_tiny_tube(self):
        assert shell_diameters(nm(1.5), ShellFillingRule.PAPER_SIMPLIFIED) == [nm(1.5)]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            shell_diameters(0.0)
        with pytest.raises(ValueError):
            shell_diameters(nm(10), inner_diameter_ratio=1.5)


class TestMWCNT:
    def test_shell_count_matches_paper_rule(self):
        assert MWCNTInterconnect(outer_diameter=nm(10), length=um(100)).shell_count == 9
        assert MWCNTInterconnect(outer_diameter=nm(22), length=um(100)).shell_count == 21

    def test_total_channels(self):
        tube = MWCNTInterconnect(
            outer_diameter=nm(10), length=um(100), doping=DopingProfile.from_channels(4)
        )
        assert tube.total_channels == pytest.approx(4 * 9)

    def test_equation_4_structure(self):
        # R = 1 / (Nc Ns G_1channel) with all shells sharing the outer-shell MFP.
        tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(500), per_shell_mfp=False)
        g_1channel = QUANTUM_CONDUCTANCE / (1.0 + tube.length / tube.mean_free_path)
        expected = 1.0 / (2.0 * 9 * g_1channel)
        assert tube.intrinsic_resistance == pytest.approx(expected, rel=1e-9)

    def test_doping_reduces_resistance_proportionally(self):
        pristine = MWCNTInterconnect(outer_diameter=nm(14), length=um(500))
        doped = pristine.with_doping(DopingProfile.from_channels(10))
        assert doped.resistance == pytest.approx(pristine.resistance * 2.0 / 10.0, rel=1e-9)

    def test_capacitance_approximately_electrostatic(self):
        # Eq. (5): C_MW ~ C_E because the quantum capacitance is much larger.
        tube = MWCNTInterconnect(outer_diameter=nm(22), length=um(500))
        assert tube.capacitance_per_length == pytest.approx(
            tube.electrostatic_capacitance_per_length, rel=0.10
        )

    def test_capacitance_nearly_doping_independent(self):
        pristine = MWCNTInterconnect(outer_diameter=nm(14), length=um(500))
        doped = pristine.with_doping(DopingProfile.from_channels(10))
        assert doped.capacitance == pytest.approx(pristine.capacitance, rel=0.05)

    def test_larger_diameter_lower_resistance(self):
        small = MWCNTInterconnect(outer_diameter=nm(10), length=um(500))
        large = MWCNTInterconnect(outer_diameter=nm(22), length=um(500))
        assert large.resistance < small.resistance

    def test_per_shell_mfp_gives_higher_resistance(self):
        shared = MWCNTInterconnect(outer_diameter=nm(10), length=um(500), per_shell_mfp=False)
        individual = MWCNTInterconnect(outer_diameter=nm(10), length=um(500), per_shell_mfp=True)
        # Inner shells have shorter MFPs, so resolving them raises resistance.
        assert individual.resistance > shared.resistance

    def test_lumped_plus_distributed_close_to_total(self):
        tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(500), contact_resistance=20e3)
        recomposed = tube.lumped_contact_resistance + tube.resistance_per_length * tube.length
        assert recomposed == pytest.approx(tube.resistance, rel=0.01)

    def test_vdw_filling_has_fewer_shells_than_paper_rule(self):
        paper = MWCNTInterconnect(outer_diameter=nm(22), length=um(100))
        vdw = MWCNTInterconnect(
            outer_diameter=nm(22), length=um(100), filling_rule=ShellFillingRule.VAN_DER_WAALS
        )
        assert vdw.shell_count < paper.shell_count
        assert vdw.resistance > paper.resistance

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            MWCNTInterconnect(outer_diameter=0.0, length=um(1))
        with pytest.raises(ValueError):
            MWCNTInterconnect(outer_diameter=nm(10), length=-um(1))
        with pytest.raises(ValueError):
            MWCNTInterconnect(outer_diameter=nm(10), length=um(1), contact_resistance=-5.0)

    def test_elmore_style_delay_estimate_positive(self):
        tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(500))
        assert tube.rc_delay_estimate() > 0


class TestMWCNTPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        diameter_nm=st.floats(min_value=4.0, max_value=30.0),
        length_um=st.floats(min_value=1.0, max_value=1000.0),
        channels=st.floats(min_value=2.0, max_value=10.0),
    )
    def test_resistance_positive_and_monotone_in_doping(self, diameter_nm, length_um, channels):
        pristine = MWCNTInterconnect(outer_diameter=nm(diameter_nm), length=um(length_um))
        doped = pristine.with_doping(DopingProfile.from_channels(channels))
        assert pristine.resistance > 0
        assert doped.resistance <= pristine.resistance + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(
        length_a=st.floats(min_value=1.0, max_value=500.0),
        length_b=st.floats(min_value=1.0, max_value=500.0),
    )
    def test_resistance_monotone_in_length(self, length_a, length_b):
        shorter, longer = sorted([length_a, length_b])
        tube_short = MWCNTInterconnect(outer_diameter=nm(14), length=um(shorter))
        tube_long = MWCNTInterconnect(outer_diameter=nm(14), length=um(longer))
        assert tube_long.resistance >= tube_short.resistance - 1e-12
        assert tube_long.capacitance >= tube_short.capacitance - 1e-20
