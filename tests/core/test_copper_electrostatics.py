"""Tests for the copper reference model and electrostatic capacitance helpers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import COPPER_BULK_RESISTIVITY, VACUUM_PERMITTIVITY
from repro.core import CopperInterconnect, copper_resistivity
from repro.core.copper import (
    fuchs_sondheimer_increase,
    mayadas_shatzkes_factor,
    paper_reference_copper_line,
)
from repro.core.electrostatics import (
    coupled_line_capacitance,
    parallel_plate_capacitance,
    series_capacitance,
    wire_between_planes_capacitance,
    wire_over_plane_capacitance,
)
from repro.units import nm, um


class TestSizeEffects:
    def test_wide_line_approaches_bulk(self):
        rho = copper_resistivity(um(1), um(1))
        assert rho == pytest.approx(COPPER_BULK_RESISTIVITY, rel=0.15)

    def test_narrow_line_much_more_resistive(self):
        rho = copper_resistivity(nm(20), nm(40))
        assert rho > 2.0 * COPPER_BULK_RESISTIVITY

    def test_resistivity_monotone_in_width(self):
        widths = [nm(15), nm(30), nm(60), nm(120), nm(500)]
        rhos = [copper_resistivity(w, nm(50)) for w in widths]
        assert all(a > b for a, b in zip(rhos, rhos[1:]))

    def test_size_effects_can_be_disabled(self):
        rho = copper_resistivity(nm(20), nm(20), include_size_effects=False)
        assert rho == pytest.approx(COPPER_BULK_RESISTIVITY)

    def test_temperature_coefficient(self):
        hot = copper_resistivity(nm(100), nm(50), temperature=400.0)
        cold = copper_resistivity(nm(100), nm(50), temperature=300.0)
        assert hot > cold

    def test_fuchs_sondheimer_specular_limit(self):
        assert fuchs_sondheimer_increase(nm(20), nm(20), specularity=1.0) == pytest.approx(0.0)

    def test_mayadas_shatzkes_no_reflection_limit(self):
        assert mayadas_shatzkes_factor(nm(50), reflectivity=0.0) == pytest.approx(1.0)

    def test_mayadas_shatzkes_increases_with_reflectivity(self):
        low = mayadas_shatzkes_factor(nm(30), reflectivity=0.1)
        high = mayadas_shatzkes_factor(nm(30), reflectivity=0.6)
        assert high > low >= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fuchs_sondheimer_increase(0.0, nm(10))
        with pytest.raises(ValueError):
            fuchs_sondheimer_increase(nm(10), nm(10), specularity=1.5)
        with pytest.raises(ValueError):
            mayadas_shatzkes_factor(0.0)
        with pytest.raises(ValueError):
            mayadas_shatzkes_factor(nm(10), reflectivity=1.0)
        with pytest.raises(ValueError):
            copper_resistivity(nm(10), nm(10), temperature=-1.0)


class TestCopperInterconnect:
    def test_paper_reference_line_max_current_is_50ua(self):
        line = paper_reference_copper_line()
        assert line.max_current == pytest.approx(50e-6, rel=0.01)

    def test_resistance_scales_with_length(self):
        short = paper_reference_copper_line(um(100))
        long = paper_reference_copper_line(um(200))
        assert long.resistance == pytest.approx(2 * short.resistance, rel=1e-9)

    def test_barrier_increases_resistance(self):
        bare = CopperInterconnect(width=nm(40), height=nm(80), length=um(10))
        with_barrier = CopperInterconnect(
            width=nm(40), height=nm(80), length=um(10), barrier_thickness=nm(3)
        )
        assert with_barrier.resistance > bare.resistance

    def test_barrier_cannot_consume_line(self):
        with pytest.raises(ValueError):
            CopperInterconnect(width=nm(10), height=nm(10), length=um(1), barrier_thickness=nm(5))

    def test_effective_conductivity_below_bulk(self):
        line = paper_reference_copper_line(um(10))
        assert line.effective_conductivity < 1.0 / COPPER_BULK_RESISTIVITY

    def test_capacitance_positive_and_linear_in_length(self):
        short = paper_reference_copper_line(um(100))
        long = paper_reference_copper_line(um(300))
        assert short.capacitance > 0
        assert long.capacitance == pytest.approx(3 * short.capacitance, rel=1e-9)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CopperInterconnect(width=0.0, height=nm(50), length=um(1))

    def test_with_length(self):
        line = paper_reference_copper_line(um(1))
        assert line.with_length(um(5)).length == pytest.approx(um(5))


class TestElectrostatics:
    def test_wire_over_plane_formula(self):
        d, h, eps_r = nm(10), nm(60), 2.2
        expected = 2 * math.pi * eps_r * VACUUM_PERMITTIVITY / math.acosh(2 * h / d)
        assert wire_over_plane_capacitance(d, h, eps_r) == pytest.approx(expected)

    def test_capacitance_increases_when_wire_approaches_plane(self):
        far = wire_over_plane_capacitance(nm(10), nm(200))
        near = wire_over_plane_capacitance(nm(10), nm(20))
        assert near > far

    def test_wire_between_planes_doubles_single_plane(self):
        single = wire_over_plane_capacitance(nm(10), nm(50))
        double = wire_between_planes_capacitance(nm(10), nm(100))
        assert double == pytest.approx(2 * single)

    def test_coupling_decreases_with_spacing(self):
        close = coupled_line_capacitance(nm(10), nm(30))
        far = coupled_line_capacitance(nm(10), nm(300))
        assert close > far

    def test_parallel_plate_scaling(self):
        narrow = parallel_plate_capacitance(nm(50), nm(100))
        wide = parallel_plate_capacitance(nm(100), nm(100))
        assert wide == pytest.approx(2 * narrow)

    def test_series_capacitance_limits(self):
        assert series_capacitance(1e-10, 1e-10) == pytest.approx(0.5e-10)
        assert series_capacitance(0.0, 1e-10) == 0.0
        # The smaller capacitance dominates the series combination.
        assert series_capacitance(1e-16, 1e-10) == pytest.approx(1e-16, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            wire_over_plane_capacitance(0.0, nm(10))
        with pytest.raises(ValueError):
            wire_over_plane_capacitance(nm(10), nm(4))
        with pytest.raises(ValueError):
            wire_between_planes_capacitance(nm(10), nm(5))
        with pytest.raises(ValueError):
            coupled_line_capacitance(nm(10), nm(10))
        with pytest.raises(ValueError):
            parallel_plate_capacitance(0.0, nm(10))
        with pytest.raises(ValueError):
            parallel_plate_capacitance(nm(10), nm(10), fringe_factor=0.5)
        with pytest.raises(ValueError):
            series_capacitance(-1.0, 1.0)


class TestCopperPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        width_nm=st.floats(min_value=10.0, max_value=1000.0),
        height_nm=st.floats(min_value=10.0, max_value=1000.0),
    )
    def test_resistivity_always_at_least_bulk(self, width_nm, height_nm):
        rho = copper_resistivity(nm(width_nm), nm(height_nm))
        assert rho >= COPPER_BULK_RESISTIVITY * 0.999

    @settings(max_examples=30, deadline=None)
    @given(
        diameter_nm=st.floats(min_value=1.0, max_value=50.0),
        gap_nm=st.floats(min_value=1.0, max_value=500.0),
    )
    def test_wire_over_plane_capacitance_positive(self, diameter_nm, gap_nm):
        height = nm(diameter_nm) / 2.0 + nm(gap_nm)
        c = wire_over_plane_capacitance(nm(diameter_nm), height)
        assert c > 0
