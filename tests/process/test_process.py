"""Tests for the process substrate: growth, catalysts, variability, doping stability."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.doping import DopantSite, DopingProfile
from repro.process import (
    CO_CATALYST,
    Catalyst,
    ChiralityDistribution,
    DopingStabilityModel,
    FE_CATALYST,
    FillProcess,
    GrowthRecipe,
    VariabilityResult,
    WaferMap,
    cmos_compatible,
    defect_density,
    defect_limited_mfp,
    doping_retention,
    resistance_variability,
    sample_tubes,
    simulate_fill,
    simulate_growth,
    simulate_wafer_growth,
)
from repro.process.catalyst import CMOS_BEOL_TEMPERATURE_LIMIT
from repro.process.chirality_dist import diameter_statistics, metallic_fraction_of
from repro.process.composite_process import BundleOrientation, FillMethod, composite_from_process
from repro.process.defects import quality_from_raman, raman_d_over_g
from repro.process.doping_process import internal_vs_external_advantage
from repro.process.growth import growth_quality, growth_temperature_sweep
from repro.process.variability import VariabilityInputs, doping_variability_comparison
from repro.units import celsius_to_kelvin


class TestCatalystAndGrowth:
    def test_co_catalyst_is_cmos_compatible_at_400c(self):
        assert cmos_compatible(CO_CATALYST, celsius_to_kelvin(400.0))

    def test_fe_catalyst_never_cmos_compatible(self):
        assert not cmos_compatible(FE_CATALYST, celsius_to_kelvin(300.0))

    def test_co_catalyst_too_hot_not_compatible(self):
        assert not cmos_compatible(CO_CATALYST, celsius_to_kelvin(500.0))

    def test_cmos_limit_is_400c(self):
        assert CMOS_BEOL_TEMPERATURE_LIMIT == pytest.approx(celsius_to_kelvin(400.0))

    def test_growth_rate_increases_with_temperature(self):
        cold = simulate_growth(GrowthRecipe(temperature=celsius_to_kelvin(350.0)))
        hot = simulate_growth(GrowthRecipe(temperature=celsius_to_kelvin(450.0)))
        assert hot.mean_length > cold.mean_length

    def test_quality_peaks_at_catalyst_optimum(self):
        at_optimum = growth_quality(GrowthRecipe(temperature=CO_CATALYST.optimal_temperature))
        below = growth_quality(GrowthRecipe(temperature=celsius_to_kelvin(350.0)))
        assert at_optimum == pytest.approx(1.0)
        assert below < at_optimum

    def test_paper_recipe_produces_mwcnt_with_4_to_5_walls(self):
        result = simulate_growth(GrowthRecipe(catalyst=FE_CATALYST, temperature=celsius_to_kelvin(700)))
        assert result.mean_diameter == pytest.approx(7.5e-9, rel=0.01)
        assert 4 <= result.walls <= 5

    def test_temperature_sweep_ordering(self):
        temps = [celsius_to_kelvin(t) for t in (350.0, 400.0, 450.0, 500.0)]
        results = growth_temperature_sweep(temps)
        lengths = [r.mean_length for r in results]
        assert lengths == sorted(lengths)
        assert results[0].cmos_compatible and results[1].cmos_compatible
        assert not results[-1].cmos_compatible

    def test_recipe_validation(self):
        with pytest.raises(ValueError):
            GrowthRecipe(temperature=0.0)
        with pytest.raises(ValueError):
            GrowthRecipe(duration=-1.0)
        with pytest.raises(ValueError):
            Catalyst("bad", -1.0, 1.0, 900.0, 100.0, True)


class TestChiralitySampling:
    def test_metallic_fraction_near_one_third(self):
        tubes = sample_tubes(ChiralityDistribution(), n_tubes=3000, seed=1)
        assert metallic_fraction_of(tubes) == pytest.approx(1.0 / 3.0, abs=0.04)

    def test_diameter_statistics_track_distribution(self):
        distribution = ChiralityDistribution(mean_diameter=7.5e-9, diameter_sigma=0.2)
        tubes = sample_tubes(distribution, n_tubes=2000, seed=2)
        stats = diameter_statistics(tubes)
        assert stats["mean"] == pytest.approx(7.5e-9, rel=0.1)
        assert 0.1 < stats["cv"] < 0.35

    def test_metallicity_flag_consistent_with_chirality(self):
        tubes = sample_tubes(ChiralityDistribution(), n_tubes=50, seed=3)
        for tube in tubes:
            assert tube.chirality.is_metallic == tube.is_metallic

    def test_reproducible_with_seed(self):
        a = sample_tubes(ChiralityDistribution(), 20, seed=5)
        b = sample_tubes(ChiralityDistribution(), 20, seed=5)
        assert [t.diameter for t in a] == [t.diameter for t in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            ChiralityDistribution(mean_diameter=0.0)
        with pytest.raises(ValueError):
            ChiralityDistribution(metallic_fraction=0.0)
        with pytest.raises(ValueError):
            sample_tubes(ChiralityDistribution(), 0)
        with pytest.raises(ValueError):
            metallic_fraction_of([])


class TestDefects:
    def test_defect_density_increases_as_quality_drops(self):
        assert defect_density(0.5) > defect_density(1.0)

    def test_defect_limited_mfp_is_inverse_of_density(self):
        assert defect_limited_mfp(0.8) == pytest.approx(1.0 / defect_density(0.8))

    def test_raman_round_trip(self):
        for quality in (0.3, 0.6, 0.9):
            assert quality_from_raman(raman_d_over_g(quality)) == pytest.approx(quality, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            defect_density(0.0)
        with pytest.raises(ValueError):
            quality_from_raman(0.0)


class TestDopingStability:
    def test_internal_more_stable_than_external(self):
        assert internal_vs_external_advantage(temperature=400.0) > 1.0

    def test_retention_decreases_with_time_and_temperature(self):
        model = DopingStabilityModel(DopantSite.INTERNAL)
        assert model.retention(3600.0, 350.0) > model.retention(36000.0, 350.0)
        assert model.retention(3600.0, 350.0) > model.retention(3600.0, 450.0)

    def test_lifetime_definition(self):
        model = DopingStabilityModel(DopantSite.EXTERNAL)
        lifetime = model.lifetime(400.0)
        assert model.retention(lifetime, 400.0) == pytest.approx(1.0 / math.e, rel=1e-6)

    def test_doping_retention_decays_towards_pristine(self):
        profile = DopingProfile.iodine(channels_per_shell=8.0)
        aged = doping_retention(profile, time=1e7, temperature=450.0)
        assert 2.0 <= aged.channels_per_shell < 8.0

    def test_pristine_profile_unchanged(self):
        profile = DopingProfile.pristine()
        assert doping_retention(profile, 1e6, 400.0) == profile

    def test_validation(self):
        with pytest.raises(ValueError):
            DopingStabilityModel(DopantSite.NONE)
        model = DopingStabilityModel(DopantSite.INTERNAL)
        with pytest.raises(ValueError):
            model.retention(-1.0, 300.0)
        with pytest.raises(ValueError):
            model.lifetime(300.0, retention_target=2.0)


class TestVariability:
    def test_doping_reduces_variability_and_opens(self):
        comparison = doping_variability_comparison(n_devices=300, seed=0)
        pristine = comparison["pristine"]
        doped = comparison["doped"]
        assert doped.coefficient_of_variation < pristine.coefficient_of_variation
        assert doped.mean < pristine.mean
        assert doped.open_fraction == 0.0
        # (2/3)^Ns of the pristine devices draw no metallic shell and are open.
        assert pristine.open_fraction > 0.02

    def test_statistics_accessors(self):
        result = resistance_variability(VariabilityInputs(), n_devices=100, seed=1)
        assert result.percentile(95) >= result.median >= result.percentile(5)
        assert result.std >= 0

    def test_reproducible_with_seed(self):
        a = resistance_variability(VariabilityInputs(), n_devices=50, seed=7)
        b = resistance_variability(VariabilityInputs(), n_devices=50, seed=7)
        assert np.array_equal(a.resistances, b.resistances)

    def test_validation(self):
        with pytest.raises(ValueError):
            VariabilityInputs(length=0.0)
        with pytest.raises(ValueError):
            VariabilityInputs(growth_quality_mean=0.0)
        with pytest.raises(ValueError):
            resistance_variability(VariabilityInputs(), n_devices=1)


class TestWaferAndFill:
    def test_wafer_map_covers_300mm(self):
        wafer = simulate_wafer_growth()
        assert wafer.n_dies > 100
        radius = np.sqrt(wafer.x**2 + wafer.y**2)
        assert radius.max() <= 0.15

    def test_uniformity_degrades_with_edge_drop(self):
        good = simulate_wafer_growth(edge_drop=0.02, noise=0.0)
        bad = simulate_wafer_growth(edge_drop=0.3, noise=0.0)
        assert good.uniformity > bad.uniformity

    def test_radial_profile_monotone_for_pure_edge_drop(self):
        wafer = simulate_wafer_growth(edge_drop=0.2, noise=0.0)
        centres, means = wafer.radial_profile(n_bins=6)
        valid = ~np.isnan(means)
        assert np.all(np.diff(means[valid]) <= 1e-9)

    def test_wafer_validation(self):
        with pytest.raises(ValueError):
            simulate_wafer_growth(die_pitch=0.0)
        with pytest.raises(ValueError):
            simulate_wafer_growth(edge_drop=1.5)

    def test_fill_quality_improves_with_time(self):
        short = simulate_fill(FillProcess(deposition_time=300.0))
        long = simulate_fill(FillProcess(deposition_time=3600.0))
        assert long.fill_quality > short.fill_quality

    def test_ecd_needs_conductive_seed(self):
        result = simulate_fill(FillProcess(method=FillMethod.ELECTROCHEMICAL, conductive_seed=False))
        assert not result.feasible
        with pytest.raises(ValueError):
            composite_from_process(
                FillProcess(method=FillMethod.ELECTROCHEMICAL, conductive_seed=False),
                100e-9,
                50e-9,
                1e-6,
            )

    def test_eld_raises_cmos_concern(self):
        assert simulate_fill(FillProcess(method=FillMethod.ELECTROLESS)).cmos_compatibility_concern

    def test_unprepared_ha_bundles_fill_worse(self):
        prepared = simulate_fill(
            FillProcess(orientation=BundleOrientation.HORIZONTAL, ha_preparation=True)
        )
        unprepared = simulate_fill(
            FillProcess(orientation=BundleOrientation.HORIZONTAL, ha_preparation=False)
        )
        assert unprepared.fill_quality < prepared.fill_quality

    def test_composite_from_process(self):
        composite = composite_from_process(FillProcess(), 100e-9, 50e-9, 1e-6)
        assert composite.fill_quality == pytest.approx(
            simulate_fill(FillProcess()).fill_quality
        )

    def test_fill_validation(self):
        with pytest.raises(ValueError):
            FillProcess(cnt_volume_fraction=1.0)
        with pytest.raises(ValueError):
            FillProcess(deposition_time=0.0)


class TestProcessPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(quality=st.floats(min_value=0.05, max_value=1.0))
    def test_defect_mfp_positive_and_bounded(self, quality):
        mfp = defect_limited_mfp(quality)
        assert 0 < mfp <= 4.0e-6 + 1e-12

    @settings(max_examples=20, deadline=None)
    @given(
        time=st.floats(min_value=0.0, max_value=1e9),
        temperature=st.floats(min_value=250.0, max_value=500.0),
    )
    def test_retention_in_unit_interval(self, time, temperature):
        model = DopingStabilityModel(DopantSite.EXTERNAL)
        retention = model.retention(time, temperature)
        assert 0.0 <= retention <= 1.0
