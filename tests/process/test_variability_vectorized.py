"""Vectorised Monte-Carlo variability: parity against the object-path reference."""

import numpy as np
import pytest

from repro.core.doping import DopingProfile
from repro.process.chirality_dist import ChiralityDistribution
from repro.process.variability import (
    VariabilityInputs,
    doping_variability_comparison,
    resistance_variability,
)

PARITY_RTOL = 1.0e-9


def _inputs_matrix() -> list[VariabilityInputs]:
    return [
        VariabilityInputs(),
        VariabilityInputs(doping=DopingProfile.from_channels(6.0)),
        VariabilityInputs(
            length=50e-6,
            distribution=ChiralityDistribution(mean_diameter=14e-9, diameter_sigma=0.3),
            growth_quality_mean=0.5,
            contact_resistance_mean=50e3,
        ),
        VariabilityInputs(
            doping=DopingProfile.from_channels(8.0),
            effectively_metallic_when_doped=False,
        ),
    ]


@pytest.mark.parametrize("inputs", _inputs_matrix())
@pytest.mark.parametrize("seed", [0, 17])
def test_vectorized_matches_object_loop(inputs, seed):
    objects = resistance_variability(inputs, n_devices=60, seed=seed, vectorized=False)
    vectors = resistance_variability(inputs, n_devices=60, seed=seed, vectorized=True)
    # Same random stream -> same devices survive, element-for-element.
    assert vectors.resistances.shape == objects.resistances.shape
    np.testing.assert_allclose(
        vectors.resistances, objects.resistances, rtol=PARITY_RTOL
    )
    assert vectors.open_fraction == objects.open_fraction
    assert vectors.mean == pytest.approx(objects.mean, rel=PARITY_RTOL)
    assert vectors.std == pytest.approx(objects.std, rel=PARITY_RTOL)
    assert vectors.coefficient_of_variation == pytest.approx(
        objects.coefficient_of_variation, rel=PARITY_RTOL
    )


def test_comparison_routes_both_paths_identically():
    loop = doping_variability_comparison(n_devices=40, seed=2, vectorized=False)
    fast = doping_variability_comparison(n_devices=40, seed=2, vectorized=True)
    for key in ("pristine", "doped"):
        np.testing.assert_allclose(
            fast[key].resistances, loop[key].resistances, rtol=PARITY_RTOL
        )


def test_doped_population_suppresses_variability():
    """The paper's Section II.A claim must hold on the vectorised path too."""
    comparison = doping_variability_comparison(n_devices=300, seed=0)
    assert comparison["doped"].mean < comparison["pristine"].mean
    assert (
        comparison["doped"].coefficient_of_variation
        < comparison["pristine"].coefficient_of_variation
    )
    assert comparison["doped"].open_fraction == 0.0


def test_vectorized_validation_matches_legacy():
    with pytest.raises(ValueError):
        resistance_variability(VariabilityInputs(), n_devices=1)
