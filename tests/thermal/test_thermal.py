"""Tests for the thermal substrate: conductivity, heat solver, self-heating, SThM, vias."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MWCNTInterconnect
from repro.core.copper import paper_reference_copper_line
from repro.thermal import (
    HeatLineProblem,
    bundle_thermal_conductivity,
    cnt_thermal_conductivity,
    copper_thermal_conductivity,
    extract_thermal_conductivity,
    self_heating_analysis,
    simulate_sthm_scan,
    solve_heat_line,
    via_temperature_rise,
    via_thermal_resistance,
)
from repro.thermal.conductivity import cnt_to_copper_ratio
from repro.thermal.heat1d import analytic_peak_rise_suspended
from repro.thermal.via import cnt_via_advantage
from repro.units import nm, um


class TestConductivity:
    def test_long_tube_in_paper_range(self):
        value = cnt_thermal_conductivity(length=10e-6)
        assert 3000.0 <= value <= 10000.0

    def test_short_tube_reduced_by_ballistic_effects(self):
        assert cnt_thermal_conductivity(length=100e-9) < cnt_thermal_conductivity(length=10e-6)

    def test_quality_reduces_conductivity(self):
        assert cnt_thermal_conductivity(quality=0.5) < cnt_thermal_conductivity(quality=1.0)

    def test_temperature_reduces_conductivity(self):
        assert cnt_thermal_conductivity(temperature=400.0) < cnt_thermal_conductivity(temperature=300.0)

    def test_copper_reference_value(self):
        assert copper_thermal_conductivity() == pytest.approx(385.0)

    def test_cnt_beats_copper(self):
        assert cnt_to_copper_ratio(length=5e-6) > 5.0

    def test_bundle_rule_of_mixtures(self):
        pure_matrix = bundle_thermal_conductivity(0.0, matrix_conductivity=1.4)
        assert pure_matrix == pytest.approx(1.4)
        full = bundle_thermal_conductivity(1.0, tube_length=10e-6)
        assert full == pytest.approx(cnt_thermal_conductivity(10e-6))
        half = bundle_thermal_conductivity(0.5, tube_length=10e-6, matrix_conductivity=1.4)
        assert pure_matrix < half < full

    def test_validation(self):
        with pytest.raises(ValueError):
            cnt_thermal_conductivity(length=0.0)
        with pytest.raises(ValueError):
            cnt_thermal_conductivity(quality=0.0)
        with pytest.raises(ValueError):
            copper_thermal_conductivity(temperature=0.0)
        with pytest.raises(ValueError):
            bundle_thermal_conductivity(1.5)


class TestHeat1D:
    def _problem(self, **overrides):
        defaults = dict(
            length=1e-6,
            thermal_conductivity=3000.0,
            cross_section_area=5e-17,
            power_per_length=1e3,
        )
        defaults.update(overrides)
        return HeatLineProblem(**defaults)

    def test_matches_analytic_parabola(self):
        problem = self._problem()
        solution = solve_heat_line(problem)
        assert solution.peak_temperature_rise == pytest.approx(
            analytic_peak_rise_suspended(problem), rel=1e-3
        )

    def test_peak_in_the_middle(self):
        solution = solve_heat_line(self._problem())
        peak_index = int(np.argmax(solution.temperatures))
        assert abs(peak_index - solution.temperatures.size // 2) <= 1

    def test_ends_at_contact_temperature(self):
        solution = solve_heat_line(self._problem(contact_temperature=320.0))
        assert solution.temperatures[0] == pytest.approx(320.0)
        assert solution.temperatures[-1] == pytest.approx(320.0)

    def test_substrate_coupling_cools_the_line(self):
        suspended = solve_heat_line(self._problem())
        on_substrate = solve_heat_line(self._problem(substrate_coupling=1.0))
        assert on_substrate.peak_temperature < suspended.peak_temperature

    def test_higher_conductivity_runs_cooler(self):
        cnt = solve_heat_line(self._problem(thermal_conductivity=3000.0))
        copper = solve_heat_line(self._problem(thermal_conductivity=385.0))
        assert cnt.peak_temperature < copper.peak_temperature

    def test_nonuniform_power_profile(self):
        n = 101
        power = np.zeros(n)
        power[40:60] = 2e3
        solution = solve_heat_line(self._problem(power_per_length=power, n_points=n))
        assert solution.peak_temperature > 300.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self._problem(length=0.0)
        with pytest.raises(ValueError):
            self._problem(thermal_conductivity=-1.0)
        with pytest.raises(ValueError):
            self._problem(n_points=2)
        with pytest.raises(ValueError):
            analytic_peak_rise_suspended(self._problem(substrate_coupling=1.0))


class TestSelfHeating:
    def test_converges_and_heats_up(self):
        tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(2))
        result = self_heating_analysis(tube, current=40e-6, substrate_coupling=0.0)
        assert result.converged
        assert result.peak_temperature > 300.0

    def test_zero_current_no_heating(self):
        tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(2))
        result = self_heating_analysis(tube, current=0.0)
        assert result.peak_temperature == pytest.approx(300.0, abs=0.1)
        assert result.dissipated_power == pytest.approx(0.0)

    def test_more_current_more_heat(self):
        tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(2))
        low = self_heating_analysis(tube, current=10e-6)
        high = self_heating_analysis(tube, current=60e-6)
        assert high.peak_temperature > low.peak_temperature

    def test_copper_line_heats_more_than_cnt_for_same_conditions(self):
        copper = paper_reference_copper_line(um(2))
        cnt = MWCNTInterconnect(outer_diameter=nm(10), length=um(2))
        copper_result = self_heating_analysis(
            copper, current=40e-6, thermal_conductivity=385.0, substrate_coupling=0.0
        )
        cnt_result = self_heating_analysis(cnt, current=40e-6, substrate_coupling=0.0)
        # The copper line has a much larger cross-section, so compare the
        # normalised rise per dissipated power instead of the raw rise.
        copper_rise = (copper_result.peak_temperature - 300.0) / copper_result.dissipated_power
        cnt_rise = (cnt_result.peak_temperature - 300.0) / cnt_result.dissipated_power
        assert copper_rise > 0 and cnt_rise > 0

    def test_negative_current_rejected(self):
        tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(2))
        with pytest.raises(ValueError):
            self_heating_analysis(tube, current=-1e-6)


class TestSThM:
    def _problem(self):
        return HeatLineProblem(
            length=2e-6,
            thermal_conductivity=3000.0,
            cross_section_area=5e-17,
            power_per_length=2e3,
        )

    def test_scan_tracks_true_profile(self):
        scan = simulate_sthm_scan(self._problem(), noise_kelvin=0.0, probe_radius=0.0)
        assert np.allclose(scan.temperatures, scan.true_temperatures)

    def test_blur_reduces_peak(self):
        sharp = simulate_sthm_scan(self._problem(), noise_kelvin=0.0, probe_radius=0.0)
        blurred = simulate_sthm_scan(self._problem(), noise_kelvin=0.0, probe_radius=200e-9)
        assert blurred.temperatures.max() <= sharp.temperatures.max() + 1e-9

    def test_conductivity_extraction_recovers_truth(self):
        problem = self._problem()
        scan = simulate_sthm_scan(problem, noise_kelvin=0.1, probe_radius=50e-9, seed=1)
        extracted = extract_thermal_conductivity(scan, problem)
        assert extracted == pytest.approx(3000.0, rel=0.15)

    def test_scan_reproducible_with_seed(self):
        a = simulate_sthm_scan(self._problem(), seed=3)
        b = simulate_sthm_scan(self._problem(), seed=3)
        assert np.array_equal(a.temperatures, b.temperatures)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_sthm_scan(self._problem(), probe_radius=-1.0)
        with pytest.raises(ValueError):
            simulate_sthm_scan(self._problem(), noise_kelvin=-1.0)


class TestVia:
    def test_cnt_via_beats_copper(self):
        assert cnt_via_advantage() > 1.0

    def test_thermal_resistance_scales_with_geometry(self):
        short = via_thermal_resistance(100e-9, 100e-9, "copper")
        tall = via_thermal_resistance(100e-9, 300e-9, "copper")
        assert tall == pytest.approx(3 * short, rel=1e-6)

    def test_composite_between_cnt_and_copper_like(self):
        cnt = via_thermal_resistance(100e-9, 200e-9, "cnt", fill_fraction=0.8)
        composite = via_thermal_resistance(100e-9, 200e-9, "composite", fill_fraction=0.5)
        copper = via_thermal_resistance(100e-9, 200e-9, "copper")
        assert cnt < copper
        assert composite < copper

    def test_temperature_rise_linear_in_heat_flow(self):
        single = via_temperature_rise(1e-6, 100e-9, 200e-9, "cnt")
        double = via_temperature_rise(2e-6, 100e-9, 200e-9, "cnt")
        assert double == pytest.approx(2 * single)

    def test_validation(self):
        with pytest.raises(ValueError):
            via_thermal_resistance(0.0, 100e-9)
        with pytest.raises(ValueError):
            via_thermal_resistance(100e-9, 100e-9, "unobtanium")
        with pytest.raises(ValueError):
            via_temperature_rise(-1.0, 100e-9, 100e-9)


class TestThermalPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        power=st.floats(min_value=1.0, max_value=1e5),
        conductivity=st.floats(min_value=100.0, max_value=10000.0),
    )
    def test_peak_rise_scales_linearly_with_power(self, power, conductivity):
        base = HeatLineProblem(
            length=1e-6,
            thermal_conductivity=conductivity,
            cross_section_area=5e-17,
            power_per_length=power,
        )
        doubled = HeatLineProblem(
            length=1e-6,
            thermal_conductivity=conductivity,
            cross_section_area=5e-17,
            power_per_length=2 * power,
        )
        rise = solve_heat_line(base).peak_temperature_rise
        rise2 = solve_heat_line(doubled).peak_temperature_rise
        assert rise2 == pytest.approx(2 * rise, rel=1e-6)
