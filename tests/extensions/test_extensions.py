"""Tests for the extension modules: repeaters, energy study, TSVs, crosstalk, wafer test."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.energy import (
    best_material_per_length,
    candidate_lines,
    doping_energy_benefit,
    run_energy_study,
)
from repro.characterization.wafer_test import run_wafer_campaign
from repro.characterization.test_layout import StructureKind
from repro.circuit.crosstalk import analyze_crosstalk
from repro.circuit.repeaters import (
    compare_repeated_lines,
    optimal_repeater_design,
    segment_delay,
)
from repro.core import DopingProfile, InterconnectLine, MWCNTInterconnect
from repro.core.copper import paper_reference_copper_line
from repro.core.tsv import ThroughSiliconVia, tsv_comparison
from repro.units import nm, um


def mwcnt_line(length_um=1000.0, channels=2.0, contact=20e3) -> InterconnectLine:
    doping = DopingProfile.pristine() if channels == 2.0 else DopingProfile.from_channels(channels)
    return InterconnectLine(
        MWCNTInterconnect(
            outer_diameter=nm(14), length=um(length_um), doping=doping, contact_resistance=contact
        )
    )


class TestRepeaters:
    def test_repeaters_beat_single_driver_for_long_lines(self):
        line = mwcnt_line(2000.0)
        design = optimal_repeater_design(line)
        single = segment_delay(line, 1, design.repeater_size)
        assert design.n_repeaters > 1
        assert design.total_delay < single

    def test_short_line_needs_few_repeaters(self):
        long_design = optimal_repeater_design(mwcnt_line(2000.0))
        short_design = optimal_repeater_design(mwcnt_line(100.0))
        assert short_design.n_repeaters <= long_design.n_repeaters

    def test_doped_line_needs_fewer_or_equal_repeaters(self):
        pristine = optimal_repeater_design(mwcnt_line(1000.0, channels=2.0))
        doped = optimal_repeater_design(mwcnt_line(1000.0, channels=10.0))
        assert doped.n_repeaters <= pristine.n_repeaters
        assert doped.total_delay <= pristine.total_delay * 1.001

    def test_design_figures_of_merit_consistent(self):
        design = optimal_repeater_design(mwcnt_line(500.0))
        assert design.energy_delay_product == pytest.approx(
            design.total_energy * design.total_delay
        )
        assert design.delay_per_length == pytest.approx(design.total_delay / um(500.0))
        assert design.repeater_area > 0

    def test_comparison_table(self):
        lines = {
            "Cu": InterconnectLine(paper_reference_copper_line(um(500))),
            "MWCNT": mwcnt_line(500.0),
        }
        records = compare_repeated_lines(lines)
        assert len(records) == 2
        assert all(record["delay_ps"] > 0 and record["energy_fJ"] > 0 for record in records)

    def test_validation(self):
        line = mwcnt_line(100.0)
        with pytest.raises(ValueError):
            segment_delay(line, 0, 1.0)
        with pytest.raises(ValueError):
            segment_delay(line, 1, 0.0)
        with pytest.raises(ValueError):
            optimal_repeater_design(line, max_repeaters=0)


class TestEnergyStudy:
    def test_study_covers_all_materials_and_lengths(self):
        records = run_energy_study(lengths_um=(200.0, 1000.0))
        assert len(records) == 8
        assert {record["line"] for record in records} == {
            "Cu",
            "MWCNT pristine",
            "MWCNT doped",
            "Cu-CNT composite",
        }

    def test_doping_improves_delay_and_edp(self):
        benefit = doping_energy_benefit(length_um=500.0)
        assert benefit["delay_ratio"] < 1.0
        assert benefit["edp_ratio"] < 1.0
        # switching energy is essentially unchanged by doping
        assert benefit["energy_ratio"] == pytest.approx(1.0, abs=0.1)

    def test_best_material_lookup(self):
        records = run_energy_study(lengths_um=(500.0,))
        winners = best_material_per_length(records, metric="delay_ps")
        assert len(winners) == 1
        assert list(winners.values())[0] in {
            "Cu",
            "MWCNT pristine",
            "MWCNT doped",
            "Cu-CNT composite",
        }

    def test_candidate_lines_share_length(self):
        lines = candidate_lines(300.0)
        lengths = {round(line.length * 1e6, 6) for line in lines.values()}
        assert lengths == {300.0}


class TestTSV:
    def test_comparison_rows(self):
        rows = tsv_comparison()
        assert [row["fill"] for row in rows] == ["copper", "cnt", "composite"]
        copper, cnt, composite = rows
        # CNT/composite TSVs carry far more current and conduct heat better.
        assert cnt["max_current_mA"] > 10 * copper["max_current_mA"]
        assert cnt["thermal_resistance_K_per_W"] < copper["thermal_resistance_K_per_W"]
        assert composite["resistance_mohm"] < cnt["resistance_mohm"]

    def test_doping_reduces_cnt_tsv_resistance(self):
        pristine = ThroughSiliconVia(diameter=5e-6, height=50e-6, fill="cnt")
        doped = ThroughSiliconVia(
            diameter=5e-6, height=50e-6, fill="cnt", doping=DopingProfile.from_channels(6)
        )
        assert doped.resistance < pristine.resistance

    def test_capacitance_scales_with_height(self):
        short = ThroughSiliconVia(diameter=5e-6, height=25e-6)
        tall = ThroughSiliconVia(diameter=5e-6, height=50e-6)
        assert tall.capacitance == pytest.approx(2 * short.capacitance, rel=1e-6)

    def test_rc_product_and_fill_swap(self):
        tsv = ThroughSiliconVia(diameter=5e-6, height=50e-6, fill="cnt")
        assert tsv.rc_product() > 0
        assert tsv.with_fill("copper").fill == "copper"

    def test_temperature_rise_linear(self):
        tsv = ThroughSiliconVia(diameter=5e-6, height=50e-6)
        assert tsv.temperature_rise(2e-3) == pytest.approx(2 * tsv.temperature_rise(1e-3))

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughSiliconVia(diameter=0.0, height=50e-6)
        with pytest.raises(ValueError):
            ThroughSiliconVia(diameter=5e-6, height=50e-6, fill="gold")
        with pytest.raises(ValueError):
            ThroughSiliconVia(diameter=5e-6, height=50e-6, liner_thickness=3e-6)
        with pytest.raises(ValueError):
            ThroughSiliconVia(diameter=5e-6, height=50e-6).temperature_rise(-1.0)


class TestCrosstalk:
    @pytest.fixture(scope="class")
    def line(self):
        return InterconnectLine(
            MWCNTInterconnect(outer_diameter=nm(10), length=um(100), contact_resistance=100e3),
            n_segments=8,
        )

    def test_noise_increases_with_coupling(self, line):
        weak = analyze_crosstalk(line, coupling_capacitance=0.5e-15, n_time_steps=300)
        strong = analyze_crosstalk(line, coupling_capacitance=5e-15, n_time_steps=300)
        assert strong.noise_peak > weak.noise_peak
        assert 0.0 < strong.noise_peak_fraction < 1.0

    def test_opposite_switching_pushes_out_delay(self, line):
        result = analyze_crosstalk(line, coupling_capacitance=3e-15, n_time_steps=300)
        assert result.victim_delay_opposite_switching > result.victim_delay_quiet
        assert result.delay_pushout > 0

    def test_zero_coupling_is_quiet(self, line):
        result = analyze_crosstalk(line, coupling_capacitance=0.0, n_time_steps=200)
        assert result.noise_peak_fraction < 0.05
        assert abs(result.delay_pushout) < 0.1

    def test_validation(self, line):
        with pytest.raises(ValueError):
            analyze_crosstalk(line, coupling_capacitance=-1e-15)


class TestWaferCampaign:
    def test_campaign_covers_layout_and_dies(self):
        campaign = run_wafer_campaign(max_dies=20, seed=1)
        assert campaign.n_measurements > 100
        kinds = {m.kind for m in campaign.measurements}
        assert StructureKind.SINGLE_LINE in kinds and StructureKind.TLM in kinds

    def test_statistics_by_kind(self):
        campaign = run_wafer_campaign(max_dies=20, seed=1)
        rows = campaign.statistics_by_kind()
        assert len(rows) >= 4
        assert all(row["n"] > 0 and row["mean_ohm"] > 0 for row in rows)

    def test_edge_runs_more_resistive_than_centre(self):
        campaign = run_wafer_campaign(max_dies=60, seed=0)
        assert campaign.edge_to_centre_ratio() > 1.0

    def test_tight_spec_reduces_yield(self):
        loose = run_wafer_campaign(max_dies=30, seed=2, spec_window=(0.5, 2.0))
        tight = run_wafer_campaign(max_dies=30, seed=2, spec_window=(0.97, 1.03))
        assert tight.yield_fraction() < loose.yield_fraction()

    def test_copper_reference_wafer(self):
        campaign = run_wafer_campaign(technology="copper", max_dies=10, seed=0)
        assert "Cu reference" in campaign.technology_label
        assert campaign.yield_fraction() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_wafer_campaign(technology="aluminium")
        with pytest.raises(ValueError):
            run_wafer_campaign(spec_window=(2.0, 1.0))


class TestExtensionsPropertyBased:
    @settings(max_examples=10, deadline=None)
    @given(length_um=st.floats(min_value=100.0, max_value=3000.0))
    def test_repeatered_delay_grows_with_length(self, length_um):
        short = optimal_repeater_design(mwcnt_line(length_um))
        long = optimal_repeater_design(mwcnt_line(length_um * 2))
        assert long.total_delay > short.total_delay * 1.2
