"""Batched transient evaluation: bitwise identity with serial runs.

``batched_transient_analysis`` stacks same-topology transients into one
vectorised Newton loop.  The contract these tests pin is *bitwise*
identity: every float a batched run produces must equal what the serial
path produces for the same job, so batching can never perturb a result,
a content hash, or a cache key.
"""

import numpy as np

from repro.circuit import Circuit, Step, transient_analysis
from repro.circuit.batched import (
    TransientJob,
    batched_transient_analysis,
    topology_signature,
)
from repro.circuit.delay import (
    measure_inverter_line_delay,
    measure_inverter_line_delay_batch,
)
from repro.circuit.inverter import Inverter, add_supply
from repro.circuit.mna import MNAAssembler
from repro.circuit.rcline import add_rc_ladder
from repro.circuit.technology import NODE_45NM
from repro.core.line import DistributedRC


def _line(contact_resistance: float, n_segments: int = 8) -> DistributedRC:
    return DistributedRC(
        total_resistance=1e4,
        total_capacitance=4e-14,
        contact_resistance=contact_resistance,
        n_segments=n_segments,
    )


def _inverter_circuit(contact_resistance: float, n_segments: int = 8) -> Circuit:
    circuit = Circuit("batched probe")
    add_supply(circuit, NODE_45NM)
    circuit.add_voltage_source(
        "vin", "in", "0", Step(0.0, NODE_45NM.supply_voltage, rise_time=5e-12)
    )
    Inverter("drv", "in", "near", technology=NODE_45NM).add_to(circuit)
    add_rc_ladder(
        circuit, _line(contact_resistance, n_segments), "near", "far", name_prefix="line"
    )
    circuit.add_capacitor("cl", "far", "0", 2e-15)
    return circuit


def _jobs(contacts, n_segments: int = 8) -> list:
    return [
        TransientJob(_inverter_circuit(contact, n_segments), 2e-10, 1e-12)
        for contact in contacts
    ]


def _assert_results_identical(batched, serial):
    assert len(batched) == len(serial)
    for got, want in zip(batched, serial):
        assert np.array_equal(got.times, want.times)
        assert set(got.node_voltages) == set(want.node_voltages)
        for node in want.node_voltages:
            assert np.array_equal(got.voltage(node), want.voltage(node)), node


class TestBatchedTransient:
    def test_bitwise_identical_to_serial(self):
        contacts = [1e3, 5e3, 2e4, 1e5]
        batched = batched_transient_analysis(_jobs(contacts))
        serial = [
            transient_analysis(job.circuit, job.stop_time, job.time_step)
            for job in _jobs(contacts)
        ]
        _assert_results_identical(batched, serial)

    def test_mixed_topologies_grouped_independently(self):
        """Different segment counts land in different stacks, same answers."""
        jobs = _jobs([1e3, 1e4], n_segments=6) + _jobs([1e3, 1e4], n_segments=10)
        batched = batched_transient_analysis(jobs)
        serial = [
            transient_analysis(job.circuit, job.stop_time, job.time_step)
            for job in jobs
        ]
        _assert_results_identical(batched, serial)

    def test_singleton_batch(self):
        jobs = _jobs([7e3])
        batched = batched_transient_analysis(jobs)
        serial = [transient_analysis(jobs[0].circuit, 2e-10, 1e-12)]
        _assert_results_identical(batched, serial)

    def test_empty_batch(self):
        assert batched_transient_analysis([]) == []

    def test_topology_signature_groups_same_structure(self):
        a = TransientJob(_inverter_circuit(1e3), 2e-10, 1e-12)
        b = TransientJob(_inverter_circuit(9e4), 2e-10, 1e-12)
        c = TransientJob(_inverter_circuit(1e3, n_segments=10), 2e-10, 1e-12)
        sig_a = topology_signature(a, MNAAssembler(a.circuit))
        sig_b = topology_signature(b, MNAAssembler(b.circuit))
        sig_c = topology_signature(c, MNAAssembler(c.circuit))
        assert sig_a == sig_b
        assert sig_a != sig_c


class TestBatchedDelay:
    def test_delay_batch_identical_to_serial(self):
        lines = [_line(1e5 + 2.5e4 * index) for index in range(4)]
        batched = measure_inverter_line_delay_batch(lines, n_time_steps=150)
        serial = [measure_inverter_line_delay(line, n_time_steps=150) for line in lines]
        for got, want in zip(batched, serial):
            assert got.propagation_delay == want.propagation_delay
            assert got.receiver_output_delay == want.receiver_output_delay
            assert got.far_end_rise_time == want.far_end_rise_time

    def test_fig12_records_batch_identical(self):
        from repro.analysis.fig12_delay_ratio import (
            DelayRatioStudy,
            fig12_records,
            fig12_records_batch,
        )

        studies = [
            DelayRatioStudy(
                diameters_nm=(10.0,),
                lengths_um=(10.0, 50.0),
                channel_counts=(2.0, 8.0),
                n_segments=6,
            ),
            DelayRatioStudy(
                diameters_nm=(14.0,),
                lengths_um=(10.0,),
                channel_counts=(2.0, 4.0),
                n_segments=6,
            ),
        ]
        batched = fig12_records_batch(studies)
        serial = [fig12_records(study) for study in studies]
        assert batched == serial
