"""Compiled sparse MNA: structure, parity and backend-selection tests.

The compiled path must be a drop-in replacement for the dense assembler:
identical matrices/rhs for identical inputs, identical waveforms from
``transient_analysis`` regardless of backend, and a well-defined size
threshold with a test override.
"""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    SPARSE_SIZE_THRESHOLD,
    Step,
    resolve_backend,
    solver_backend,
    transient_analysis,
)
from repro.circuit.compiled import ArrayState, CompiledMNA
from repro.circuit.inverter import Inverter, add_supply
from repro.circuit.mna import CompanionState, MNAAssembler
from repro.circuit.rcline import add_rc_ladder
from repro.circuit.technology import NODE_45NM
from repro.core.line import DistributedRC

PARITY_RTOL = 1.0e-9


def _rc_ladder_circuit(n_segments: int = 30) -> Circuit:
    circuit = Circuit("rc ladder")
    circuit.add_voltage_source("vin", "a", "0", Step(0.0, 1.0, delay=1e-12, rise_time=5e-12))
    circuit.add_resistor("rdrv", "a", "n0", 1e3)
    ladder = DistributedRC(
        total_resistance=2e4,
        total_capacitance=5e-14,
        contact_resistance=4e3,
        n_segments=n_segments,
    )
    add_rc_ladder(circuit, ladder, "n0", "far", name_prefix="dut")
    circuit.add_capacitor("cl", "far", "0", 2e-15)
    return circuit


def _rlc_circuit() -> Circuit:
    circuit = Circuit("rlc")
    circuit.add_voltage_source("vin", "a", "0", Step(0.0, 1.0, rise_time=1e-12))
    circuit.add_resistor("r1", "a", "b", 50.0)
    circuit.add_inductor("l1", "b", "c", 1e-9)
    circuit.add_capacitor("c1", "c", "0", 1e-12)
    return circuit


def _inverter_line_circuit() -> Circuit:
    circuit = Circuit("inverter line")
    add_supply(circuit, NODE_45NM)
    v_dd = NODE_45NM.supply_voltage
    circuit.add_voltage_source("vin", "in", "0", Step(0.0, v_dd, delay=2e-12, rise_time=4e-12))
    Inverter("drv", "in", "near", technology=NODE_45NM).add_to(circuit)
    ladder = DistributedRC(
        total_resistance=1e4, total_capacitance=2e-14, contact_resistance=2e3, n_segments=12
    )
    add_rc_ladder(circuit, ladder, "near", "far", name_prefix="dut")
    Inverter("rcv", "far", "out", technology=NODE_45NM).add_to(circuit)
    return circuit


def _max_relative_error(a, b) -> float:
    scale = max(
        max(np.max(np.abs(w)) for w in a.node_voltages.values()), 1e-30
    )
    return max(
        float(np.max(np.abs(a.voltage(n) - b.voltage(n)))) for n in a.node_voltages
    ) / scale


class TestBackendSelection:
    def test_small_circuits_stay_dense(self):
        assert resolve_backend(SPARSE_SIZE_THRESHOLD - 1) == "dense"

    def test_large_circuits_go_sparse(self):
        assert resolve_backend(SPARSE_SIZE_THRESHOLD) == "sparse"

    def test_explicit_argument_wins(self):
        assert resolve_backend(2, "sparse") == "sparse"
        assert resolve_backend(10_000, "dense") == "dense"

    def test_override_context(self):
        with solver_backend("sparse"):
            assert resolve_backend(2) == "sparse"
            with solver_backend("dense"):
                assert resolve_backend(10_000) == "dense"
            assert resolve_backend(2) == "sparse"
        assert resolve_backend(2) == "dense"

    def test_explicit_argument_beats_override(self):
        with solver_backend("dense"):
            assert resolve_backend(2, "sparse") == "sparse"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend(10, "magic")
        with pytest.raises(ValueError):
            with solver_backend("magic"):
                pass  # pragma: no cover


class TestCompiledAssembly:
    """The compiled system must match the dense assembler entry for entry."""

    @pytest.mark.parametrize("method", ["trapezoidal", "backward_euler"])
    @pytest.mark.parametrize(
        "builder", [_rc_ladder_circuit, _rlc_circuit, _inverter_line_circuit]
    )
    def test_matrix_and_rhs_match_dense(self, builder, method):
        circuit = builder()
        dt = 1e-12
        assembler = MNAAssembler(circuit)
        compiled = CompiledMNA(circuit, dt=dt, method=method)

        rng = np.random.default_rng(7)
        guess = rng.normal(scale=0.4, size=assembler.size)
        state = CompanionState.initial(circuit)
        dense_matrix, dense_rhs = assembler.assemble(
            3e-12, guess, state=state, dt=dt, method=method
        )
        sparse_matrix, sparse_rhs = compiled.assemble(
            3e-12, guess, ArrayState.from_companion(state, circuit)
        )
        np.testing.assert_allclose(
            sparse_matrix.toarray(), dense_matrix, rtol=1e-13, atol=1e-30
        )
        np.testing.assert_allclose(sparse_rhs, dense_rhs, rtol=1e-13, atol=1e-30)

    @pytest.mark.parametrize("method", ["trapezoidal", "backward_euler"])
    def test_update_state_matches_dense(self, method):
        circuit = _rlc_circuit()
        dt = 2e-12
        assembler = MNAAssembler(circuit)
        compiled = CompiledMNA(circuit, dt=dt, method=method)
        rng = np.random.default_rng(11)
        solution = rng.normal(size=assembler.size)

        state = CompanionState.initial(circuit)
        dense_next = assembler.update_state(solution, state, dt, method=method)
        array_next = compiled.update_state(
            solution, ArrayState.from_companion(state, circuit)
        ).to_companion(circuit)
        for name, value in dense_next.capacitor_voltages.items():
            assert array_next.capacitor_voltages[name] == pytest.approx(value, rel=1e-13)
        for name, value in dense_next.capacitor_currents.items():
            assert array_next.capacitor_currents[name] == pytest.approx(value, rel=1e-13)
        for name, value in dense_next.inductor_currents.items():
            assert array_next.inductor_currents[name] == pytest.approx(value, rel=1e-13)
        for name, value in dense_next.inductor_voltages.items():
            assert array_next.inductor_voltages[name] == pytest.approx(value, rel=1e-13)

    def test_validation(self):
        circuit = _rc_ladder_circuit(4)
        with pytest.raises(ValueError):
            CompiledMNA(circuit, dt=1e-12, method="euler")
        with pytest.raises(ValueError):
            CompiledMNA(circuit, dt=0.0)


class TestTransientParity:
    @pytest.mark.parametrize("method", ["trapezoidal", "backward_euler"])
    def test_linear_ladder_waveforms_match(self, method):
        circuit = _rc_ladder_circuit()
        dense = transient_analysis(circuit, 1e-9, 4e-12, method=method, backend="dense")
        sparse = transient_analysis(circuit, 1e-9, 4e-12, method=method, backend="sparse")
        assert _max_relative_error(dense, sparse) < PARITY_RTOL
        for source in ("vin",):
            np.testing.assert_allclose(
                dense.current(source), sparse.current(source), rtol=1e-9, atol=1e-15
            )

    def test_rlc_waveforms_match(self):
        circuit = _rlc_circuit()
        dense = transient_analysis(circuit, 2e-10, 5e-13, backend="dense")
        sparse = transient_analysis(circuit, 2e-10, 5e-13, backend="sparse")
        assert _max_relative_error(dense, sparse) < PARITY_RTOL

    def test_nonlinear_waveforms_match(self):
        circuit = _inverter_line_circuit()
        dense = transient_analysis(circuit, 3e-10, 1e-12, backend="dense")
        sparse = transient_analysis(circuit, 3e-10, 1e-12, backend="sparse")
        assert _max_relative_error(dense, sparse) < PARITY_RTOL

    def test_no_dc_start_honours_initial_conditions(self):
        circuit = Circuit("ic")
        circuit.add_voltage_source("vin", "a", "0", 1.0)
        circuit.add_resistor("r1", "a", "b", 1e3)
        circuit.add_capacitor("c1", "b", "0", 1e-12, initial_voltage=0.25)
        dense = transient_analysis(circuit, 1e-9, 2e-12, use_dc_start=False, backend="dense")
        sparse = transient_analysis(circuit, 1e-9, 2e-12, use_dc_start=False, backend="sparse")
        assert _max_relative_error(dense, sparse) < PARITY_RTOL
        assert sparse.voltage("b")[0] == pytest.approx(0.0)

    def test_sparse_default_for_large_circuit(self):
        """Auto-selection must route big circuits through the sparse path."""
        circuit = _rc_ladder_circuit(n_segments=80)
        assert MNAAssembler(circuit).size >= SPARSE_SIZE_THRESHOLD
        auto = transient_analysis(circuit, 4e-10, 4e-12)
        forced = transient_analysis(circuit, 4e-10, 4e-12, backend="sparse")
        assert _max_relative_error(auto, forced) == 0.0
