"""Tests for circuit elements, waveforms and the netlist container."""

import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    Inductor,
    PieceWiseLinear,
    Pulse,
    Resistor,
    Step,
    VoltageSource,
)
from repro.circuit.elements import evaluate_waveform
from repro.circuit.netlist import is_ground
from repro.circuit.technology import NODE_45NM


class TestWaveforms:
    def test_step_levels(self):
        step = Step(initial=0.0, final=1.0, delay=1e-9, rise_time=1e-10)
        assert step(0.0) == 0.0
        assert step(2e-9) == 1.0
        assert step(1.05e-9) == pytest.approx(0.5)

    def test_falling_step(self):
        step = Step(initial=1.0, final=0.0, delay=0.0, rise_time=1e-10)
        assert step(0.0) == 1.0
        assert step(1e-9) == 0.0

    def test_pulse_shape(self):
        pulse = Pulse(low=0.0, high=1.0, delay=0.0, rise_time=1e-10, fall_time=1e-10, width=1e-9)
        assert pulse(0.0) == pytest.approx(0.0)
        assert pulse(5e-10) == pytest.approx(1.0)
        assert pulse(5e-9) == pytest.approx(0.0)

    def test_pulse_periodic(self):
        pulse = Pulse(width=1e-9, rise_time=1e-10, fall_time=1e-10, period=4e-9)
        assert pulse(0.5e-9) == pytest.approx(pulse(4.5e-9))

    def test_pwl_interpolation(self):
        pwl = PieceWiseLinear(((0.0, 0.0), (1e-9, 1.0), (2e-9, 0.5)))
        assert pwl(-1.0) == 0.0
        assert pwl(0.5e-9) == pytest.approx(0.5)
        assert pwl(1.5e-9) == pytest.approx(0.75)
        assert pwl(5e-9) == pytest.approx(0.5)

    def test_pwl_validation(self):
        with pytest.raises(ValueError):
            PieceWiseLinear(())
        with pytest.raises(ValueError):
            PieceWiseLinear(((1e-9, 1.0), (0.5e-9, 0.0)))

    def test_constant_waveform(self):
        assert evaluate_waveform(0.8, 1e-9) == pytest.approx(0.8)

    def test_source_value(self):
        source = VoltageSource("v1", "a", "0", Step(final=1.0, delay=0.0, rise_time=1e-12))
        assert source.value(1e-9) == pytest.approx(1.0)


class TestElements:
    def test_resistor_validation(self):
        with pytest.raises(ValueError):
            Resistor("r1", "a", "b", 0.0)

    def test_capacitor_validation(self):
        with pytest.raises(ValueError):
            Capacitor("c1", "a", "b", -1e-15)

    def test_inductor_validation(self):
        with pytest.raises(ValueError):
            Inductor("l1", "a", "b", 0.0)


class TestCircuit:
    def test_nodes_exclude_ground(self):
        circuit = Circuit()
        circuit.add_resistor("r1", "a", "0", 1e3)
        circuit.add_capacitor("c1", "a", "gnd", 1e-15)
        assert circuit.nodes() == ["a"]
        assert is_ground("0") and is_ground("gnd")

    def test_duplicate_names_rejected(self):
        circuit = Circuit()
        circuit.add_resistor("x", "a", "b", 1e3)
        with pytest.raises(ValueError):
            circuit.add_capacitor("x", "a", "0", 1e-15)

    def test_element_count(self):
        circuit = Circuit()
        circuit.add_resistor("r1", "a", "b", 1e3)
        circuit.add_capacitor("c1", "b", "0", 1e-15)
        circuit.add_voltage_source("v1", "a", "0", 1.0)
        assert circuit.element_count == 3

    def test_mosfet_addition_and_nodes(self):
        circuit = Circuit()
        circuit.add_mosfet("m1", "d", "g", "0", NODE_45NM.nmos_parameters())
        assert set(circuit.nodes()) == {"d", "g"}

    def test_spice_export_contains_elements(self):
        circuit = Circuit(title="export test")
        circuit.add_resistor("r1", "a", "b", 1234.0)
        circuit.add_capacitor("c1", "b", "0", 2e-15)
        circuit.add_voltage_source("v1", "a", "0", Step())
        circuit.add_mosfet("mn", "b", "a", "0", NODE_45NM.nmos_parameters())
        text = circuit.to_spice()
        assert "* export test" in text
        assert "Rr1 a b 1234" in text
        assert "Cc1 b 0 2e-15" in text
        assert "Vv1 a 0 Step" in text
        assert "NMOS" in text
        assert text.strip().endswith(".end")
