"""Newton factorization reuse: freeze-mode parity, refresh triggers, stats.

The freeze policy (``SolverOptions(newton="freeze")``) reuses one numeric LU
across Newton iterations and steps and may only ever change *how fast* a
step converges, never *where* it converges to: its fixed point satisfies
``A(x) x = b(x)`` exactly.  These tests pin that contract against the dense
reference solver (:func:`repro.circuit.mna.newton_solve`), exercise the
refresh triggers on a pathologically conditioned switching circuit, and
assert the factorization economics the mode exists for.
"""

import numpy as np
import pytest

from repro.circuit import Circuit, Step, transient_analysis
from repro.circuit.compiled import (
    ArrayState,
    CompiledMNA,
    SolverOptions,
    resolve_solver_options,
    solver_options,
)
from repro.circuit.inverter import Inverter, add_supply
from repro.circuit.mna import CompanionState, MNAAssembler, newton_solve
from repro.circuit.rcline import add_rc_ladder
from repro.circuit.technology import NODE_45NM
from repro.core.line import DistributedRC

PARITY_RTOL = 1.0e-9

FREEZE = SolverOptions(newton="freeze")


def _inverter_line_circuit(n_segments: int = 12, contact_resistance: float = 1e-3) -> Circuit:
    """Inverter -> RC ladder -> inverter; the nonlinear Newton workload.

    The default contact resistance of 1 milliohm next to a 20 kiloohm ladder
    puts ~7 orders of magnitude of conductance spread into the MNA matrix --
    the near-singular conditioning that makes a stale frozen Jacobian stall
    during the output transition and forces refreshes.
    """
    circuit = Circuit("inverter line")
    add_supply(circuit, NODE_45NM)
    v_dd = NODE_45NM.supply_voltage
    circuit.add_voltage_source(
        "vin", "in", "0", Step(0.0, v_dd, delay=2e-12, rise_time=4e-12)
    )
    Inverter("drv", "in", "near", technology=NODE_45NM).add_to(circuit)
    ladder = DistributedRC(
        total_resistance=2e4,
        total_capacitance=5e-14,
        contact_resistance=contact_resistance,
        n_segments=n_segments,
    )
    add_rc_ladder(circuit, ladder, "near", "far", name_prefix="line")
    Inverter("rcv", "far", "out", technology=NODE_45NM).add_to(circuit)
    circuit.add_capacitor("cl", "out", "0", 2e-15)
    return circuit


def _run_frozen_against_dense(circuit: Circuit, options: SolverOptions, n_steps: int = 300):
    """Step the compiled freeze-mode solver and the dense reference in
    lockstep; returns (compiled system, worst absolute voltage difference)."""
    dt = 1e-12
    compiled = CompiledMNA(circuit, dt=dt)
    assembler = MNAAssembler(circuit)
    state = ArrayState.from_companion(CompanionState.initial(circuit), circuit)
    dense_state = CompanionState.initial(circuit)
    solution = np.zeros(compiled.size)
    dense_solution = np.zeros(assembler.size)
    worst = 0.0
    for step in range(1, n_steps + 1):
        t = step * dt
        solution = compiled.solve_step(t, solution, state, options=options)
        state = compiled.update_state(solution, state)
        dense_solution = newton_solve(assembler, t, dense_solution, state=dense_state, dt=dt)
        dense_state = assembler.update_state(dense_solution, dense_state, dt)
        worst = max(worst, float(np.max(np.abs(solution - dense_solution))))
    return compiled, worst


class TestFreezeParity:
    def test_matches_dense_newton_solve_per_step(self):
        """Lockstep freeze vs dense ``newton_solve``: every step <= 1e-9."""
        compiled, worst = _run_frozen_against_dense(_inverter_line_circuit(), FREEZE)
        assert worst < PARITY_RTOL
        assert compiled.stats.steps == 300

    def test_refresh_triggers_on_near_singular_switching(self):
        """The pathological case must actually exercise the refresh path."""
        compiled, worst = _run_frozen_against_dense(_inverter_line_circuit(), FREEZE)
        assert compiled.stats.refreshes >= 1
        assert worst < PARITY_RTOL

    def test_fewer_factorizations_than_exact(self):
        """The mode's reason to exist: reuse must slash factorizations."""
        frozen, _ = _run_frozen_against_dense(_inverter_line_circuit(), FREEZE)
        exact, _ = _run_frozen_against_dense(_inverter_line_circuit(), SolverOptions())
        assert exact.stats.factorizations == exact.stats.iterations
        assert frozen.stats.factorizations < exact.stats.factorizations / 2

    def test_tight_iteration_budget_still_converges(self):
        """``max_frozen_iterations=1`` degenerates toward exact Newton (a
        refresh nearly every hard step) but must stay exactly as correct."""
        options = SolverOptions(newton="freeze", max_frozen_iterations=1)
        compiled, worst = _run_frozen_against_dense(_inverter_line_circuit(), options)
        assert worst < PARITY_RTOL
        assert compiled.stats.refreshes >= 1

    def test_transient_waveforms_match_exact(self):
        """Whole-transient parity through the public entry point.

        Same sparse backend with and without freezing, so any difference is
        attributable to the reuse policy alone (the dense cross-backend
        anchor is the lockstep test above).  Each step converges to the
        shared 1e-9 Newton tolerance, and the companion state integrates
        that slack over 300 steps, so the open-loop waveform bound is a
        small multiple of the per-step tolerance -- the strict <= 1e-9
        contract is per-step and lives in the lockstep tests.
        """
        circuit = _inverter_line_circuit()
        exact = transient_analysis(circuit, 3e-10, 1e-12, backend="sparse")
        frozen = transient_analysis(
            circuit, 3e-10, 1e-12, backend="sparse", solver_opts=FREEZE
        )
        scale = max(np.max(np.abs(w)) for w in exact.node_voltages.values())
        worst = max(
            float(np.max(np.abs(exact.voltage(node) - frozen.voltage(node))))
            for node in exact.node_voltages
        )
        assert worst / scale < 20 * PARITY_RTOL


class TestSolverOptions:
    def test_defaults_are_exact(self):
        assert resolve_solver_options(None).newton == "exact"

    def test_context_override(self):
        with solver_options(FREEZE):
            assert resolve_solver_options(None).newton == "freeze"
        assert resolve_solver_options(None).newton == "exact"

    def test_explicit_argument_beats_override(self):
        with solver_options(FREEZE):
            assert resolve_solver_options(SolverOptions()).newton == "exact"

    def test_validation(self):
        with pytest.raises(ValueError):
            SolverOptions(newton="thaw")
        with pytest.raises(ValueError):
            SolverOptions(refresh_contraction=1.5)
        with pytest.raises(ValueError):
            SolverOptions(max_frozen_iterations=0)

    def test_linear_circuits_ignore_newton_policy(self):
        """A linear circuit has one factorization total, whatever the mode."""
        circuit = Circuit("rc")
        circuit.add_voltage_source("vin", "a", "0", Step(0.0, 1.0, rise_time=1e-12))
        circuit.add_resistor("r1", "a", "b", 1e3)
        circuit.add_capacitor("c1", "b", "0", 1e-12)
        dt = 1e-12
        compiled = CompiledMNA(circuit, dt=dt)
        state = ArrayState.from_companion(CompanionState.initial(circuit), circuit)
        solution = np.zeros(compiled.size)
        for step in range(1, 50):
            solution = compiled.solve_step(step * dt, solution, state, options=FREEZE)
            state = compiled.update_state(solution, state)
        assert compiled.stats.factorizations == 1
        assert compiled.stats.refreshes == 0
