"""Tests for DC, transient, inverter, RC ladder and delay measurement."""

import math

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    Inverter,
    NODE_45NM,
    Step,
    dc_operating_point,
    measure_inverter_line_delay,
    propagation_delay,
    rise_time,
    transient_analysis,
    add_rc_ladder,
    crossing_time,
)
from repro.circuit.inverter import add_inverter_chain, add_supply
from repro.circuit.mna import MNAAssembler
from repro.core import DistributedRC, DopingProfile, InterconnectLine, MWCNTInterconnect
from repro.units import nm, um


def _voltage_divider() -> Circuit:
    circuit = Circuit("divider")
    circuit.add_voltage_source("v1", "a", "0", 2.0)
    circuit.add_resistor("r1", "a", "b", 1e3)
    circuit.add_resistor("r2", "b", "0", 1e3)
    return circuit


class TestDC:
    def test_voltage_divider(self):
        result = dc_operating_point(_voltage_divider())
        assert result.voltage("b") == pytest.approx(1.0, rel=1e-6)
        assert result.voltage("a") == pytest.approx(2.0, rel=1e-6)

    def test_source_current(self):
        result = dc_operating_point(_voltage_divider())
        # 2 V across 2 kOhm: 1 mA flows out of the source's positive terminal,
        # i.e. the MNA branch current is -1 mA.
        assert result.current("v1") == pytest.approx(-1e-3, rel=1e-6)

    def test_current_source_into_resistor(self):
        circuit = Circuit()
        circuit.add_current_source("i1", "0", "a", 1e-3)
        circuit.add_resistor("r1", "a", "0", 2e3)
        result = dc_operating_point(circuit)
        assert result.voltage("a") == pytest.approx(2.0, rel=1e-4)

    def test_ground_voltage_is_zero(self):
        result = dc_operating_point(_voltage_divider())
        assert result.voltage("0") == 0.0
        with pytest.raises(KeyError):
            result.voltage("missing")

    def test_inverter_static_levels(self):
        for v_in, expected in [(0.0, NODE_45NM.supply_voltage), (NODE_45NM.supply_voltage, 0.0)]:
            circuit = Circuit()
            add_supply(circuit, NODE_45NM)
            circuit.add_voltage_source("vin", "in", "0", v_in)
            Inverter("i0", "in", "out").add_to(circuit)
            result = dc_operating_point(circuit)
            assert result.voltage("out") == pytest.approx(expected, abs=0.02)

    def test_empty_circuit(self):
        result = dc_operating_point(Circuit())
        assert result.node_voltages == {}


class TestMNAAssembler:
    def test_unknown_node_raises(self):
        assembler = MNAAssembler(_voltage_divider())
        with pytest.raises(KeyError):
            assembler.node_index("zzz")

    def test_size_counts_nodes_and_sources(self):
        assembler = MNAAssembler(_voltage_divider())
        assert assembler.n_nodes == 2
        assert assembler.n_vsources == 1
        assert assembler.size == 3


class TestTransient:
    def test_rc_charging_time_constant(self):
        circuit = Circuit()
        circuit.add_voltage_source("vin", "a", "0", Step(0.0, 1.0, delay=0.0, rise_time=1e-15))
        circuit.add_resistor("r1", "a", "b", 1e3)
        circuit.add_capacitor("c1", "b", "0", 1e-12)
        result = transient_analysis(circuit, 5e-9, 5e-12)
        v_at_tau = float(np.interp(1e-9, result.times, result.voltage("b")))
        assert v_at_tau == pytest.approx(1 - math.exp(-1), abs=0.02)
        assert result.final_voltage("b") == pytest.approx(1.0, abs=0.01)

    def test_backward_euler_also_converges(self):
        circuit = Circuit()
        circuit.add_voltage_source("vin", "a", "0", Step(0.0, 1.0, rise_time=1e-15))
        circuit.add_resistor("r1", "a", "b", 1e3)
        circuit.add_capacitor("c1", "b", "0", 1e-12)
        result = transient_analysis(circuit, 10e-9, 10e-12, method="backward_euler")
        assert result.final_voltage("b") == pytest.approx(1.0, abs=0.02)

    def test_rl_circuit_current_rise(self):
        circuit = Circuit()
        circuit.add_voltage_source("vin", "a", "0", Step(0.0, 1.0, rise_time=1e-15))
        circuit.add_resistor("r1", "a", "b", 1e3)
        circuit.add_inductor("l1", "b", "0", 1e-6)
        # tau = L/R = 1 ns; after 5 tau the resistor drops the full supply.
        result = transient_analysis(circuit, 5e-9, 5e-12)
        assert result.final_voltage("b") == pytest.approx(0.0, abs=0.02)

    def test_dc_start_keeps_steady_state_flat(self):
        circuit = Circuit()
        circuit.add_voltage_source("vin", "a", "0", 1.0)
        circuit.add_resistor("r1", "a", "b", 1e3)
        circuit.add_capacitor("c1", "b", "0", 1e-12)
        result = transient_analysis(circuit, 2e-9, 2e-12)
        assert np.allclose(result.voltage("b"), 1.0, atol=1e-6)

    def test_invalid_arguments(self):
        circuit = _voltage_divider()
        with pytest.raises(ValueError):
            transient_analysis(circuit, -1e-9, 1e-12)
        with pytest.raises(ValueError):
            transient_analysis(circuit, 1e-9, 2e-9)

    def test_result_accessors(self):
        circuit = _voltage_divider()
        result = transient_analysis(circuit, 1e-9, 1e-10)
        assert result.n_points == 11
        assert np.allclose(result.voltage("gnd"), 0.0)
        with pytest.raises(KeyError):
            result.voltage("nope")
        assert result.current("v1").shape == result.times.shape


class TestInverterTransient:
    def test_inverter_inverts_step(self):
        circuit = Circuit()
        add_supply(circuit, NODE_45NM)
        circuit.add_voltage_source("vin", "in", "0", Step(0.0, 1.0, delay=5e-12, rise_time=2e-12))
        Inverter("i0", "in", "out").add_to(circuit)
        circuit.add_capacitor("cl", "out", "0", 1e-15)
        result = transient_analysis(circuit, 200e-12, 0.2e-12)
        assert result.voltage("out")[0] == pytest.approx(1.0, abs=0.02)
        assert result.final_voltage("out") == pytest.approx(0.0, abs=0.02)

    def test_inverter_chain(self):
        circuit = Circuit()
        add_supply(circuit, NODE_45NM)
        circuit.add_voltage_source("vin", "n0", "0", Step(0.0, 1.0, delay=5e-12, rise_time=2e-12))
        inverters = add_inverter_chain(circuit, ["n0", "n1", "n2"])
        assert len(inverters) == 2
        result = transient_analysis(circuit, 300e-12, 0.5e-12)
        # Two inversions: the final output follows the input high.
        assert result.final_voltage("n2") == pytest.approx(1.0, abs=0.05)

    def test_chain_validation(self):
        circuit = Circuit()
        with pytest.raises(ValueError):
            add_inverter_chain(circuit, ["only"])
        with pytest.raises(ValueError):
            add_inverter_chain(circuit, ["a", "b"], sizes=[1.0, 2.0])

    def test_inverter_size_validation(self):
        with pytest.raises(ValueError):
            Inverter("x", "a", "b", size=0.0)


class TestRCLadder:
    def test_ladder_node_count_and_totals(self):
        circuit = Circuit()
        ladder = DistributedRC(
            total_resistance=1e4, total_capacitance=1e-14, contact_resistance=2e3, n_segments=10
        )
        add_rc_ladder(circuit, ladder, "a", "b", name_prefix="wire")
        total_r = sum(r.resistance for r in circuit.resistors)
        total_c = sum(c.capacitance for c in circuit.capacitors)
        assert total_r == pytest.approx(1e4 + 2e3, rel=1e-9)
        assert total_c == pytest.approx(1e-14, rel=1e-9)

    def test_ladder_accepts_interconnect_line(self):
        circuit = Circuit()
        line = InterconnectLine(MWCNTInterconnect(outer_diameter=nm(10), length=um(100)))
        nodes = add_rc_ladder(circuit, line, "a", "b", name_prefix="wire")
        assert len(nodes) >= line.n_segments - 1
        assert circuit.element_count > line.n_segments

    def test_ladder_dc_transparent(self):
        circuit = Circuit()
        circuit.add_voltage_source("v1", "a", "0", 1.0)
        ladder = DistributedRC(total_resistance=1e3, total_capacitance=1e-14, n_segments=5)
        add_rc_ladder(circuit, ladder, "a", "b", name_prefix="wire")
        circuit.add_resistor("rload", "b", "0", 1e6)
        result = dc_operating_point(circuit)
        assert result.voltage("b") == pytest.approx(1.0, rel=1e-3)


class TestDelayMeasurement:
    def test_crossing_time_interpolation(self):
        times = np.array([0.0, 1.0, 2.0])
        values = np.array([0.0, 0.4, 1.0])
        assert crossing_time(times, values, 0.7) == pytest.approx(1.5)

    def test_crossing_time_direction_filter(self):
        times = np.linspace(0, 4, 5)
        values = np.array([0.0, 1.0, 0.0, 1.0, 0.0])
        assert crossing_time(times, values, 0.5, rising=False) == pytest.approx(1.5)

    def test_crossing_time_not_found(self):
        with pytest.raises(ValueError):
            crossing_time(np.array([0.0, 1.0]), np.array([0.0, 0.1]), 0.5)

    def test_crossing_time_shape_mismatch(self):
        with pytest.raises(ValueError):
            crossing_time(np.array([0.0, 1.0]), np.array([0.0]), 0.5)

    def test_measure_inverter_line_delay_sane(self):
        tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(100))
        measurement = measure_inverter_line_delay(InterconnectLine(tube, n_segments=10))
        assert measurement.propagation_delay > 0
        assert measurement.receiver_output_delay > measurement.propagation_delay
        assert measurement.far_end_rise_time > 0

    def test_doping_reduces_measured_delay(self):
        pristine = MWCNTInterconnect(
            outer_diameter=nm(10), length=um(200), contact_resistance=100e3
        )
        doped = pristine.with_doping(DopingProfile.from_channels(10))
        delay_pristine = measure_inverter_line_delay(
            InterconnectLine(pristine, n_segments=10)
        ).propagation_delay
        delay_doped = measure_inverter_line_delay(
            InterconnectLine(doped, n_segments=10)
        ).propagation_delay
        assert delay_doped < delay_pristine

    def test_longer_line_is_slower(self):
        short = MWCNTInterconnect(outer_diameter=nm(14), length=um(50))
        long = MWCNTInterconnect(outer_diameter=nm(14), length=um(400))
        t_short = measure_inverter_line_delay(InterconnectLine(short, n_segments=10)).propagation_delay
        t_long = measure_inverter_line_delay(InterconnectLine(long, n_segments=10)).propagation_delay
        assert t_long > t_short

    def test_falling_input_also_measurable(self):
        tube = MWCNTInterconnect(outer_diameter=nm(10), length=um(100))
        measurement = measure_inverter_line_delay(
            InterconnectLine(tube, n_segments=8), rising_input=False
        )
        assert measurement.propagation_delay > 0

    def test_rise_time_of_rc_node(self):
        circuit = Circuit()
        circuit.add_voltage_source("vin", "a", "0", Step(0.0, 1.0, rise_time=1e-15))
        circuit.add_resistor("r1", "a", "b", 1e3)
        circuit.add_capacitor("c1", "b", "0", 1e-12)
        result = transient_analysis(circuit, 10e-9, 5e-12)
        # 10-90% rise time of a single-pole RC is 2.2 tau = 2.2 ns.
        assert rise_time(result, "b", 1.0) == pytest.approx(2.2e-9, rel=0.05)
