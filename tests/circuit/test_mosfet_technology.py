"""Tests for the MOSFET model and technology-node parameter sets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import MOSFET, MOSFETParameters, NODE_14NM, NODE_45NM
from repro.circuit.technology import node_by_name


def nmos(width_multiplier: float = 1.0) -> MOSFET:
    return MOSFET("n1", "d", "g", "s", NODE_45NM.nmos_parameters(width_multiplier))


def pmos(width_multiplier: float = 1.0) -> MOSFET:
    return MOSFET("p1", "d", "g", "s", NODE_45NM.pmos_parameters(width_multiplier))


class TestMOSFETModel:
    def test_off_device_has_negligible_current(self):
        assert abs(nmos().drain_current(0.0, 1.0)) < 1e-7

    def test_on_device_conducts(self):
        assert nmos().drain_current(1.0, 1.0) > 1e-5

    def test_triode_vs_saturation(self):
        device = nmos()
        triode = device.drain_current(1.0, 0.05)
        saturation = device.drain_current(1.0, 1.0)
        assert 0 < triode < saturation

    def test_current_scales_with_width(self):
        narrow = nmos(1.0).drain_current(1.0, 1.0)
        wide = nmos(2.0).drain_current(1.0, 1.0)
        assert wide == pytest.approx(2 * narrow, rel=1e-6)

    def test_pmos_polarity(self):
        # Conducting PMOS (gate low, drain low relative to source) pulls
        # current out of its drain: negative drain-to-source current.
        assert pmos().drain_current(-1.0, -1.0) < 0

    def test_pmos_off(self):
        assert abs(pmos().drain_current(0.0, -1.0)) < 1e-7

    def test_reverse_conduction_antisymmetric(self):
        device = nmos()
        forward = device.drain_current(1.0, 0.3)
        # Swap drain/source roles: with v_gs measured at the new source the
        # device carries the same magnitude in the opposite direction.
        reverse = device.drain_current(1.0 - 0.3, -0.3)
        assert reverse == pytest.approx(-forward, rel=1e-6)

    def test_derivatives_match_finite_differences(self):
        device = nmos()
        v_gs, v_ds = 0.8, 0.4
        delta = 1e-6
        i0, gm, gds = device.evaluate(v_gs, v_ds)
        gm_fd = (device.drain_current(v_gs + delta, v_ds) - i0) / delta
        gds_fd = (device.drain_current(v_gs, v_ds + delta) - i0) / delta
        assert gm == pytest.approx(gm_fd, rel=1e-3)
        assert gds == pytest.approx(gds_fd, rel=1e-3)

    def test_derivatives_in_saturation(self):
        device = nmos()
        v_gs, v_ds = 1.0, 0.9
        delta = 1e-6
        i0, gm, gds = device.evaluate(v_gs, v_ds)
        gm_fd = (device.drain_current(v_gs + delta, v_ds) - i0) / delta
        assert gm == pytest.approx(gm_fd, rel=1e-3)

    def test_effective_resistance_order_of_magnitude(self):
        # A 1x 45 nm NMOS should have a switching resistance of a few kOhm.
        resistance = nmos().effective_resistance(NODE_45NM.supply_voltage)
        assert 500.0 < resistance < 20e3

    def test_effective_resistance_infinite_when_off(self):
        weak = MOSFETParameters(
            polarity=1, threshold_voltage=2.0, transconductance=1e-4, width=1e-7, length=4.5e-8
        )
        device = MOSFET("n", "d", "g", "s", weak)
        assert device.effective_resistance(1.0) == float("inf")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MOSFETParameters(polarity=2, threshold_voltage=0.3, transconductance=1e-4, width=1e-7, length=1e-8)
        with pytest.raises(ValueError):
            MOSFETParameters(polarity=1, threshold_voltage=-0.3, transconductance=1e-4, width=1e-7, length=1e-8)
        with pytest.raises(ValueError):
            MOSFETParameters(polarity=1, threshold_voltage=0.3, transconductance=0.0, width=1e-7, length=1e-8)
        with pytest.raises(ValueError):
            MOSFETParameters(polarity=1, threshold_voltage=0.3, transconductance=1e-4, width=0.0, length=1e-8)


class TestMOSFETPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(
        v_gs=st.floats(min_value=-1.2, max_value=1.2),
        v_ds=st.floats(min_value=-1.2, max_value=1.2),
    )
    def test_current_continuous_and_derivative_consistent(self, v_gs, v_ds):
        device = nmos()
        delta = 1e-7
        i0, gm, gds = device.evaluate(v_gs, v_ds)
        i_gs = device.drain_current(v_gs + delta, v_ds)
        i_ds = device.drain_current(v_gs, v_ds + delta)
        # finite-difference check with generous tolerance near region boundaries
        assert (i_gs - i0) / delta == pytest.approx(gm, rel=0.05, abs=1e-6)
        assert (i_ds - i0) / delta == pytest.approx(gds, rel=0.05, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(v_ds=st.floats(min_value=0.0, max_value=1.2))
    def test_nmos_current_non_negative_for_positive_vds(self, v_ds):
        assert nmos().drain_current(1.0, v_ds) >= 0.0


class TestTechnology:
    def test_node_lookup(self):
        assert node_by_name("45nm") is NODE_45NM
        assert node_by_name("14nm") is NODE_14NM
        with pytest.raises(ValueError):
            node_by_name("7nm")

    def test_45nm_supply_voltage(self):
        assert NODE_45NM.supply_voltage == pytest.approx(1.0)

    def test_14nm_smaller_and_lower_voltage(self):
        assert NODE_14NM.gate_length < NODE_45NM.gate_length
        assert NODE_14NM.supply_voltage < NODE_45NM.supply_voltage
        assert NODE_14NM.wire_pitch < NODE_45NM.wire_pitch

    def test_pmos_wider_than_nmos(self):
        assert NODE_45NM.pmos_width > NODE_45NM.nmos_width

    def test_inverter_input_capacitance_sub_femtofarad(self):
        assert 1e-17 < NODE_45NM.inverter_input_capacitance < 1e-15

    def test_width_multiplier(self):
        assert NODE_45NM.nmos_parameters(3.0).width == pytest.approx(3 * NODE_45NM.nmos_width)
