"""DC operating point through the compiled sparse path (backend routing)."""

import numpy as np
import pytest

from repro.circuit import (
    SPARSE_SIZE_THRESHOLD,
    Circuit,
    CompiledMNA,
    dc_operating_point,
    solver_backend,
)
from repro.circuit.compiled import ArrayState
from repro.circuit.inverter import Inverter, add_supply
from repro.circuit.mna import MNAAssembler
from repro.circuit.rcline import add_rc_ladder
from repro.core.line import DistributedRC


def _large_ladder(n_segments: int = 120) -> Circuit:
    circuit = Circuit("dc ladder")
    circuit.add_voltage_source("vin", "a", "0", 1.0)
    circuit.add_resistor("rdrv", "a", "n0", 1.0e3)
    ladder = DistributedRC(
        total_resistance=5.0e4,
        total_capacitance=2.0e-13,
        contact_resistance=6.0e3,
        n_segments=n_segments,
    )
    add_rc_ladder(circuit, ladder, "n0", "far", name_prefix="dut")
    circuit.add_capacitor("cl", "far", "0", 5.0e-15)
    circuit.add_resistor("rload", "far", "0", 1.0e6)
    return circuit


def _nonlinear_line(n_segments: int = 100) -> Circuit:
    circuit = Circuit("dc inverter line")
    add_supply(circuit)
    circuit.add_voltage_source("vin", "in", "0", 0.4)
    Inverter("drv", "in", "near").add_to(circuit)
    ladder = DistributedRC(
        total_resistance=5.0e4,
        total_capacitance=2.0e-13,
        contact_resistance=6.0e3,
        n_segments=n_segments,
    )
    add_rc_ladder(circuit, ladder, "near", "far", name_prefix="dut")
    Inverter("rcv", "far", "out").add_to(circuit)
    return circuit


def _worst_delta(a, b) -> float:
    node = max(abs(a.node_voltages[n] - b.node_voltages[n]) for n in a.node_voltages)
    current = max(abs(a.source_currents[s] - b.source_currents[s]) for s in a.source_currents)
    return max(node, current)


class TestDCParity:
    def test_large_linear_ladder(self):
        circuit = _large_ladder()
        assert MNAAssembler(circuit).size >= SPARSE_SIZE_THRESHOLD
        dense = dc_operating_point(circuit, backend="dense")
        sparse = dc_operating_point(circuit, backend="sparse")
        assert _worst_delta(dense, sparse) <= 1.0e-9
        # Sanity: the ladder actually divides the supply.
        assert 0.9 < sparse.voltage("far") < 1.0

    def test_large_nonlinear_line(self):
        circuit = _nonlinear_line()
        assert MNAAssembler(circuit).size >= SPARSE_SIZE_THRESHOLD
        dense = dc_operating_point(circuit, backend="dense")
        sparse = dc_operating_point(circuit, backend="sparse")
        assert _worst_delta(dense, sparse) <= 1.0e-9

    def test_auto_routing_follows_threshold(self):
        """Auto selection equals the explicit backend on both sides of the
        threshold (small circuits keep dense, large ones go sparse)."""
        large = _large_ladder()
        auto = dc_operating_point(large)
        sparse = dc_operating_point(large, backend="sparse")
        assert _worst_delta(auto, sparse) == 0.0

        small = Circuit("divider")
        small.add_voltage_source("v1", "a", "0", 2.0)
        small.add_resistor("r1", "a", "b", 1.0e3)
        small.add_resistor("r2", "b", "0", 1.0e3)
        assert MNAAssembler(small).size < SPARSE_SIZE_THRESHOLD
        auto_small = dc_operating_point(small)
        dense_small = dc_operating_point(small, backend="dense")
        assert _worst_delta(auto_small, dense_small) == 0.0
        assert auto_small.voltage("b") == pytest.approx(1.0, rel=1e-9)

    def test_solver_backend_override_applies(self):
        """The global override used by parity harnesses reaches the DC solve."""
        circuit = _large_ladder()
        with solver_backend("dense"):
            dense = dc_operating_point(circuit)
        with solver_backend("sparse"):
            sparse = dc_operating_point(circuit)
        assert _worst_delta(dense, sparse) <= 1.0e-9

    def test_small_circuit_explicit_sparse_works(self):
        small = Circuit("divider")
        small.add_voltage_source("v1", "a", "0", 2.0)
        small.add_resistor("r1", "a", "b", 1.0e3)
        small.add_resistor("r2", "b", "0", 1.0e3)
        sparse = dc_operating_point(small, backend="sparse")
        assert sparse.voltage("b") == pytest.approx(1.0, rel=1e-9)


class TestDCCompiledSystem:
    def test_dc_compile_requires_no_dt(self):
        circuit = _large_ladder(n_segments=4)
        compiled = CompiledMNA(circuit, dt=None, capacitors_open=True)
        assert compiled.capacitors_open
        with pytest.raises(ValueError, match="positive dt"):
            CompiledMNA(circuit, dt=None)

    def test_update_state_is_transient_only(self):
        circuit = _large_ladder(n_segments=4)
        compiled = CompiledMNA(circuit, dt=None, capacitors_open=True)
        solution = compiled.solve_step(0.0, np.zeros(compiled.size), ArrayState.zeros(circuit))
        with pytest.raises(RuntimeError, match="companion models"):
            compiled.update_state(solution, ArrayState.zeros(circuit))

    def test_inductor_becomes_short_at_dc(self):
        circuit = Circuit("rl")
        circuit.add_voltage_source("v1", "a", "0", 1.0)
        circuit.add_resistor("r1", "a", "b", 1.0e3)
        circuit.add_inductor("l1", "b", "c", 1.0e-9)
        circuit.add_resistor("r2", "c", "0", 1.0e3)
        dense = dc_operating_point(circuit, backend="dense")
        sparse = dc_operating_point(circuit, backend="sparse")
        assert _worst_delta(dense, sparse) <= 1.0e-9
        assert sparse.voltage("b") == pytest.approx(sparse.voltage("c"), abs=1e-6)
