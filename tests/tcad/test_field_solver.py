"""Tests for the Laplace solver, capacitance and resistance extraction."""

import numpy as np
import pytest

from repro.constants import VACUUM_PERMITTIVITY
from repro.tcad import (
    StructuredGrid,
    capacitance_matrix,
    current_density_map,
    extract_resistance,
    m1_m2_crossing_structure,
    parallel_lines_structure,
    rc_netlist_from_extraction,
    self_and_coupling_capacitance,
    solve_laplace,
    via_structure,
)
from repro.tcad.materials import COPPER, LOW_K_DIELECTRIC, VACUUM
from repro.tcad.resistance import hotspot_factor


def parallel_plate_grid(n_nodes: int = 21, gap: float = 100e-9, eps_r: float = 1.0):
    """Two parallel plates separated by ``gap`` filled with a uniform dielectric."""
    material = VACUUM if eps_r == 1.0 else LOW_K_DIELECTRIC
    spacing = gap / (n_nodes - 1)
    grid = StructuredGrid((n_nodes, n_nodes), (spacing, spacing), background=material)
    width = (n_nodes - 1) * spacing
    grid.fill_box(COPPER, (0.0, 0.0), (width, 0.0), conductor=0)
    grid.fill_box(COPPER, (0.0, width), (width, width), conductor=1)
    return grid, width


class TestLaplaceSolver:
    def test_parallel_plate_potential_is_linear(self):
        grid, _ = parallel_plate_grid()
        solution = solve_laplace(grid, {0: 0.0, 1: 1.0})
        mid_column = solution.potential[10, :]
        expected = np.linspace(0.0, 1.0, 21)
        assert np.allclose(mid_column, expected, atol=1e-6)

    def test_potential_bounded_by_dirichlet_values(self):
        structure = parallel_lines_structure(n_lines=2, resolution=3)
        solution = solve_laplace(structure.grid, {0: 0.0, 1: 1.0, 2: 0.0})
        finite = solution.potential[np.isfinite(solution.potential)]
        assert finite.min() >= -1e-9
        assert finite.max() <= 1.0 + 1e-9

    def test_unknown_conductor_raises(self):
        grid, _ = parallel_plate_grid(n_nodes=11)
        with pytest.raises(ValueError):
            solve_laplace(grid, {7: 1.0})

    def test_bad_coefficient_name(self):
        grid, _ = parallel_plate_grid(n_nodes=11)
        with pytest.raises(ValueError):
            solve_laplace(grid, {0: 0.0, 1: 1.0}, coefficient="magic")

    def test_field_magnitude_uniform_between_plates(self):
        grid, width = parallel_plate_grid()
        solution = solve_laplace(grid, {0: 0.0, 1: 1.0})
        field = solution.field_magnitude()
        interior = field[5:-5, 5:-5]
        assert np.allclose(interior, 1.0 / width, rtol=0.05)


class TestCapacitance:
    def test_parallel_plate_capacitance_matches_analytic(self):
        grid, width = parallel_plate_grid(n_nodes=31)
        matrix = capacitance_matrix(grid)
        # Per unit depth: C = eps0 * W / d  (W = plate width, d = gap = width).
        expected = VACUUM_PERMITTIVITY * width / width
        extracted = matrix.coupling_capacitance(0, 1)
        assert extracted == pytest.approx(expected, rel=0.10)

    def test_dielectric_scales_capacitance(self):
        vacuum_grid, _ = parallel_plate_grid(n_nodes=21, eps_r=1.0)
        lowk_grid, _ = parallel_plate_grid(n_nodes=21, eps_r=2.2)
        c_vacuum = capacitance_matrix(vacuum_grid).coupling_capacitance(0, 1)
        c_lowk = capacitance_matrix(lowk_grid).coupling_capacitance(0, 1)
        assert c_lowk / c_vacuum == pytest.approx(2.2, rel=0.05)

    def test_matrix_is_physical(self):
        structure = parallel_lines_structure(n_lines=3, resolution=3)
        matrix = capacitance_matrix(structure.grid)
        assert matrix.is_physical()
        assert len(matrix.conductors) == 4  # ground + 3 lines

    def test_coupling_decays_with_distance(self):
        structure = parallel_lines_structure(n_lines=3, resolution=3)
        matrix = capacitance_matrix(structure.grid)
        near = matrix.coupling_capacitance(1, 2)
        far = matrix.coupling_capacitance(1, 3)
        assert near > far

    def test_self_and_coupling_summary(self):
        structure = parallel_lines_structure(n_lines=2, resolution=3)
        summary = self_and_coupling_capacitance(
            structure.grid, structure.conductors["line0"], structure.conductors["line1"]
        )
        assert 0.0 < summary["coupling_fraction"] < 1.0
        assert summary["coupling_capacitance"] < summary["total_capacitance"]

    def test_no_conductor_raises(self):
        grid = StructuredGrid((5, 5), (1e-9, 1e-9))
        with pytest.raises(ValueError):
            capacitance_matrix(grid)

    def test_index_lookup_errors(self):
        grid, _ = parallel_plate_grid(n_nodes=11)
        matrix = capacitance_matrix(grid)
        with pytest.raises(KeyError):
            matrix.self_capacitance(42)


class TestResistance:
    def test_uniform_bar_resistance_converges_to_analytic(self):
        # rho L / (W * depth) with the node-count overestimate of the
        # cross-section shrinking as the grid is refined.
        rho = 1.72e-8
        length, height = 200e-9, 50e-9
        errors = []
        for spacing in (10e-9, 5e-9, 2.5e-9):
            nx = int(length / spacing) + 1
            ny = int(height / spacing) + 1
            grid = StructuredGrid((nx, ny), (spacing, spacing), background=LOW_K_DIELECTRIC)
            grid.fill_box(COPPER, (0.0, 0.0), (length, height), conductor=1)
            extraction = extract_resistance(grid, 1, axis=0)
            expected = rho * length / height  # per metre of depth
            errors.append(abs(extraction.resistance - expected) / expected)
        assert errors[-1] < errors[0]
        assert errors[-1] < 0.06

    def test_longer_bar_more_resistance(self):
        def bar(length):
            grid = StructuredGrid((int(length / 10e-9) + 1, 6), (10e-9, 10e-9))
            grid.fill_box(COPPER, (0.0, 0.0), (length, 50e-9), conductor=1)
            return extract_resistance(grid, 1, axis=0).resistance

        assert bar(400e-9) == pytest.approx(2 * bar(200e-9), rel=0.05)

    def test_current_density_map_finite_inside_conductor(self):
        structure = via_structure()
        extraction = extract_resistance(structure.grid, 1, axis=2)
        density = current_density_map(extraction)
        inside = np.isfinite(density)
        assert inside.any()
        assert np.all(density[inside] >= 0)

    def test_via_has_current_crowding_hotspot(self):
        # The narrow via concentrates the current: peak density well above average.
        structure = via_structure()
        extraction = extract_resistance(structure.grid, 1, axis=2)
        assert hotspot_factor(extraction) > 1.5

    def test_missing_conductor_raises(self):
        grid = StructuredGrid((5, 5), (1e-9, 1e-9))
        with pytest.raises(ValueError):
            extract_resistance(grid, 1)

    def test_bias_validation(self):
        structure = via_structure()
        with pytest.raises(ValueError):
            extract_resistance(structure.grid, 1, axis=2, bias=0.0)


class TestStructuresAndExport:
    def test_parallel_lines_conductor_roles(self):
        structure = parallel_lines_structure(n_lines=3, resolution=3)
        assert set(structure.conductors) == {"ground", "line0", "line1", "line2"}

    def test_parallel_lines_validation(self):
        with pytest.raises(ValueError):
            parallel_lines_structure(n_lines=0)
        with pytest.raises(ValueError):
            parallel_lines_structure(resolution=1)

    def test_m1_m2_crossing_has_three_conductors(self):
        structure = m1_m2_crossing_structure(resolution=2)
        assert set(structure.conductors) == {"ground", "m1", "m2"}
        assert structure.grid.ndim == 3

    def test_via_structure_validation(self):
        with pytest.raises(ValueError):
            via_structure(via_width=100e-9, landing_width=90e-9)
        with pytest.raises(ValueError):
            via_structure(resolution=0.0)

    def test_rc_netlist_export(self):
        structure = parallel_lines_structure(n_lines=2, resolution=3)
        matrix = capacitance_matrix(structure.grid)
        circuit = rc_netlist_from_extraction(
            matrix,
            ground_conductor=structure.conductors["ground"],
            resistances={1: 100.0, 2: 120.0},
            length=10e-6,
        )
        assert len(circuit.capacitors) >= 2
        assert len(circuit.resistors) == 2
        text = circuit.to_spice()
        assert ".end" in text

    def test_rc_netlist_validation(self):
        structure = parallel_lines_structure(n_lines=2, resolution=3)
        matrix = capacitance_matrix(structure.grid)
        with pytest.raises(ValueError):
            rc_netlist_from_extraction(matrix, length=0.0)
        with pytest.raises(ValueError):
            rc_netlist_from_extraction(matrix, resistances={1: -5.0})
