"""Tests for the TCAD grid container and material table."""

import numpy as np
import pytest

from repro.tcad import Material, MATERIALS, StructuredGrid
from repro.tcad.materials import COPPER, LOW_K_DIELECTRIC, cnt_material


class TestMaterials:
    def test_registry_contains_expected_materials(self):
        for name in ("Cu", "SiO2", "low-k", "CNT-bundle"):
            assert name in MATERIALS

    def test_copper_conductivity(self):
        assert MATERIALS["Cu"].conductivity == pytest.approx(1 / 1.72e-8, rel=1e-6)
        assert MATERIALS["Cu"].is_conductor

    def test_dielectrics_do_not_conduct(self):
        assert MATERIALS["SiO2"].conductivity == 0.0
        assert not MATERIALS["SiO2"].is_conductor

    def test_low_k_below_sio2(self):
        assert MATERIALS["low-k"].relative_permittivity < MATERIALS["SiO2"].relative_permittivity

    def test_cnt_material_from_compact_model(self):
        material = cnt_material(5e7)
        assert material.is_conductor
        assert material.conductivity == pytest.approx(5e7)
        with pytest.raises(ValueError):
            cnt_material(0.0)

    def test_material_validation(self):
        with pytest.raises(ValueError):
            Material("bad", 0.0, 1.0, True)
        with pytest.raises(ValueError):
            Material("bad", 1.0, -1.0, True)


class TestStructuredGrid:
    def test_basic_properties(self):
        grid = StructuredGrid((11, 21), (1e-9, 2e-9))
        assert grid.ndim == 2
        assert grid.n_nodes == 231
        assert grid.extent == pytest.approx((10e-9, 40e-9))
        assert grid.axis_coordinates(0)[-1] == pytest.approx(10e-9)

    def test_3d_grid(self):
        grid = StructuredGrid((5, 6, 7), (1e-9, 1e-9, 1e-9))
        assert grid.ndim == 3
        assert grid.n_nodes == 5 * 6 * 7

    def test_background_material_applied(self):
        grid = StructuredGrid((5, 5), (1e-9, 1e-9), background=LOW_K_DIELECTRIC)
        assert np.all(grid.permittivity == LOW_K_DIELECTRIC.relative_permittivity)
        assert np.all(grid.conductor_id == -1)

    def test_fill_box_paints_material_and_conductor(self):
        grid = StructuredGrid((11, 11), (1e-9, 1e-9))
        grid.fill_box(COPPER, (2e-9, 2e-9), (5e-9, 5e-9), conductor=3)
        assert grid.conductor_ids() == [3]
        mask = grid.conductor_mask(3)
        assert mask.sum() == 16  # 4x4 nodes
        assert np.all(grid.conductivity[mask] == COPPER.conductivity)

    def test_fill_box_without_id_marks_anonymous_conductor(self):
        grid = StructuredGrid((11, 11), (1e-9, 1e-9))
        grid.fill_box(COPPER, (0.0, 0.0), (3e-9, 3e-9))
        assert grid.conductor_ids() == []  # anonymous conductors are not listed
        assert np.any(grid.conductor_id == -2)

    def test_fill_box_validation(self):
        grid = StructuredGrid((11, 11), (1e-9, 1e-9))
        with pytest.raises(ValueError):
            grid.fill_box(COPPER, (0.0,), (1e-9, 1e-9))
        with pytest.raises(ValueError):
            grid.fill_box(COPPER, (5e-9, 5e-9), (1e-9, 1e-9))
        with pytest.raises(ValueError):
            grid.fill_box(COPPER, (0.0, 0.0), (1e-9, 1e-9), conductor=-5)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            StructuredGrid((2, 5), (1e-9, 1e-9))
        with pytest.raises(ValueError):
            StructuredGrid((5, 5), (1e-9,))
        with pytest.raises(ValueError):
            StructuredGrid((5, 5), (0.0, 1e-9))
        with pytest.raises(ValueError):
            StructuredGrid((5, 5, 5, 5), (1e-9,) * 4)

    def test_link_area_over_distance_2d(self):
        grid = StructuredGrid((5, 5), (1e-9, 2e-9))
        assert grid.link_area_over_distance(0) == pytest.approx(2.0)
        assert grid.link_area_over_distance(1) == pytest.approx(0.5)

    def test_link_area_over_distance_3d(self):
        grid = StructuredGrid((5, 5, 5), (1e-9, 2e-9, 4e-9))
        assert grid.link_area_over_distance(0) == pytest.approx(2e-9 * 4e-9 / 1e-9)

    def test_ravel_index(self):
        grid = StructuredGrid((4, 5), (1e-9, 1e-9))
        assert grid.ravel_index((0, 0)) == 0
        assert grid.ravel_index((1, 0)) == 5
