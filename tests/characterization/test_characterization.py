"""Tests for measurement emulation: TLM, I-V, electromigration, layout, Raman."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.characterization import (
    blacks_lifetime,
    d_over_g_ratio,
    doping_comparison_iv,
    em_stress_test,
    extract_tlm,
    generate_test_layout,
    simulate_iv_sweep,
    simulate_raman_spectrum,
    simulate_tlm_data,
)
from repro.characterization.electromigration import lifetime_comparison
from repro.characterization.iv import saturation_current
from repro.characterization.test_layout import Lithography, StructureKind
from repro.characterization.test_layout import TestStructure as LayoutStructure
from repro.characterization.tlm import TLMMeasurement, tlm_round_trip
from repro.constants import COPPER_EM_CURRENT_DENSITY_LIMIT
from repro.core import MWCNTInterconnect
from repro.units import nm, um


def reference_device() -> MWCNTInterconnect:
    return MWCNTInterconnect(outer_diameter=nm(7.5), length=um(2))


class TestTLM:
    LENGTHS = [um(1), um(2), um(5), um(10), um(20)]

    def test_extraction_recovers_contact_resistance(self):
        extraction, true_contact, true_slope = tlm_round_trip(
            reference_device(), self.LENGTHS, contact_resistance=30e3, noise_fraction=0.005, seed=1
        )
        assert extraction.contact_resistance == pytest.approx(true_contact, rel=0.25)
        assert extraction.resistance_per_length == pytest.approx(true_slope, rel=0.25)
        assert extraction.r_squared > 0.9

    def test_noise_free_extraction_is_nearly_exact(self):
        data = simulate_tlm_data(
            reference_device(), self.LENGTHS, contact_resistance=30e3, noise_fraction=0.0
        )
        extraction = extract_tlm(data)
        assert extraction.r_squared > 0.999

    def test_transfer_length_positive(self):
        extraction, _, _ = tlm_round_trip(reference_device(), self.LENGTHS, seed=2)
        assert extraction.transfer_length() > 0

    def test_confidence_interval_contains_estimate(self):
        extraction, _, _ = tlm_round_trip(reference_device(), self.LENGTHS, seed=3)
        low, high = extraction.confidence_interval_contact()
        assert low <= extraction.contact_resistance <= high

    def test_requires_two_distinct_lengths(self):
        with pytest.raises(ValueError):
            simulate_tlm_data(reference_device(), [um(1)])
        with pytest.raises(ValueError):
            simulate_tlm_data(reference_device(), [um(1), um(1)])
        with pytest.raises(ValueError):
            extract_tlm([TLMMeasurement(um(1), 1e4)])

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            simulate_tlm_data(reference_device(), self.LENGTHS, noise_fraction=-0.1)


class TestIV:
    def test_low_bias_resistance_matches_model(self):
        device = MWCNTInterconnect(outer_diameter=nm(7.5), length=um(2), contact_resistance=60e3)
        sweep = simulate_iv_sweep(device, max_voltage=0.5, noise_fraction=0.0)
        assert sweep.low_bias_resistance == pytest.approx(device.resistance, rel=0.05)
        assert sweep.survived

    def test_current_saturates_at_high_bias(self):
        device = reference_device()
        sweep = simulate_iv_sweep(device, max_voltage=5.0, noise_fraction=0.0)
        valid = ~np.isnan(sweep.currents)
        assert sweep.currents[valid].max() <= saturation_current(device) * 1.01

    def test_breakdown_occurs_when_limit_is_low(self):
        device = reference_device()
        sweep = simulate_iv_sweep(
            device, max_voltage=3.0, breakdown_current=saturation_current(device) * 0.2
        )
        assert not sweep.survived
        assert np.isnan(sweep.currents[-1])

    def test_doping_comparison_shows_lower_resistance(self):
        comparison = doping_comparison_iv(seed=0)
        assert comparison["doped"].low_bias_resistance < comparison["pristine"].low_bias_resistance

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_iv_sweep(reference_device(), max_voltage=0.0)
        with pytest.raises(ValueError):
            simulate_iv_sweep(reference_device(), n_points=2)


class TestElectromigration:
    def test_copper_lifetime_ten_years_at_reference_conditions(self):
        lifetime = blacks_lifetime(COPPER_EM_CURRENT_DENSITY_LIMIT, 378.0)
        years = lifetime / (365 * 24 * 3600)
        assert years == pytest.approx(10.0, rel=0.05)

    def test_higher_stress_shorter_life(self):
        mild = blacks_lifetime(COPPER_EM_CURRENT_DENSITY_LIMIT, 378.0)
        harsh = blacks_lifetime(10 * COPPER_EM_CURRENT_DENSITY_LIMIT, 378.0)
        assert harsh < mild

    def test_hotter_stress_shorter_life(self):
        cool = blacks_lifetime(COPPER_EM_CURRENT_DENSITY_LIMIT, 350.0)
        hot = blacks_lifetime(COPPER_EM_CURRENT_DENSITY_LIMIT, 420.0)
        assert hot < cool

    def test_cnt_outlives_copper_by_orders_of_magnitude(self):
        comparison = lifetime_comparison()
        assert comparison["cnt"].median_lifetime > 1e3 * comparison["copper"].median_lifetime
        assert comparison["composite"].median_lifetime > comparison["copper"].median_lifetime

    def test_immediate_failure_beyond_breakdown(self):
        result = em_stress_test("cnt", 1e14)
        assert result.immediate_failure
        assert result.lifetime_years == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            blacks_lifetime(0.0, 378.0)
        with pytest.raises(ValueError):
            blacks_lifetime(1e10, 0.0)
        with pytest.raises(ValueError):
            em_stress_test("adamantium", 1e10)
        with pytest.raises(ValueError):
            em_stress_test("composite", 1e10, cnt_fraction=0.0)


class TestTestLayout:
    def test_layout_contains_all_structure_kinds(self):
        layout = generate_test_layout()
        kinds = {structure.kind for structure in layout.structures}
        assert kinds == set(StructureKind)

    def test_50nm_lines_use_ebeam(self):
        layout = generate_test_layout()
        assert layout.minimum_width() == pytest.approx(50e-9)
        narrow = [s for s in layout.structures if s.width == pytest.approx(50e-9)]
        assert all(s.lithography is Lithography.EBEAM for s in narrow)
        assert len(layout.ebeam_structures()) == len(narrow)

    def test_single_lines_cover_width_length_angle_grid(self):
        layout = generate_test_layout(widths=(100e-9,), lengths=(1e-6, 2e-6), angles=(0.0, 90.0))
        singles = layout.by_kind(StructureKind.SINGLE_LINE)
        assert len(singles) == 4

    def test_structure_validation(self):
        with pytest.raises(ValueError):
            LayoutStructure("bad", StructureKind.SINGLE_LINE, width=0.0, length=1e-6)
        with pytest.raises(ValueError):
            LayoutStructure("bad", StructureKind.COMB, width=1e-7, length=1e-6, n_elements=0)
        with pytest.raises(ValueError):
            generate_test_layout(widths=())

    def test_structure_count_consistent(self):
        layout = generate_test_layout()
        assert layout.n_structures == len(layout.structures)


class TestRaman:
    def test_d_over_g_tracks_quality(self):
        good = simulate_raman_spectrum(quality=0.95, noise=0.0)
        bad = simulate_raman_spectrum(quality=0.3, noise=0.0)
        assert d_over_g_ratio(bad) > d_over_g_ratio(good)

    def test_extraction_matches_target(self):
        from repro.process.defects import raman_d_over_g

        spectrum = simulate_raman_spectrum(quality=0.6, noise=0.0)
        # The D and G Lorentzian tails overlap slightly, so the fit-free peak
        # estimator reads a few percent high.
        assert d_over_g_ratio(spectrum) == pytest.approx(raman_d_over_g(0.6), rel=0.10)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_raman_spectrum(0.5, noise=-0.1)
        with pytest.raises(ValueError):
            simulate_raman_spectrum(0.5, n_points=10)


class TestCharacterizationPropertyBased:
    @settings(max_examples=15, deadline=None)
    @given(contact=st.floats(min_value=1e3, max_value=500e3))
    def test_tlm_intercept_tracks_contact_resistance(self, contact):
        extraction, true_contact, _ = tlm_round_trip(
            reference_device(),
            [um(1), um(2), um(5), um(10)],
            contact_resistance=contact,
            noise_fraction=0.0,
        )
        assert extraction.contact_resistance == pytest.approx(true_contact, rel=0.05)

    @settings(max_examples=15, deadline=None)
    @given(density=st.floats(min_value=1e9, max_value=1e12))
    def test_blacks_equation_monotone_in_stress(self, density):
        assert blacks_lifetime(density, 378.0) >= blacks_lifetime(density * 2, 378.0)
