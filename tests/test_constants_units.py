"""Tests for the physical constants and unit helpers."""

import math

import pytest

from repro import constants, units


class TestConstants:
    def test_quantum_conductance_matches_paper_value(self):
        # Paper quotes G0 = 0.077 mS below Eq. (1).
        assert constants.QUANTUM_CONDUCTANCE == pytest.approx(77.48e-6, rel=1e-3)

    def test_quantum_resistance_is_12_9_kohm(self):
        assert constants.QUANTUM_RESISTANCE == pytest.approx(12.906e3, rel=1e-3)

    def test_quantum_capacitance_close_to_96_5_af_per_um(self):
        # Paper quotes 96.5 aF/um per channel in Eq. (5).
        value = units.to_af_per_um(constants.QUANTUM_CAPACITANCE_PER_CHANNEL)
        assert value == pytest.approx(96.5, rel=0.02)

    def test_kinetic_inductance_about_16_nh_per_um(self):
        value = units.to_nh_per_um(constants.KINETIC_INDUCTANCE_PER_CHANNEL)
        assert value == pytest.approx(16.0, rel=0.02)

    def test_graphene_lattice_constant(self):
        assert constants.GRAPHENE_LATTICE_CONSTANT == pytest.approx(0.246e-9, rel=0.01)

    def test_conductance_resistance_are_inverse(self):
        assert constants.QUANTUM_CONDUCTANCE * constants.QUANTUM_RESISTANCE == pytest.approx(1.0)

    def test_copper_em_limit_in_paper_units(self):
        assert units.to_a_per_cm2(constants.COPPER_EM_CURRENT_DENSITY_LIMIT) == pytest.approx(1e6)

    def test_cnt_breakdown_limit_in_paper_units(self):
        assert units.to_a_per_cm2(constants.CNT_MAX_CURRENT_DENSITY) == pytest.approx(1e9)

    def test_thermal_conductivity_ordering(self):
        low, high = constants.CNT_THERMAL_CONDUCTIVITY_RANGE
        assert low < high
        assert low > constants.COPPER_THERMAL_CONDUCTIVITY


class TestUnits:
    def test_length_roundtrip(self):
        assert units.to_nm(units.nm(7.5)) == pytest.approx(7.5)
        assert units.to_um(units.um(500.0)) == pytest.approx(500.0)

    def test_nm_um_relationship(self):
        assert units.um(1.0) == pytest.approx(units.nm(1000.0))

    def test_capacitance_per_length_roundtrip(self):
        assert units.to_af_per_um(units.af_per_um(96.5)) == pytest.approx(96.5)

    def test_inductance_per_length_roundtrip(self):
        assert units.to_nh_per_um(units.nh_per_um(16.0)) == pytest.approx(16.0)

    def test_resistance_per_length_roundtrip(self):
        assert units.to_ohm_per_um(units.ohm_per_um(12.9)) == pytest.approx(12.9)

    def test_current_density_conversion(self):
        assert units.a_per_cm2(1e6) == pytest.approx(1e10)

    def test_resistivity_conversion(self):
        assert units.uohm_cm(1.72) == pytest.approx(1.72e-8)
        assert units.to_uohm_cm(1.72e-8) == pytest.approx(1.72)

    def test_time_conversions(self):
        assert units.to_ps(units.ps(3.0)) == pytest.approx(3.0)
        assert units.ns(1.0) == pytest.approx(units.ps(1000.0))

    def test_energy_conversion_roundtrip(self):
        assert units.joule_to_ev(units.ev_to_joule(0.6)) == pytest.approx(0.6)

    def test_temperature_conversion(self):
        assert units.celsius_to_kelvin(400.0) == pytest.approx(673.15)
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(25.0)) == pytest.approx(25.0)

    def test_kohm_roundtrip(self):
        assert units.to_kohm(units.kohm(12.9)) == pytest.approx(12.9)

    def test_ms_to_siemens(self):
        assert units.ms_to_siemens(0.077) == pytest.approx(77e-6)
        assert units.siemens_to_ms(77e-6) == pytest.approx(0.077)
