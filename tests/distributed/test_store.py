"""Result-store contract: layout, claims, leases, locking, prune safety."""

import json
import os
import threading
import time

import pytest

from repro.api import Engine, ResultSet
from repro.api.cache import clear_cache, prune_cache, scan_cache
from repro.api.experiment import Experiment, ParamSpec
from repro.dist import (
    CLAIM_ACQUIRED,
    CLAIM_BUSY,
    CLAIM_DONE,
    LocalStore,
    SharedStore,
    StoreLockTimeout,
    store_lock,
)


def _experiment() -> Experiment:
    return Experiment(
        name="dist_store_exp",
        fn=lambda x=1.0: [{"x": x, "y": 2.0 * x}],
        params=(ParamSpec("x", "float", 1.0, "input"),),
        description="store test experiment",
    )


def _result(x: float = 1.0) -> ResultSet:
    return ResultSet.from_records(
        [{"x": x, "y": 2.0 * x}],
        meta={"experiment": "dist_store_exp", "version": "1", "params": {"x": x}},
    )


class TestLocalStore:
    def test_layout_matches_engine_cache(self, tmp_path):
        """Engine(store=LocalStore(d)) and Engine(cache_dir=d) are the same store."""
        directory = str(tmp_path)
        experiment = _experiment()
        Engine(cache_dir=directory).run(experiment, x=3.0)

        engine = Engine(store=LocalStore(directory))
        assert engine.cache_dir == directory
        served = engine.run(experiment, x=3.0)
        assert served.meta.get("cache_hit") is True

    def test_cache_dir_and_store_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            Engine(cache_dir=str(tmp_path), store=LocalStore(str(tmp_path)))

    def test_load_tolerates_missing_and_corrupt(self, tmp_path):
        store = LocalStore(str(tmp_path))
        path = store.entry_path("dist_store_exp", "0" * 16)
        assert store.load(path) is None
        with open(path, "w") as handle:
            handle.write('{"truncated": ')
        assert store.load(path) is None

    def test_publish_round_trip(self, tmp_path):
        store = LocalStore(str(tmp_path))
        path = store.entry_path("dist_store_exp", "a" * 16)
        store.publish(path, _result(2.0))
        assert store.load(path) == _result(2.0)

    def test_claim_is_trivial(self, tmp_path):
        store = LocalStore(str(tmp_path))
        path = store.entry_path("dist_store_exp", "b" * 16)
        assert store.claim(path, "w1") == CLAIM_ACQUIRED
        # No coordination: a second worker may also "claim" locally.
        assert store.claim(path, "w2") == CLAIM_ACQUIRED
        store.publish(path, _result())
        assert store.claim(path, "w1") == CLAIM_DONE


class TestSharedStoreClaims:
    def test_claim_lifecycle(self, tmp_path):
        store = SharedStore(str(tmp_path))
        path = store.entry_path("dist_store_exp", "c" * 16)

        assert store.claim(path, "w1", ttl=60.0) == CLAIM_ACQUIRED
        assert store.claim(path, "w2", ttl=60.0) == CLAIM_BUSY
        # Re-claiming one's own lease renews it instead of blocking.
        assert store.claim(path, "w1", ttl=60.0) == CLAIM_ACQUIRED

        store.publish(path, _result())
        assert store.claim(path, "w2", ttl=60.0) == CLAIM_DONE
        # Publish removed the lease file.
        assert store.leases() == []

    def test_release_frees_the_point(self, tmp_path):
        store = SharedStore(str(tmp_path))
        path = store.entry_path("dist_store_exp", "d" * 16)
        assert store.claim(path, "w1", ttl=60.0) == CLAIM_ACQUIRED
        store.release(path, "w1")
        assert store.claim(path, "w2", ttl=60.0) == CLAIM_ACQUIRED

    def test_release_is_owner_only(self, tmp_path):
        store = SharedStore(str(tmp_path))
        path = store.entry_path("dist_store_exp", "e" * 16)
        store.claim(path, "w1", ttl=60.0)
        store.release(path, "w2")  # not the owner: no-op
        assert store.claim(path, "w3", ttl=60.0) == CLAIM_BUSY

    def test_stale_lease_is_recovered(self, tmp_path):
        """A dead worker's expired lease must not block the point forever."""
        store = SharedStore(str(tmp_path))
        path = store.entry_path("dist_store_exp", "f" * 16)
        assert store.claim(path, "dead-worker", ttl=0.05) == CLAIM_ACQUIRED
        assert store.claim(path, "w2", ttl=60.0) == CLAIM_BUSY
        time.sleep(0.06)
        assert store.claim(path, "w2", ttl=60.0) == CLAIM_ACQUIRED

    def test_corrupt_lease_counts_as_claimable(self, tmp_path):
        store = SharedStore(str(tmp_path))
        path = store.entry_path("dist_store_exp", "1" * 16)
        store.claim(path, "w1", ttl=60.0)
        with open(path + ".lease", "w") as handle:
            handle.write("not json")
        assert store.claim(path, "w2", ttl=60.0) == CLAIM_ACQUIRED

    def test_corrupt_entry_is_claimable_not_done(self, tmp_path):
        """A torn entry must be recomputed, not skipped as done forever."""
        store = SharedStore(str(tmp_path))
        path = store.entry_path("dist_store_exp", "8" * 16)
        with open(path, "w") as handle:
            handle.write('{"truncated": ')
        assert store.claim(path, "w1", ttl=60.0) == CLAIM_ACQUIRED
        # Same contract on the local store.
        local = LocalStore(str(tmp_path))
        corrupt = local.entry_path("dist_store_exp", "9" * 16)
        with open(corrupt, "w") as handle:
            handle.write("garbage")
        assert local.claim(corrupt, "w1") == CLAIM_ACQUIRED

    def test_invalid_ttl_rejected(self, tmp_path):
        store = SharedStore(str(tmp_path))
        with pytest.raises(ValueError, match="ttl"):
            store.claim(store.entry_path("x", "2" * 16), "w1", ttl=0.0)

    def test_leases_listing(self, tmp_path):
        store = SharedStore(str(tmp_path))
        a = store.entry_path("dist_store_exp", "3" * 16)
        b = store.entry_path("dist_store_exp", "4" * 16)
        store.claim(a, "w1", ttl=60.0)
        store.claim(b, "w2", ttl=60.0)
        leases = store.leases()
        assert {lease.worker for lease in leases} == {"w1", "w2"}
        assert {lease.entry_path for lease in leases} == {a, b}
        assert all(not lease.expired() for lease in leases)

    def test_lease_files_invisible_to_cache_scan(self, tmp_path):
        store = SharedStore(str(tmp_path))
        path = store.entry_path("dist_store_exp", "5" * 16)
        store.claim(path, "w1", ttl=60.0)
        assert scan_cache(str(tmp_path)) == []


class TestStoreLock:
    def test_lock_is_exclusive_with_timeout(self, tmp_path):
        directory = str(tmp_path)
        holding = threading.Event()
        done = threading.Event()

        def holder():
            with store_lock(directory):
                holding.set()
                done.wait(timeout=5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert holding.wait(timeout=5.0)
            with pytest.raises(StoreLockTimeout):
                with store_lock(directory, timeout=0.05):
                    pass
        finally:
            done.set()
            thread.join()
        # Released: acquirable again.
        with store_lock(directory, timeout=1.0):
            pass

    def test_shared_store_lock_method(self, tmp_path):
        store = SharedStore(str(tmp_path))
        with store.lock(timeout=1.0):
            with pytest.raises(StoreLockTimeout):
                with store_lock(store.directory, timeout=0.05):
                    pass


class TestPruneDuringWrite:
    """`cache prune`/`clear` racing live writers leaves the store consistent."""

    def _assert_consistent(self, directory: str) -> None:
        for filename in os.listdir(directory):
            assert not filename.endswith(".tmp"), "temp debris left behind"
            if not filename.endswith(".json"):
                continue
            # Every surviving entry must be a complete, hash-valid ResultSet.
            ResultSet.from_json(os.path.join(directory, filename))

    def test_prune_racing_concurrent_writers(self, tmp_path):
        directory = str(tmp_path)
        store = SharedStore(directory)
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer(offset: int) -> None:
            i = 0
            try:
                while not stop.is_set():
                    x = float(offset + i % 25)
                    path = store.entry_path("dist_store_exp", f"{offset + i % 25:016x}")
                    store.publish(path, _result(x))
                    i += 1
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(k * 100,)) for k in range(2)]
        for thread in threads:
            thread.start()
        try:
            deadline = time.monotonic() + 1.0
            while time.monotonic() < deadline:
                prune_cache(directory, experiment="dist_store_exp", older_than=0.0)
                clear_cache(directory)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors
        self._assert_consistent(directory)

    def test_clear_disposes_stale_leases_with_entries(self, tmp_path):
        directory = str(tmp_path)
        store = SharedStore(directory)
        path = store.entry_path("dist_store_exp", "6" * 16)
        store.publish(path, _result())
        # Simulate a dead worker's leftover lease next to the entry.
        with open(path + ".lease", "w") as handle:
            json.dump(
                {"worker": "dead", "claimed_at": 0.0, "expires_at": 0.0}, handle
            )
        assert clear_cache(directory) == 1
        assert not os.path.exists(path + ".lease")

    def test_prune_removes_entry_and_its_lease(self, tmp_path):
        directory = str(tmp_path)
        store = SharedStore(directory)
        path = store.entry_path("dist_store_exp", "7" * 16)
        store.publish(path, _result())
        with open(path + ".lease", "w") as handle:
            json.dump(
                {"worker": "dead", "claimed_at": 0.0, "expires_at": 0.0}, handle
            )
        removed = prune_cache(directory, experiment="dist_store_exp", older_than=0.0)
        assert [entry.path for entry in removed] == [path]
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".lease")
