"""Store-conformance harness: one protocol battery, every backend.

``test_store_contract.py`` runs the full store protocol battery -- publish /
load round-trips, claim lifecycle, stale-lease takeover, tombstones,
concurrent exactly-once claiming, maintenance -- identically against every
backend listed in :data:`HARNESSES`.  Each harness adapts one backend to the
battery: how to build a store under a tmp directory, how to spell it for a
subprocess (:func:`repro.dist.resolve_store`), and how to fake the failure
modes a black-box test cannot reach (torn entries, orphaned bookkeeping).

Adding a backend means adding one harness here; the battery is inherited
unchanged.  ``tests/distributed/faults.py`` reuses the same harnesses for
crash-injection runs.
"""

import json
import os

from repro.dist import FAILED_SUFFIX, LEASE_SUFFIX, LocalStore, SharedStore
from repro.dist.sqlstore import SqliteStore


class StoreHarness:
    """One backend's adapter for the shared conformance battery."""

    name = "base"
    coordinated = True
    """Whether the backend has real leases (busy / takeover / renew
    semantics).  ``LocalStore`` is the trivial single-process contract, so
    the coordination half of the battery is skipped for it."""

    def make(self, root):
        """Build a fresh store rooted under ``root`` (a tmp directory)."""
        raise NotImplementedError

    def spec(self, root):
        """``resolve_store`` spelling a *subprocess* can reopen the store
        from (crash-injection workers receive the store this way)."""
        raise NotImplementedError

    def corrupt_entry(self, store, path):
        """Make ``path`` unloadable, as a torn write would."""
        raise NotImplementedError

    def orphan_lease(self, store, path, worker="orphan"):
        """Plant a live lease *without* going through ``claim`` -- the
        residue a publish that crashed between entry write and lease
        cleanup would leave."""
        raise NotImplementedError

    def orphan_tombstone(self, store, path, worker="orphan"):
        """Plant a failure tombstone regardless of entry existence -- the
        residue of a failure report racing a successful publish."""
        raise NotImplementedError


class _DirectoryHarness(StoreHarness):
    """Shared behaviour of the file-per-entry backends."""

    cls = None

    def make(self, root):
        return self.cls(self.spec(root))

    def spec(self, root):
        return os.path.join(str(root), f"{self.name}-store")

    def corrupt_entry(self, store, path):
        os.makedirs(store.directory, exist_ok=True)
        with open(path, "w") as handle:
            handle.write('{"columns": ')  # a torn write

    def orphan_lease(self, store, path, worker="orphan"):
        os.makedirs(store.directory, exist_ok=True)
        payload = {
            "worker": worker,
            "claimed_at": 0.0,
            "expires_at": 4102444800.0,  # year 2100: never expires on its own
            "pid": None,
        }
        with open(path + LEASE_SUFFIX, "w") as handle:
            json.dump(payload, handle)

    def orphan_tombstone(self, store, path, worker="orphan"):
        os.makedirs(store.directory, exist_ok=True)
        payload = {"worker": worker, "error": "boom", "failed_at": 0.0}
        with open(path + FAILED_SUFFIX, "w") as handle:
            json.dump(payload, handle)


class LocalHarness(_DirectoryHarness):
    name = "local"
    coordinated = False
    cls = LocalStore


class SharedHarness(_DirectoryHarness):
    name = "shared"
    cls = SharedStore


class SqliteHarness(StoreHarness):
    name = "sqlite"

    def make(self, root):
        return SqliteStore(os.path.join(str(root), "store.db"))

    def spec(self, root):
        # Absolute path: SQLAlchemy's four-slash spelling.
        return "sqlite:///" + os.path.join(str(root), "store.db")

    def corrupt_entry(self, store, path):
        connection = store._connect()
        cursor = connection.execute(
            "UPDATE results SET payload = ? WHERE entry = ?",
            ('{"columns": ', path),
        )
        if cursor.rowcount == 0:
            connection.execute(
                """
                INSERT INTO results (entry, experiment, key, created_at,
                                     size_bytes, payload)
                VALUES (?, 'torn', ?, 0.0, 12, '{"columns": ')
                """,
                (path, "0" * 16),
            )

    def orphan_lease(self, store, path, worker="orphan"):
        store._connect().execute(
            """
            INSERT OR REPLACE INTO leases (entry, worker, claimed_at,
                                           expires_at, pid)
            VALUES (?, ?, 0.0, 4102444800.0, NULL)
            """,
            (path, worker),
        )

    def orphan_tombstone(self, store, path, worker="orphan"):
        store._connect().execute(
            """
            INSERT OR REPLACE INTO failures (entry, worker, error, failed_at)
            VALUES (?, ?, 'boom', 0.0)
            """,
            (path, worker),
        )


HARNESSES = (LocalHarness(), SharedHarness(), SqliteHarness())
"""Every store backend the conformance battery runs against."""

COORDINATED = tuple(h for h in HARNESSES if h.coordinated)
"""The backends with real lease semantics (claim/renew/takeover battery)."""
