"""The store-conformance battery: one protocol suite, run per backend.

Every test takes the parametrised ``store`` fixture, so each assertion runs
identically against ``LocalStore``, ``SharedStore`` and ``SqliteStore`` --
the seam the engine, workers, daemons and HTTP service all execute through.
Coordination tests (busy claims, stale-lease takeover, renewal, tombstones)
run only on the coordinated backends; the trivial ``LocalStore`` contract is
covered by the shared half.
"""

import pickle
import threading
import time

import pytest

from repro.api import ParamSpec, ResultSet, register_experiment, unregister_experiment
from repro.api.cache import clear_cache, gc_store, prune_cache, scan_cache
from repro.dist import (
    CLAIM_ACQUIRED,
    CLAIM_BUSY,
    CLAIM_DONE,
    FAILED_SUFFIX,
    LEASE_SUFFIX,
    run_worker,
)
from store_contract import COORDINATED, HARNESSES

from repro.api import SweepSpec


def _result(x=1.0, experiment="contract_exp", version="1"):
    return ResultSet.from_records(
        [{"x": x, "y": 2.0 * x}],
        meta={"experiment": experiment, "version": version, "params": {"x": x}},
    )


@pytest.fixture(params=HARNESSES, ids=lambda h: h.name)
def harness(request):
    return request.param


@pytest.fixture(params=COORDINATED, ids=lambda h: h.name)
def coordinated(request):
    return request.param


@pytest.fixture
def store(harness, tmp_path):
    return harness.make(tmp_path)


@pytest.fixture
def coord_store(coordinated, tmp_path):
    return coordinated.make(tmp_path)


@pytest.fixture
def contract_experiment():
    @register_experiment(
        "contract_exp", params=(ParamSpec("x", "float", 1.0),), replace=True
    )
    def contract(x):
        return [{"x": x, "y": 2.0 * x}]

    yield "contract_exp"
    unregister_experiment("contract_exp")


def _path(store, key_digit="0"):
    return store.entry_path("contract_exp", key_digit * 16)


class TestResultIO:
    def test_publish_load_roundtrip(self, store):
        path = _path(store)
        original = _result(3.0)
        store.publish(path, original)
        loaded = store.load(path)
        assert loaded is not None
        assert loaded.to_records() == original.to_records()
        assert loaded.content_hash == original.content_hash
        assert loaded.meta["params"] == {"x": 3.0}

    def test_load_missing_is_none(self, store):
        assert store.load(_path(store)) is None

    def test_load_corrupt_is_none(self, harness, store):
        path = _path(store)
        store.publish(path, _result())
        harness.corrupt_entry(store, path)
        assert store.load(path) is None

    def test_publish_overwrites(self, store):
        path = _path(store)
        store.publish(path, _result(1.0))
        store.publish(path, _result(2.0))
        assert store.load(path).to_records()[0]["x"] == 2.0

    def test_entry_path_is_content_addressed_name(self, store):
        path = store.entry_path("contract_exp", "abcdef0123456789" + "ff")
        # Keys longer than 16 hex chars are truncated to the canonical name.
        assert path.endswith("contract_exp-abcdef0123456789.json")

    def test_pickle_roundtrip(self, store):
        path = _path(store)
        store.publish(path, _result(4.0))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.load(path).to_records()[0]["x"] == 4.0


class TestClaimLifecycle:
    def test_claim_acquired_then_done(self, store):
        path = _path(store)
        assert store.claim(path, "w1") == CLAIM_ACQUIRED
        store.publish(path, _result())
        assert store.claim(path, "w2") == CLAIM_DONE

    def test_claim_recomputes_corrupt_entry(self, harness, store):
        path = _path(store)
        store.publish(path, _result())
        harness.corrupt_entry(store, path)
        # A torn entry must be re-executed, never skipped forever.
        assert store.claim(path, "w1") == CLAIM_ACQUIRED

    def test_claim_rejects_nonpositive_ttl(self, coord_store):
        with pytest.raises(ValueError):
            coord_store.claim(_path(coord_store), "w1", ttl=0.0)

    def test_second_worker_is_busy(self, coord_store):
        path = _path(coord_store)
        assert coord_store.claim(path, "w1", ttl=60.0) == CLAIM_ACQUIRED
        assert coord_store.claim(path, "w2", ttl=60.0) == CLAIM_BUSY

    def test_own_reclaim_renews(self, coord_store):
        path = _path(coord_store)
        coord_store.claim(path, "w1", ttl=60.0)
        before = coord_store.read_lease(path)
        time.sleep(0.01)
        assert coord_store.claim(path, "w1", ttl=120.0) == CLAIM_ACQUIRED
        after = coord_store.read_lease(path)
        assert after.worker == "w1"
        assert after.expires_at > before.expires_at

    def test_stale_lease_takeover(self, coord_store):
        path = _path(coord_store)
        assert coord_store.claim(path, "dead", ttl=0.05) == CLAIM_ACQUIRED
        time.sleep(0.1)
        assert coord_store.claim(path, "w2", ttl=60.0) == CLAIM_ACQUIRED
        assert coord_store.read_lease(path).worker == "w2"

    def test_release_is_owner_only(self, coord_store):
        path = _path(coord_store)
        coord_store.claim(path, "w1", ttl=60.0)
        coord_store.release(path, "w2")  # foreign release: must not drop it
        assert coord_store.claim(path, "w3", ttl=60.0) == CLAIM_BUSY
        coord_store.release(path, "w1")
        assert coord_store.claim(path, "w3", ttl=60.0) == CLAIM_ACQUIRED

    def test_publish_clears_lease(self, coord_store):
        path = _path(coord_store)
        coord_store.claim(path, "w1", ttl=60.0)
        coord_store.publish(path, _result())
        assert coord_store.read_lease(path) is None
        assert coord_store.claim(path, "w2") == CLAIM_DONE

    def test_concurrent_claims_acquire_exactly_once(self, coord_store):
        """N workers racing one point: exactly one wins, the rest see busy."""
        path = _path(coord_store)
        n = 8
        barrier = threading.Barrier(n)
        outcomes = [None] * n

        def contend(index):
            barrier.wait()
            outcomes[index] = coord_store.claim(path, f"w{index}", ttl=60.0)

        threads = [
            threading.Thread(target=contend, args=(index,)) for index in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count(CLAIM_ACQUIRED) == 1
        assert outcomes.count(CLAIM_BUSY) == n - 1


class TestRenewal:
    def test_renew_extends_own_lease_only(self, coord_store):
        path = _path(coord_store)
        assert coord_store.renew(path, "w1", ttl=60.0) is False  # nothing leased
        coord_store.claim(path, "w1", ttl=1.0)
        before = coord_store.read_lease(path)
        assert coord_store.renew(path, "w1", ttl=60.0) is True
        assert coord_store.read_lease(path).expires_at > before.expires_at
        assert coord_store.renew(path, "w2", ttl=60.0) is False
        assert coord_store.read_lease(path).worker == "w1"

    def test_renew_false_once_published(self, coord_store):
        path = _path(coord_store)
        coord_store.claim(path, "w1", ttl=60.0)
        coord_store.publish(path, _result())
        assert coord_store.renew(path, "w1", ttl=60.0) is False


class TestTombstones:
    def test_tombstone_lifecycle(self, coord_store):
        path = _path(coord_store)
        coord_store.record_failure(path, "w1", "boom at x=1")
        failures = coord_store.failures()
        assert len(failures) == 1
        assert failures[0]["worker"] == "w1"
        assert "boom" in failures[0]["error"]
        assert failures[0]["path"] == path + FAILED_SUFFIX
        # A successful publish supersedes the recorded failure.
        coord_store.publish(path, _result())
        assert coord_store.failures() == []

    def test_record_failure_noop_when_entry_exists(self, coord_store):
        path = _path(coord_store)
        coord_store.publish(path, _result())
        coord_store.record_failure(path, "w1", "late report")
        assert coord_store.failures() == []


class TestMaintenance:
    def test_entries_expose_metadata(self, store):
        store.publish(_path(store, "a"), _result(1.0))
        store.publish(_path(store, "b"), _result(2.0))
        entries = store.entries(read_meta=True)
        assert len(entries) == 2
        assert {entry.experiment for entry in entries} == {"contract_exp"}
        assert {entry.key for entry in entries} == {"a" * 16, "b" * 16}
        assert sorted(entry.params["x"] for entry in entries) == [1.0, 2.0]
        assert all(str(entry.version) == "1" for entry in entries)
        assert all(entry.size_bytes > 0 for entry in entries)

    def test_exists_covers_bookkeeping(self, coordinated, coord_store):
        path = _path(coord_store)
        assert coord_store.exists(path) is False
        coord_store.claim(path, "w1", ttl=60.0)
        assert coord_store.exists(path + LEASE_SUFFIX) is True
        coord_store.record_failure(path, "w1", "boom")
        assert coord_store.exists(path + FAILED_SUFFIX) is True
        coord_store.publish(path, _result())
        assert coord_store.exists(path) is True
        assert coord_store.exists(path + LEASE_SUFFIX) is False
        assert coord_store.exists(path + FAILED_SUFFIX) is False

    def test_remove_entries_takes_bookkeeping_along(self, coordinated, coord_store):
        done = _path(coord_store, "a")
        coord_store.publish(done, _result())
        coordinated.orphan_lease(coord_store, done)
        coordinated.orphan_tombstone(coord_store, done)
        assert coord_store.remove_entries([done]) == 1
        assert coord_store.load(done) is None
        assert not coord_store.exists(done + LEASE_SUFFIX)
        assert not coord_store.exists(done + FAILED_SUFFIX)

    def test_clear_and_prune_through_cache_seam(self, store):
        store.publish(_path(store, "a"), _result(1.0))
        store.publish(_path(store, "b"), _result(2.0))
        pruned = prune_cache(store, experiment="contract_exp", dry_run=True)
        assert len(pruned) == 2
        assert prune_cache(store, experiment="nope") == []
        assert len(scan_cache(store)) == 2
        assert clear_cache(store) == 2
        assert scan_cache(store) == []

    def test_collect_garbage_policy(self, coordinated, coord_store):
        expired = _path(coord_store, "a")
        coord_store.claim(expired, "dead", ttl=0.05)
        live = _path(coord_store, "b")
        coord_store.claim(live, "alive", ttl=120.0)
        failed = _path(coord_store, "c")
        coord_store.record_failure(failed, "dead", "boom")
        orphaned = _path(coord_store, "d")
        coord_store.publish(orphaned, _result())
        coordinated.orphan_lease(coord_store, orphaned)
        time.sleep(0.1)  # let the short lease lapse

        preview = gc_store(coord_store, dry_run=True)
        assert expired + LEASE_SUFFIX in preview
        assert failed + FAILED_SUFFIX in preview
        assert orphaned + LEASE_SUFFIX in preview
        assert live + LEASE_SUFFIX not in preview

        collected = gc_store(coord_store)
        assert sorted(collected) == sorted(preview)
        assert not coord_store.exists(expired + LEASE_SUFFIX)
        assert coord_store.exists(live + LEASE_SUFFIX)
        assert coord_store.load(orphaned) is not None  # entries never GC'd

    def test_collect_garbage_keep_pending_failures(self, coordinated, coord_store):
        pending = _path(coord_store, "a")
        coord_store.record_failure(pending, "w1", "still failed")
        superseded = _path(coord_store, "b")
        coord_store.publish(superseded, _result())
        coordinated.orphan_tombstone(coord_store, superseded)

        collected = coord_store.collect_garbage(keep_pending_failures=True)
        assert superseded + FAILED_SUFFIX in collected
        assert pending + FAILED_SUFFIX not in collected
        assert coord_store.failures()  # the pending failure is still reported

    def test_prune_during_concurrent_publish(self, store):
        """Maintenance racing live publishes never tears an entry: whatever
        survives a concurrent clear still loads, and a final clear drains
        the store completely."""
        stop = threading.Event()

        def publisher(digit):
            index = 0
            while not stop.is_set() and index < 40:
                store.publish(_path(store, digit), _result(float(index)))
                index += 1

        threads = [
            threading.Thread(target=publisher, args=(digit,)) for digit in "abc"
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(10):
                clear_cache(store)
                for entry in store.entries(read_meta=False):
                    loaded = store.load(entry.path)
                    assert loaded is None or loaded.to_records()
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        clear_cache(store)
        assert store.entries(read_meta=False) == []


class TestWorkerIntegration:
    def test_worker_runs_and_skips_done_points(
        self, contract_experiment, harness, store
    ):
        """`run_worker` completes a sweep on any backend and a second pass
        skips every point as done."""
        spec = SweepSpec.grid(x=[1.0, 2.0, 3.0])
        first = run_worker(
            contract_experiment, spec, store, worker_id="w1", wait=False
        )
        assert first.executed == [0, 1, 2]
        second = run_worker(
            contract_experiment, spec, store, worker_id="w2", wait=False
        )
        assert second.executed == []
        assert len(store.entries(read_meta=False)) == 3
