"""Lease heartbeat renewal and store garbage collection (tombstones, leases)."""

import os
import threading
import time

import pytest

from repro.api import Engine, ParamSpec, SweepSpec, gc_store, register_experiment, unregister_experiment
from repro.api.engine import cache_key
from repro.dist import (
    CLAIM_ACQUIRED,
    CLAIM_BUSY,
    CLAIM_DONE,
    FAILED_SUFFIX,
    LEASE_SUFFIX,
    SharedStore,
    run_worker,
)

CALLS = {"slow": 0}


@pytest.fixture
def slow_experiment():
    CALLS["slow"] = 0

    @register_experiment(
        "dist_slow_point",
        params=(ParamSpec("x", "float", 1.0), ParamSpec("sleep_s", "float", 1.2)),
        replace=True,
    )
    def slow(x, sleep_s):
        CALLS["slow"] += 1
        time.sleep(sleep_s)
        return [{"x": x}]

    yield "dist_slow_point"
    unregister_experiment("dist_slow_point")


@pytest.fixture
def failing_experiment():
    @register_experiment(
        "dist_failing_point", params=(ParamSpec("x", "float", 1.0),), replace=True
    )
    def failing(x):
        raise RuntimeError(f"boom at {x}")

    yield "dist_failing_point"
    unregister_experiment("dist_failing_point")


def _entry_path(store, name, **params):
    from repro.api import get_experiment

    experiment = get_experiment(name)
    resolved = experiment.resolve_params(params)
    return store.entry_path(
        experiment.name, cache_key(experiment.name, experiment.version, resolved)
    )


class TestRenew:
    def test_renew_extends_own_lease(self, tmp_path):
        store = SharedStore(str(tmp_path))
        path = os.path.join(str(tmp_path), "exp-0000000000000000.json")
        assert store.claim(path, "w1", ttl=0.2) == CLAIM_ACQUIRED
        before = store.read_lease(path)
        assert store.renew(path, "w1", ttl=60.0) is True
        after = store.read_lease(path)
        assert after.expires_at > before.expires_at
        assert after.worker == "w1"

    def test_renew_refuses_foreign_or_missing_lease(self, tmp_path):
        store = SharedStore(str(tmp_path))
        path = os.path.join(str(tmp_path), "exp-0000000000000000.json")
        assert store.renew(path, "w1", ttl=1.0) is False  # nothing leased
        store.claim(path, "w2", ttl=60.0)
        assert store.renew(path, "w1", ttl=60.0) is False
        assert store.read_lease(path).worker == "w2"

    def test_renew_rejects_nonpositive_ttl(self, tmp_path):
        store = SharedStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.renew("whatever.json", "w1", ttl=0.0)


class TestHeartbeatUnderShortTtl:
    def test_slow_point_is_not_stolen_despite_short_ttl(
        self, slow_experiment, tmp_path
    ):
        """Regression for the PR-4 footgun: ttl < point wall time used to let
        a sibling re-claim (and re-execute) a point a live worker was still
        computing.  The heartbeat renews at ttl/2, so the sibling stays
        locked out for the whole execution."""
        store = SharedStore(str(tmp_path))
        spec = SweepSpec.grid(x=[1.0])
        path = _entry_path(store, slow_experiment, x=1.0, sleep_s=1.2)
        ttl = 0.4  # one third of the point's wall time

        reports = {}

        def run():
            reports["w1"] = run_worker(
                slow_experiment,
                spec,
                store,
                base_params={"sleep_s": 1.2},
                worker_id="w1",
                lease_ttl=ttl,
                wait=False,
            )

        worker_thread = threading.Thread(target=run)
        worker_thread.start()
        try:
            deadline = time.monotonic() + 5.0
            while store.read_lease(path) is None:
                assert time.monotonic() < deadline, "worker never claimed the point"
                time.sleep(0.01)
            # Well past the original ttl, mid-execution: a sibling must
            # still see the point as busy, not claimable.
            time.sleep(2.0 * ttl)
            assert store.claim(path, "w2", ttl=ttl) == CLAIM_BUSY
        finally:
            worker_thread.join()
        assert store.claim(path, "w2", ttl=ttl) == CLAIM_DONE
        assert reports["w1"].executed == [0]
        assert CALLS["slow"] == 1  # executed exactly once, by w1


class TestFailureTombstones:
    def test_failed_point_leaves_tombstone_and_releases_lease(
        self, failing_experiment, tmp_path
    ):
        store = SharedStore(str(tmp_path))
        report = run_worker(
            failing_experiment,
            SweepSpec.grid(x=[1.0]),
            store,
            worker_id="w1",
            wait=False,
        )
        assert report.failed == [0]
        path = _entry_path(store, failing_experiment, x=1.0)
        assert store.read_lease(path) is None  # siblings may retry
        failures = store.failures()
        assert len(failures) == 1
        assert "boom at 1.0" in failures[0]["error"]
        assert failures[0]["worker"] == "w1"

    def test_successful_publish_supersedes_tombstone(self, tmp_path):
        from repro.api.results import ResultSet

        store = SharedStore(str(tmp_path))
        path = os.path.join(str(tmp_path), "exp-0000000000000000.json")
        store.record_failure(path, "w1", "boom")
        assert store.failures()
        store.publish(path, ResultSet({"a": [1]}))
        assert store.failures() == []

    def test_record_failure_noop_when_entry_exists(self, tmp_path):
        from repro.api.results import ResultSet

        store = SharedStore(str(tmp_path))
        path = os.path.join(str(tmp_path), "exp-0000000000000000.json")
        store.publish(path, ResultSet({"a": [1]}))
        store.record_failure(path, "w1", "late failure report")
        assert store.failures() == []


class TestGcStore:
    def test_collects_tombstones_and_expired_leases_only(self, tmp_path):
        store = SharedStore(str(tmp_path))
        directory = str(tmp_path)

        expired = os.path.join(directory, "exp-aaaaaaaaaaaaaaaa.json")
        store.claim(expired, "dead-worker", ttl=0.05)
        live = os.path.join(directory, "exp-bbbbbbbbbbbbbbbb.json")
        store.claim(live, "live-worker", ttl=120.0)
        failed = os.path.join(directory, "exp-cccccccccccccccc.json")
        store.record_failure(failed, "dead-worker", "boom")
        time.sleep(0.1)  # let the short lease lapse

        preview = gc_store(directory, dry_run=True)
        assert expired + LEASE_SUFFIX in preview
        assert failed + FAILED_SUFFIX in preview
        assert live + LEASE_SUFFIX not in preview

        collected = gc_store(directory)
        assert sorted(collected) == sorted(preview)
        assert not os.path.exists(expired + LEASE_SUFFIX)
        assert not os.path.exists(failed + FAILED_SUFFIX)
        assert os.path.exists(live + LEASE_SUFFIX)  # live worker untouched

    def test_collects_lease_orphaned_by_published_entry(self, tmp_path):
        from repro.dist import LocalStore

        shared = SharedStore(str(tmp_path))
        path = os.path.join(str(tmp_path), "exp-dddddddddddddddd.json")
        shared.claim(path, "w1", ttl=120.0)
        # A LocalStore publish does not clear leases -- exactly the orphan a
        # crashed SharedStore publish (between rename and unlink) leaves.
        from repro.api.results import ResultSet

        LocalStore(str(tmp_path)).publish(path, ResultSet({"a": [1]}))
        assert os.path.exists(path + LEASE_SUFFIX)
        collected = gc_store(str(tmp_path))
        assert path + LEASE_SUFFIX in collected
        assert os.path.exists(path)  # entries are never GC'd

    def test_missing_directory_is_empty(self, tmp_path):
        assert gc_store(str(tmp_path / "nope")) == []
        assert gc_store(None) == []

    # Kill-a-real-worker GC coverage lives in test_faults.py now, where the
    # crash-injection harness runs it against every coordinated backend.
