"""Shard determinism and partial-result merging (repro.dist.shards)."""

import pytest

from repro.api import Engine, ResultSet, SweepSpec
from repro.api.experiment import Experiment, ParamSpec
from repro.dist import ShardPlan, merge_results, point_hash, point_key, shard_of


def _experiment() -> Experiment:
    return Experiment(
        name="dist_shard_exp",
        fn=lambda x=1.0, label="a": [
            {"x": x, "label": label, "y": 2.0 * x},
            {"x": x, "label": label, "y": 3.0 * x},
        ],
        params=(
            ParamSpec("x", "float", 1.0, "input"),
            ParamSpec("label", "str", "a", "tag"),
        ),
        description="shard test experiment",
    )


class TestPointHash:
    def test_order_independent(self):
        assert point_hash({"x": 1.0, "y": 2.0}) == point_hash({"y": 2.0, "x": 1.0})

    def test_int_float_equivalent(self):
        """refine() coerces axes to float; int points must keep their shard."""
        assert point_hash({"x": 1}) == point_hash({"x": 1.0})
        assert point_key({"x": 1}) == point_key({"x": 1.0})

    def test_pinned_values_are_stable(self):
        """Hard-coded digests guard against drift across Python versions,
        dict-ordering behaviour and serialisation changes."""
        assert point_key({"length_um": 1.0}) == '{"length_um":1.0}'
        assert point_hash({"length_um": 1.0}).startswith("e21b3ec1b23ac42f")
        assert point_hash({"x": 1.0, "y": 2.0}).startswith("92e761962560e3e1")
        assert shard_of({"length_um": 1.0}, 4) == 3
        assert shard_of({"x": 1.0, "y": 2.0}, 4) == 1

    def test_tuple_values_normalise_like_results(self):
        assert point_hash({"t": (1.0, 2.0)}) == point_hash({"t": [1.0, 2.0]})


class TestShardPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(0, 0)
        with pytest.raises(ValueError):
            ShardPlan(2, 2)
        with pytest.raises(ValueError):
            ShardPlan(2, -1)

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 8])
    def test_every_point_exactly_once(self, n_shards):
        spec = SweepSpec.grid(
            x=[float(i) for i in range(7)], label=["a", "b", "c"]
        )
        points = spec.points()
        owners = [
            [plan.owns(point) for plan in ShardPlan.partition(n_shards)]
            for point in points
        ]
        assert all(sum(row) == 1 for row in owners), "each point owned exactly once"
        covered = [i for plan in ShardPlan.partition(n_shards) for i in plan.indices(points)]
        assert sorted(covered) == list(range(len(points)))

    def test_refine_keeps_original_points_on_their_shard(self):
        spec = SweepSpec.grid(x=[1, 4, 16])
        refined = spec.refine("x", factor=2, scale="log")
        plan = ShardPlan(3, shard_of({"x": 4.0}, 3))
        assert plan.owns({"x": 4})  # pre-refine spelling (int)
        assert {"x": 4.0} in [p for p in refined.points() if plan.owns(p)]

    def test_points_slices_spec_in_order(self):
        spec = SweepSpec.grid(x=[float(i) for i in range(10)])
        plans = ShardPlan.partition(4)
        sliced = [plan.points(spec) for plan in plans]
        flat = sorted(
            (point["x"] for shard in sliced for point in shard)
        )
        assert flat == [float(i) for i in range(10)]
        for shard in sliced:
            values = [point["x"] for point in shard]
            assert values == sorted(values), "slices preserve sweep order"


class TestEngineShardedSweep:
    def test_sharded_union_matches_serial(self):
        experiment = _experiment()
        spec = SweepSpec.grid(x=[float(i) for i in range(6)], label=["a", "b"])
        serial = Engine().sweep(experiment, spec)
        parts = [
            Engine().sweep(experiment, spec, shard=plan)
            for plan in ShardPlan.partition(3)
        ]
        sizes = [part.meta["shard"]["n_points"] for part in parts]
        assert sum(sizes) == len(spec)
        merged = merge_results(parts)
        assert merged == serial
        assert merged.content_hash == serial.content_hash

    def test_shard_meta_records_the_slice(self):
        experiment = _experiment()
        spec = SweepSpec.grid(x=[1.0, 2.0, 3.0])
        plan = ShardPlan(2, 0)
        part = Engine().sweep(experiment, spec, shard=plan)
        shard_meta = part.meta["shard"]
        assert shard_meta["n_shards"] == 2 and shard_meta["shard_index"] == 0
        assert shard_meta["point_indices"] == plan.indices(spec.points())

    def test_iter_sweep_shard_streams_global_indices(self):
        experiment = _experiment()
        spec = SweepSpec.grid(x=[float(i) for i in range(8)])
        plan = ShardPlan(2, 1)
        streamed = list(Engine().iter_sweep(experiment, spec, shard=plan))
        assert sorted(p.index for p in streamed) == plan.indices(spec.points())


class TestMergeResults:
    def _parts_and_serial(self, n_shards=3):
        experiment = _experiment()
        spec = SweepSpec.grid(x=[float(i) for i in range(6)], label=["a", "b"])
        serial = Engine().sweep(experiment, spec)
        parts = [
            Engine().sweep(experiment, spec, shard=plan)
            for plan in ShardPlan.partition(n_shards)
        ]
        return spec, serial, parts

    def test_json_round_trip_preserves_merge(self, tmp_path):
        spec, serial, parts = self._parts_and_serial()
        reloaded = []
        for index, part in enumerate(parts):
            path = str(tmp_path / f"part{index}.json")
            part.to_json(path)
            reloaded.append(ResultSet.from_json(path))
        merged = merge_results(reloaded)
        assert merged == serial
        assert merged.content_hash == serial.content_hash
        assert merged.meta["sweep"]["n_points"] == len(spec)
        assert merged.meta["merged"]["n_parts"] == len(parts)

    def test_csv_round_trip_with_explicit_spec(self, tmp_path):
        """CSV drops metadata, so the spec must be passed explicitly."""
        spec, serial, parts = self._parts_and_serial()
        reloaded = [ResultSet.from_csv(part.to_csv()) for part in parts]
        with pytest.raises(ValueError, match="no sweep metadata"):
            merge_results(reloaded)
        merged = merge_results(reloaded, spec=spec)
        assert merged.content_hash == serial.content_hash

    def test_merged_export_round_trips(self, tmp_path):
        _, serial, parts = self._parts_and_serial()
        merged = merge_results(parts)
        json_rt = ResultSet.from_json(merged.to_json())
        assert json_rt == serial and json_rt.meta == merged.meta
        csv_rt = ResultSet.from_csv(merged.to_csv())
        assert csv_rt.content_hash == serial.content_hash

    def test_overlapping_parts_rejected(self):
        spec, _, parts = self._parts_and_serial(2)
        full = Engine().sweep(_experiment(), spec)
        with pytest.raises(ValueError, match="disjoint"):
            merge_results([parts[0], full])

    def test_missing_points_need_opt_in(self):
        spec, serial, parts = self._parts_and_serial()
        # Drop a shard that actually owns points (a tiny sweep can leave a
        # hash shard empty, which would make the merge trivially complete).
        kept = sorted(parts, key=lambda p: p.meta["shard"]["n_points"])[:-1]
        with pytest.raises(ValueError, match="allow_missing"):
            merge_results(kept)
        merged = merge_results(kept, allow_missing=True)
        assert merged.meta["merged"]["missing_points"]
        assert len(merged) < len(serial)

    def test_foreign_records_rejected(self):
        spec, _, parts = self._parts_and_serial()
        stranger = Engine().sweep(_experiment(), SweepSpec.grid(x=[99.0]))
        with pytest.raises(ValueError, match="different sweeps"):
            merge_results(parts + [stranger])
        # Meta-less parts against a narrower spec -> records that match no
        # sweep point must be rejected, not silently dropped.
        bare = [ResultSet.from_csv(part.to_csv()) for part in parts if len(part)]
        narrow = SweepSpec.grid(x=[0.0, 1.0], label=["a", "b"])
        with pytest.raises(ValueError, match="match no point"):
            merge_results(bare, spec=narrow)

    def test_mixed_base_params_rejected(self):
        """Shards run with different -p overrides compute different physics
        for the same axis values; merging them must fail loudly."""
        experiment = _experiment()
        spec = SweepSpec.grid(x=[float(i) for i in range(6)])
        plans = ShardPlan.partition(2)
        part_a = Engine().sweep(experiment, spec, shard=plans[0], base_params={"label": "a"})
        part_b = Engine().sweep(experiment, spec, shard=plans[1], base_params={"label": "b"})
        with pytest.raises(ValueError, match="different base parameters"):
            merge_results([part_a, part_b])
        # Identical base params merge fine.
        part_b_same = Engine().sweep(
            experiment, spec, shard=plans[1], base_params={"label": "a"}
        )
        merged = merge_results([part_a, part_b_same])
        assert len(merged) == 2 * len(spec)

    def test_mixed_experiments_rejected(self):
        _, _, parts = self._parts_and_serial()
        other = Experiment(
            name="dist_shard_other",
            fn=lambda x=1.0: [{"x": x}],
            params=(ParamSpec("x", "float", 1.0, "input"),),
        )
        foreign = Engine().sweep(other, SweepSpec.grid(x=[1.0]))
        with pytest.raises(ValueError, match="different experiments"):
            merge_results(parts + [foreign])

    def test_empty_parts_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_results([])
