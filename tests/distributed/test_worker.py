"""Distributed worker loop: exactly-once execution, recovery, CLI parity.

The two-worker tests are the PR-4 acceptance criteria: a sweep split across
2+ workers over a shared store must produce a merged ResultSet bit-identical
(records and provenance hashes) to the single-engine serial run, with zero
duplicated point executions, and a worker killed mid-sweep must have its
leased points recovered after the lease ttl.
"""

import json
import os
import subprocess
import sys
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import Engine, ResultSet, SweepSpec, register_experiment, unregister_experiment
from repro.api.experiment import ParamSpec
from repro.dist import SharedStore, ShardPlan, run_worker

SPEC = SweepSpec.grid(length_um=[1.0, 5.0, 10.0, 50.0, 100.0, 500.0])


class TestTwoWorkersRegistryDriven:
    """Registry-driven acceptance test against a real registered experiment."""

    def test_merged_equals_serial_with_zero_duplicates(self, tmp_path):
        serial = Engine().sweep("table_density", SPEC)
        store = SharedStore(str(tmp_path))

        with ThreadPoolExecutor(max_workers=2) as pool:
            reports = [
                future.result()
                for future in [
                    pool.submit(
                        run_worker,
                        "table_density",
                        SPEC,
                        store,
                        worker_id=f"w{i}",
                        poll_interval=0.01,
                    )
                    for i in range(2)
                ]
            ]

        # Zero duplicated executions: the executed sets are disjoint and
        # together cover the sweep exactly.
        executed = [set(report.executed) for report in reports]
        assert executed[0].isdisjoint(executed[1])
        assert sorted(executed[0] | executed[1]) == list(range(len(SPEC)))
        assert all(report.ok for report in reports)
        assert all(not report.failed and not report.abandoned for report in reports)

        # Bit-identical merged result: records and provenance hash.
        merged = Engine(store=store).sweep("table_density", SPEC)
        assert merged == serial
        assert merged.content_hash == serial.content_hash

    def test_worker_streams_on_result(self, tmp_path):
        store = SharedStore(str(tmp_path))
        seen = []
        report = run_worker(
            "table_density", SPEC, store, worker_id="w1", on_result=seen.append
        )
        assert sorted(point.index for point in seen) == list(range(len(SPEC)))
        assert all(point.ok and not point.cache_hit for point in seen)
        assert len(report.executed) == len(SPEC)

        # A second worker sees everything as already done -- streamed as
        # cache hits, exactly like the engine's iter_sweep.
        seen_again = []
        report2 = run_worker(
            "table_density", SPEC, store, worker_id="w2", on_result=seen_again.append
        )
        assert not report2.executed
        assert sorted(report2.already_done) == list(range(len(SPEC)))
        assert all(point.cache_hit for point in seen_again)


class TestWorkerRecovery:
    def test_killed_worker_leases_are_recovered(self, tmp_path):
        """A worker that died mid-point blocks only until its ttl lapses."""
        store = SharedStore(str(tmp_path))
        points = SPEC.points()
        # Simulate the kill: a dead worker claimed two points with a short
        # ttl and never published (its process is gone).
        engine = Engine(store=store)
        from repro.api.engine import cache_key
        from repro.api.experiment import get_experiment

        experiment = get_experiment("table_density")
        for point in points[:2]:
            resolved = experiment.resolve_params(point)
            path = store.entry_path(
                experiment.name,
                cache_key(experiment.name, experiment.version, resolved),
            )
            assert store.claim(path, "dead-worker", ttl=0.3) == "acquired"

        # A restarted worker waits the leases out and completes the sweep.
        report = run_worker(
            "table_density", SPEC, store, worker_id="w1", poll_interval=0.05
        )
        assert sorted(report.executed) == list(range(len(SPEC)))
        assert not report.abandoned

        serial = Engine().sweep("table_density", SPEC)
        merged = engine.sweep("table_density", SPEC)
        assert merged.content_hash == serial.content_hash

    def test_no_wait_abandons_foreign_leases(self, tmp_path):
        store = SharedStore(str(tmp_path))
        experiment_points = SPEC.points()
        from repro.api.engine import cache_key
        from repro.api.experiment import get_experiment

        experiment = get_experiment("table_density")
        resolved = experiment.resolve_params(experiment_points[0])
        path = store.entry_path(
            experiment.name, cache_key(experiment.name, experiment.version, resolved)
        )
        store.claim(path, "other-worker", ttl=60.0)

        report = run_worker(
            "table_density", SPEC, store, worker_id="w1", wait=False
        )
        assert report.abandoned == [0]
        assert sorted(report.executed) == list(range(1, len(SPEC)))
        # Handing leased points back to their live owners is the documented
        # success path of wait=False, not a failure.
        assert report.ok

    def test_max_wait_bounds_the_wait(self, tmp_path):
        store = SharedStore(str(tmp_path))
        from repro.api.engine import cache_key
        from repro.api.experiment import get_experiment

        experiment = get_experiment("table_density")
        resolved = experiment.resolve_params(SPEC.points()[0])
        path = store.entry_path(
            experiment.name, cache_key(experiment.name, experiment.version, resolved)
        )
        store.claim(path, "other-worker", ttl=120.0)
        report = run_worker(
            "table_density",
            SPEC,
            store,
            worker_id="w1",
            poll_interval=0.02,
            max_wait=0.1,
        )
        assert report.abandoned == [0]


class TestWorkerFailuresAndShards:
    @pytest.fixture
    def failing_experiment(self):
        @register_experiment(
            "dist_worker_failing",
            params=(ParamSpec("x", "float", 1.0, "input"),),
            replace=True,
        )
        def failing(x: float):
            if x == 2.0:
                raise RuntimeError("boom")
            return [{"x": x, "y": 2.0 * x}]

        yield "dist_worker_failing"
        unregister_experiment("dist_worker_failing")

    def test_failure_releases_lease_and_keeps_siblings(self, tmp_path, failing_experiment):
        store = SharedStore(str(tmp_path))
        spec = SweepSpec.grid(x=[1.0, 2.0, 3.0])
        seen = []
        report = run_worker(
            failing_experiment, spec, store, worker_id="w1", on_result=seen.append
        )
        assert report.failed == [1]
        assert sorted(report.executed) == [0, 2]
        assert not report.ok
        failed_point = next(point for point in seen if not point.ok)
        assert "RuntimeError: boom" in failed_point.error
        # The lease was released, so another worker may retry (and fail) it.
        report2 = run_worker(failing_experiment, spec, store, worker_id="w2")
        assert report2.failed == [1]
        assert sorted(report2.already_done) == [0, 2]

    def test_sharded_workers_split_statically(self, tmp_path):
        store = SharedStore(str(tmp_path))
        plans = ShardPlan.partition(2)
        reports = [
            run_worker(
                "table_density", SPEC, store, worker_id=f"w{i}", shard=plan
            )
            for i, plan in enumerate(plans)
        ]
        executed = [set(report.executed) for report in reports]
        assert executed[0].isdisjoint(executed[1])
        assert sorted(executed[0] | executed[1]) == list(range(len(SPEC)))
        for plan, report in zip(plans, reports):
            assert sorted(report.executed) == plan.indices(SPEC.points())


class TestWorkerCLI:
    """Two real OS processes through ``python -m repro worker``."""

    def _run_workers(self, store_dir: str, n: int = 2):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.getcwd(), "src")
        command = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "table_density",
            "--grid",
            "length_um=1,5,10,50,100,500",
            "--store",
            store_dir,
            "--no-progress",
        ]
        processes = [
            subprocess.Popen(
                command + ["--worker-id", f"cli-w{i}"],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            for i in range(n)
        ]
        outputs = []
        for process in processes:
            stdout, stderr = process.communicate(timeout=120)
            assert process.returncode == 0, stderr
            outputs.append(stdout)
        return outputs

    def test_cli_merge_bad_parts_exit_cleanly(self, tmp_path, capsys):
        """Unreadable or non-ResultSet parts are user errors (exit 2), not tracebacks."""
        from repro.api.cli import main

        assert main(["merge", str(tmp_path / "missing.json")]) == 2
        assert "error: cannot read part" in capsys.readouterr().err

        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"foo": 1}')
        assert main(["merge", str(bogus)]) == 2
        assert "not a ResultSet JSON export" in capsys.readouterr().err

    def test_cli_two_process_sweep_matches_serial(self, tmp_path):
        store_dir = str(tmp_path / "store")
        outputs = self._run_workers(store_dir)
        executed = sum(
            int(line.split("--")[1].split("executed")[0].strip())
            for output in outputs
            for line in output.splitlines()
            if "executed" in line and line.startswith("worker cli-w")
        )
        assert executed == len(SPEC), outputs

        serial = Engine().sweep("table_density", SPEC)
        merged = Engine(store=SharedStore(store_dir)).sweep("table_density", SPEC)
        assert merged.content_hash == serial.content_hash
