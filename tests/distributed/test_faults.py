"""Crash-recovery invariants, via SIGKILL injection at protocol boundaries.

Runs :mod:`faults`' doomed worker against both coordinated backends and
asserts the survivor-side invariants: a lease left by a kill at the claim
boundary expires and is GC'd / taken over; a kill mid-execution is recovered
by a second worker with the point executed exactly once overall; a kill
right after publish leaves a durable, lease-free entry that later workers
skip.  (This battery supersedes the ad-hoc kill test that used to live in
``test_renewal_gc.py``.)
"""

import time

import pytest

from repro.api import (
    ParamSpec,
    SweepSpec,
    gc_store,
    get_experiment,
    register_experiment,
    unregister_experiment,
)
from repro.api.engine import cache_key
from repro.dist import (
    CLAIM_ACQUIRED,
    CLAIM_BUSY,
    CLAIM_DONE,
    LEASE_SUFFIX,
    run_worker,
)
from repro.dist.sqlstore import resolve_store
from faults import EXPERIMENT, crash_worker_at
from store_contract import SharedHarness, SqliteHarness

HARNESSES = (SharedHarness(), SqliteHarness())


@pytest.fixture(params=HARNESSES, ids=lambda h: h.name)
def harness(request):
    return request.param


@pytest.fixture
def fault_experiment():
    """The parent-side twin of the doomed worker's experiment (identical
    name/params/version, so cache keys agree across the process boundary).
    Set ``holder["log"]`` to a path to count parent-side executions in the
    same log the subprocess appends to."""
    holder = {"log": None}

    @register_experiment(
        EXPERIMENT, params=(ParamSpec("x", "float", 1.0),), replace=True
    )
    def fault_point(x):
        if holder["log"] is not None:
            with open(holder["log"], "a") as handle:
                handle.write(f"{x}\n")
        return [{"x": x, "y": 2.0 * x}]

    yield holder
    unregister_experiment(EXPERIMENT)


def _entry_path(store):
    experiment = get_experiment(EXPERIMENT)
    resolved = experiment.resolve_params({"x": 1.0})
    return store.entry_path(
        experiment.name, cache_key(experiment.name, experiment.version, resolved)
    )


class TestCrashAtClaim:
    def test_lease_blocks_then_expires_and_is_collected(
        self, harness, fault_experiment, tmp_path
    ):
        spec = harness.spec(tmp_path)
        crash_worker_at(spec, "claimed", tmp_path / "worker", lease_ttl=2.0)

        store = resolve_store(spec)
        path = _entry_path(store)
        lease = store.read_lease(path)
        assert lease is not None and lease.worker == "doomed"
        # Within the ttl the dead worker still looks alive: the point is
        # busy and GC must not touch the lease.
        assert store.claim(path, "rescuer", ttl=60.0) == CLAIM_BUSY
        assert gc_store(store) == []
        time.sleep(2.1)  # the ttl lapses with the worker dead
        collected = gc_store(store)
        assert path + LEASE_SUFFIX in collected
        assert store.claim(path, "rescuer", ttl=60.0) == CLAIM_ACQUIRED


class TestCrashMidExecution:
    def test_rescuer_takes_over_and_completes(
        self, harness, fault_experiment, tmp_path
    ):
        spec = harness.spec(tmp_path)
        worker = crash_worker_at(
            spec, "executing", tmp_path / "worker", lease_ttl=1.0
        )

        store = resolve_store(spec)
        path = _entry_path(store)
        assert store.load(path) is None  # the victim never published
        assert store.read_lease(path) is not None  # but its heartbeat lease remains

        fault_experiment["log"] = worker.log_path
        report = run_worker(
            EXPERIMENT,
            SweepSpec.grid(x=[1.0]),
            store,
            worker_id="rescuer",
            lease_ttl=60.0,
            wait=True,
            max_wait=30.0,
        )
        assert report.executed == [0]
        assert store.load(path) is not None
        assert store.read_lease(path) is None
        # The victim died mid-point, so only the rescuer's execution completed.
        assert len(worker.completed_executions()) == 1


class TestCrashAfterPublish:
    def test_entry_durable_and_exactly_once(
        self, harness, fault_experiment, tmp_path
    ):
        spec = harness.spec(tmp_path)
        worker = crash_worker_at(spec, "published", tmp_path / "worker")

        store = resolve_store(spec)
        path = _entry_path(store)
        result = store.load(path)
        assert result is not None
        assert result.to_records() == [{"x": 1.0, "y": 2.0}]
        assert store.read_lease(path) is None
        assert store.claim(path, "rescuer") == CLAIM_DONE
        assert len(worker.completed_executions()) == 1
        assert gc_store(store) == []  # a clean publish leaves no residue

        fault_experiment["log"] = worker.log_path
        report = run_worker(
            EXPERIMENT, SweepSpec.grid(x=[1.0]), store, worker_id="rescuer", wait=False
        )
        assert report.executed == []
        assert len(worker.completed_executions()) == 1  # still exactly once
