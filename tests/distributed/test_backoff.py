"""Jittered exponential backoff: growth, cap, jitter bounds, reset."""

import random

import pytest

from repro.dist import Backoff


class _FixedRng:
    """rng stub (random.uniform signature) returning a fixed value."""

    def __init__(self, value: float) -> None:
        self.value = value
        self.calls: list[tuple[float, float]] = []

    def __call__(self, low: float, high: float) -> float:
        self.calls.append((low, high))
        return self.value


class TestGrowth:
    def test_geometric_growth_without_jitter(self):
        backoff = Backoff(initial=0.1, maximum=10.0, factor=2.0, jitter=0.0)
        assert [backoff.next_delay() for _ in range(4)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.8]
        )

    def test_capped_at_maximum(self):
        backoff = Backoff(initial=1.0, maximum=3.0, factor=2.0, jitter=0.0)
        assert [backoff.next_delay() for _ in range(4)] == pytest.approx(
            [1.0, 2.0, 3.0, 3.0]
        )

    def test_reset_snaps_back_to_initial(self):
        backoff = Backoff(initial=0.5, maximum=8.0, factor=2.0, jitter=0.0)
        backoff.next_delay()
        backoff.next_delay()
        backoff.reset()
        assert backoff.next_delay() == pytest.approx(0.5)


class TestJitter:
    def test_jitter_bounds_passed_to_rng(self):
        rng = _FixedRng(1.0)
        backoff = Backoff(initial=2.0, maximum=50.0, jitter=0.25, rng=rng)
        backoff.next_delay()
        assert rng.calls == [(0.75, 1.25)]

    def test_jitter_multiplies_the_delay(self):
        backoff = Backoff(
            initial=2.0, maximum=50.0, jitter=0.25, rng=_FixedRng(1.25)
        )
        assert backoff.next_delay() == pytest.approx(2.5)

    def test_delays_stay_within_jitter_band(self):
        backoff = Backoff(
            initial=0.2, maximum=5.0, factor=2.0, jitter=0.25,
            rng=random.Random(42).uniform,
        )
        raw = 0.2
        for _ in range(12):
            delay = backoff.next_delay()
            assert 0.75 * raw <= delay <= 1.25 * raw
            raw = min(raw * 2.0, 5.0)

    def test_decorrelated_sequences(self):
        """Two daemons with different rng seeds do not poll in lockstep."""
        first = Backoff(initial=0.2, maximum=5.0, rng=random.Random(1).uniform)
        second = Backoff(initial=0.2, maximum=5.0, rng=random.Random(2).uniform)
        a = [first.next_delay() for _ in range(6)]
        b = [second.next_delay() for _ in range(6)]
        assert a != b


class TestValidation:
    def test_bad_initial_rejected(self):
        with pytest.raises(ValueError, match="initial"):
            Backoff(initial=0.0)

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            Backoff(factor=0.5)

    def test_bad_jitter_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            Backoff(jitter=1.0)
        with pytest.raises(ValueError, match="jitter"):
            Backoff(jitter=-0.1)
