"""Batched lease claims and stacked worker execution.

Two dispatch-overhead guarantees land here.  First, ``claim_many`` lets a
worker settle a whole batch of points against the store in one round trip,
with exact per-path statuses (the contract battery below runs identically
on every backend).  Second, the worker loop's adaptive claim batching
bounds *claims per sweep* logarithmically -- the regression tests pin that
budget via the ``WorkerReport`` round-trip counters so a future change
cannot quietly reintroduce one-claim-per-point chatter.
"""

import math
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    Engine,
    ParamSpec,
    ResultSet,
    SweepSpec,
    register_experiment,
    unregister_experiment,
)
from repro.dist import (
    CLAIM_ACQUIRED,
    CLAIM_BUSY,
    CLAIM_DONE,
    CLAIM_SKIPPED,
    run_worker,
)
from repro.dist.worker import WorkerReport

from store_contract import COORDINATED, HARNESSES

SPEC = SweepSpec.grid(x=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])


@pytest.fixture
def batched_experiment():
    def single(x: float):
        return [{"x": x, "y": 3.0 * x}]

    register_experiment(
        "dist_test_batched",
        params=(ParamSpec("x", "float", 1.0),),
        batch_fn=lambda dicts: [single(**params) for params in dicts],
        replace=True,
    )(single)
    yield "dist_test_batched"
    unregister_experiment("dist_test_batched")


def _paths(store, count: int = 4):
    return [store.entry_path("contract", f"{index:016x}") for index in range(count)]


@pytest.mark.parametrize("harness", HARNESSES, ids=lambda h: h.name)
class TestClaimManyContract:
    def test_all_acquired_in_one_call(self, harness, tmp_path):
        store = harness.make(tmp_path)
        paths = _paths(store)
        assert store.claim_many(paths, "w1") == [CLAIM_ACQUIRED] * len(paths)

    def test_max_acquire_skips_the_rest(self, harness, tmp_path):
        store = harness.make(tmp_path)
        paths = _paths(store, 5)
        statuses = store.claim_many(paths, "w1", max_acquire=2)
        assert statuses == [CLAIM_ACQUIRED] * 2 + [CLAIM_SKIPPED] * 3
        # Skipped paths were genuinely untouched: still claimable.
        assert store.claim_many(paths[2:], "w1") == [CLAIM_ACQUIRED] * 3

    def test_done_entries_reported(self, harness, tmp_path):
        store = harness.make(tmp_path)
        paths = _paths(store, 3)
        store.publish(
            paths[1],
            ResultSet.from_records(
                [{"x": 1.0}], meta={"experiment": "contract", "version": "1", "params": {}}
            ),
        )
        statuses = store.claim_many(paths, "w1")
        assert statuses[1] == CLAIM_DONE
        assert statuses[0] == statuses[2] == CLAIM_ACQUIRED

    def test_empty_input(self, harness, tmp_path):
        assert harness.make(tmp_path).claim_many([], "w1") == []


@pytest.mark.parametrize("harness", COORDINATED, ids=lambda h: h.name)
class TestClaimManyCoordination:
    def test_foreign_leases_are_busy(self, harness, tmp_path):
        store = harness.make(tmp_path)
        paths = _paths(store, 4)
        assert store.claim_many(paths[:2], "w1", max_acquire=2) == [CLAIM_ACQUIRED] * 2
        statuses = store.claim_many(paths, "w2")
        assert statuses == [CLAIM_BUSY, CLAIM_BUSY, CLAIM_ACQUIRED, CLAIM_ACQUIRED]

    def test_own_lease_is_reentrant(self, harness, tmp_path):
        store = harness.make(tmp_path)
        paths = _paths(store, 2)
        store.claim_many(paths, "w1")
        assert store.claim_many(paths, "w1") == [CLAIM_ACQUIRED] * 2

    def test_invalid_ttl_rejected(self, harness, tmp_path):
        store = harness.make(tmp_path)
        with pytest.raises(ValueError):
            store.claim_many(_paths(store, 1), "w1", ttl=0.0)

    def test_two_workers_partition_without_overlap(self, harness, tmp_path):
        store = harness.make(tmp_path)
        paths = _paths(store, 12)

        def grab(worker):
            return store.claim_many(paths, worker, max_acquire=6)

        with ThreadPoolExecutor(max_workers=2) as pool:
            first, second = pool.map(grab, ["w1", "w2"])
        acquired = [
            {path for path, status in zip(paths, statuses) if status == CLAIM_ACQUIRED}
            for statuses in (first, second)
        ]
        assert acquired[0].isdisjoint(acquired[1])
        assert len(acquired[0] | acquired[1]) == 12


@pytest.mark.parametrize("harness", COORDINATED, ids=lambda h: h.name)
class TestWorkerClaimBudget:
    def test_lone_worker_claims_logarithmically(self, harness, tmp_path, batched_experiment):
        """Satellite regression: claims per sweep stay within a fixed
        budget -- adaptive batching claims half the remaining points per
        pass, so a lone worker drains N points in O(log N) claim round
        trips and one publish per point, never one claim per point."""
        store = harness.make(tmp_path)
        report = run_worker(batched_experiment, SPEC, store, poll_interval=0.01)
        n_points = len(SPEC)
        assert sorted(report.executed) == list(range(n_points))
        budget = math.ceil(math.log2(n_points)) + 2
        assert 0 < report.claim_round_trips <= budget
        assert report.store_round_trips <= report.claim_round_trips + n_points

    def test_explicit_claim_batch_of_one_still_completes(
        self, harness, tmp_path, batched_experiment
    ):
        """claim_batch=1 maximises skips; even with ``wait=False`` the
        worker must treat its own skips as progress and finish the sweep."""
        store = harness.make(tmp_path)
        report = run_worker(
            batched_experiment, SPEC, store, wait=False, poll_interval=0.01, claim_batch=1
        )
        assert sorted(report.executed) == list(range(len(SPEC)))
        assert report.claim_round_trips == len(SPEC)

    def test_rejoining_worker_loads_without_claiming_leases(
        self, harness, tmp_path, batched_experiment
    ):
        store = harness.make(tmp_path)
        run_worker(batched_experiment, SPEC, store, poll_interval=0.01)
        rejoin = run_worker(batched_experiment, SPEC, store, poll_interval=0.01)
        assert rejoin.executed == []
        assert len(rejoin.already_done) == len(SPEC)


@pytest.mark.parametrize("harness", COORDINATED, ids=lambda h: h.name)
class TestBatchedWorkerParity:
    def test_batched_worker_matches_serial_engine(self, harness, tmp_path, batched_experiment):
        serial = Engine().sweep(batched_experiment, SPEC)
        store = harness.make(tmp_path)
        run_worker(batched_experiment, SPEC, store, poll_interval=0.01)
        merged = Engine(store=store).sweep(batched_experiment, SPEC)
        assert merged == serial
        assert merged.content_hash == serial.content_hash

    def test_real_experiment_batched_worker_parity(self, harness, tmp_path):
        """fig12 declares a batch_fn; the worker's stacked execution must
        be bit-identical to the serial engine on a real physics sweep."""
        spec = SweepSpec.grid(lengths_um=[(10.0,), (50.0,)])
        base = {"diameters_nm": (10.0,), "channel_counts": (2.0, 6.0), "n_segments": 6}
        serial = Engine().sweep("fig12", spec, base_params=base)
        store = harness.make(tmp_path)
        run_worker("fig12", spec, store, base_params=base, poll_interval=0.01)
        merged = Engine(store=store).sweep("fig12", spec, base_params=base)
        assert merged.content_hash == serial.content_hash


class TestWorkerReportCounters:
    def test_defaults_and_summary(self):
        report = WorkerReport(
            worker_id="w1",
            n_points=2,
            executed=[0, 1],
            wall_time_s=0.5,
            claim_round_trips=3,
            store_round_trips=5,
        )
        assert "3 claim / 5 store round trips" in report.summary()
        bare = WorkerReport(worker_id="w1", n_points=0)
        assert bare.claim_round_trips == 0
        assert bare.store_round_trips == 0
