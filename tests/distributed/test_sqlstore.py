"""SqliteStore specifics: spec resolution, schema guard, migration, parity.

The cross-backend protocol behaviour is covered by the conformance battery
(``test_store_contract.py``); this file tests what is unique to the sqlite
backend -- ``resolve_store`` spellings, the schema version guard, directory
-> database migration, and the end-to-end guarantee that a sweep executed
through a :class:`SqliteStore` produces content-hash-identical results to a
serial :class:`LocalStore` run.
"""

import os
import sqlite3
import time

import pytest

from repro.api import Engine, ParamSpec, register_experiment, unregister_experiment
from repro.api.results import ResultSet
from repro.dist import (
    LocalStore,
    SharedStore,
    SqliteStore,
    migrate_store,
    resolve_store,
    run_worker,
)
from repro.api import SweepSpec
from repro.dist.sqlstore import SCHEMA_VERSION


@pytest.fixture
def sql_experiment():
    @register_experiment(
        "sqlstore_exp", params=(ParamSpec("x", "float", 1.0),), replace=True
    )
    def sqlstore_exp(x):
        return [{"x": x, "y": x * x}]

    yield "sqlstore_exp"
    unregister_experiment("sqlstore_exp")


def _result(x=1.0, experiment="sqlstore_exp"):
    return ResultSet.from_records(
        [{"x": x, "y": x * x}],
        meta={"experiment": experiment, "version": "1", "params": {"x": x}},
    )


class TestResolveStore:
    def test_sqlite_url_spellings(self, tmp_path):
        relative = resolve_store("sqlite:///sweeps.db")
        assert isinstance(relative, SqliteStore)
        assert relative.directory == "sweeps.db"

        absolute = resolve_store(f"sqlite:///{tmp_path}/sweeps.db")
        assert isinstance(absolute, SqliteStore)
        assert absolute.directory == f"{tmp_path}/sweeps.db"

        assert resolve_store("sqlite:plain.db").directory == "plain.db"
        assert resolve_store("sqlite://plain.db").directory == "plain.db"
        assert resolve_store("sqlite:/abs/plain.db").directory == "/abs/plain.db"

    def test_empty_sqlite_path_rejected(self):
        with pytest.raises(ValueError, match="no database path"):
            resolve_store("sqlite:///")

    def test_existing_file_is_sqlite(self, tmp_path):
        db = str(tmp_path / "existing.db")
        SqliteStore(db).publish("exp-" + "0" * 16 + ".json", _result())
        assert isinstance(resolve_store(db), SqliteStore)

    def test_directory_paths_stay_directory_stores(self, tmp_path):
        assert isinstance(resolve_store(str(tmp_path)), SharedStore)
        assert isinstance(resolve_store(str(tmp_path), shared=False), LocalStore)
        assert isinstance(resolve_store(str(tmp_path / "new-dir")), SharedStore)

    def test_store_instances_pass_through(self, tmp_path):
        store = SqliteStore(str(tmp_path / "x.db"))
        assert resolve_store(store) is store


class TestSchemaGuard:
    def test_future_schema_is_rejected(self, tmp_path):
        db = str(tmp_path / "future.db")
        store = SqliteStore(db)
        store.publish("exp-" + "0" * 16 + ".json", _result())
        store.close()
        with sqlite3.connect(db) as connection:
            connection.execute(
                "UPDATE schema_info SET version = ?", (SCHEMA_VERSION + 1,)
            )
        with pytest.raises(ValueError, match="schema version"):
            SqliteStore(db).entries()


class TestEngineIntegration:
    def test_engine_accepts_store_spec_string(self, sql_experiment, tmp_path):
        db = str(tmp_path / "engine.db")
        engine = Engine(store=f"sqlite:///{db}")
        assert isinstance(engine.store, SqliteStore)
        first = engine.run(sql_experiment, x=2.0)
        assert first.meta.get("cache_hit") is None
        again = engine.run(sql_experiment, x=2.0)
        assert again.meta.get("cache_hit") is True
        assert again.content_hash == first.content_hash

    def test_sqlite_sweep_matches_serial_local_run(self, sql_experiment, tmp_path):
        """The acceptance bar: a sweep through a SqliteStore merges to the
        same content hash as the classic serial cache-directory run."""
        xs = [1.0, 2.0, 3.0, 4.0]
        serial = Engine(cache_dir=str(tmp_path / "cache")).sweep(
            sql_experiment, SweepSpec.grid(x=xs)
        )
        store = SqliteStore(str(tmp_path / "sweep.db"))
        report = run_worker(
            sql_experiment, SweepSpec.grid(x=xs), store, worker_id="w1", wait=False
        )
        assert report.executed == [0, 1, 2, 3]
        merger = Engine(store=store)
        merged = merger.sweep(sql_experiment, SweepSpec.grid(x=xs))
        assert merger.cache_hits == len(xs)  # every point served from the db
        assert merged.content_hash == serial.content_hash


class TestMigration:
    def test_directory_to_sqlite_preserves_identity(self, sql_experiment, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine = Engine(cache_dir=cache_dir)
        for x in (1.0, 2.0, 3.0):
            engine.run(sql_experiment, x=x)
        source = SharedStore(cache_dir)
        source.record_failure(
            source.entry_path(sql_experiment, "f" * 16), "w1", "boom"
        )

        destination = SqliteStore(str(tmp_path / "migrated.db"))
        report = migrate_store(source, destination)
        assert report.migrated == 3
        assert report.failures == 1
        assert report.skipped == []
        assert "migrated 3 entries" in report.summary()

        by_key = {entry.key: entry for entry in source.entries()}
        for entry in destination.entries():
            if entry.key == "f" * 16:
                continue
            twin = by_key[entry.key]
            assert destination.load(entry.path).content_hash == (
                source.load(twin.path).content_hash
            )
            assert entry.mtime == pytest.approx(twin.mtime)  # timestamps survive
            assert entry.params == twin.params
        assert len(destination.failures()) == 1
        # Re-running the engine against the migrated store hits the cache.
        served = Engine(store=destination).run(sql_experiment, x=2.0)
        assert served.meta.get("cache_hit") is True

    def test_corrupt_source_entries_are_skipped(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        source = SharedStore(str(cache_dir))
        good = source.entry_path("exp", "a" * 16)
        source.publish(good, _result(experiment="exp"))
        torn = cache_dir / ("exp-" + "b" * 16 + ".json")
        torn.write_text('{"columns": ')

        destination = SqliteStore(str(tmp_path / "migrated.db"))
        report = migrate_store(source, destination)
        assert report.migrated == 1
        assert report.skipped == [str(torn)]
        assert "skipped 1 corrupt entries" in report.summary()
        assert len(destination.entries()) == 1

    def test_sqlite_to_directory_roundtrip(self, tmp_path):
        source = SqliteStore(str(tmp_path / "source.db"))
        path = source.entry_path("exp", "a" * 16)
        source.publish(path, _result(experiment="exp"), created_at=1234567890.0)

        destination = LocalStore(str(tmp_path / "cache"))
        report = migrate_store(source, destination)
        assert report.migrated == 1
        entry = destination.entries()[0]
        assert entry.mtime == pytest.approx(1234567890.0)
        assert destination.load(entry.path).content_hash == (
            source.load(path).content_hash
        )


class TestVirtualPaths:
    def test_entry_path_is_a_row_key_not_a_file(self, tmp_path):
        store = SqliteStore(str(tmp_path / "store.db"))
        path = store.entry_path("exp", "a" * 32)
        assert path == "exp-" + "a" * 16 + ".json"
        store.publish(path, _result(experiment="exp"))
        assert not os.path.exists(path)  # no such file: it is a row
        assert store.load(path) is not None

    def test_close_and_reopen(self, tmp_path):
        store = SqliteStore(str(tmp_path / "store.db"))
        path = store.entry_path("exp", "a" * 16)
        store.publish(path, _result(experiment="exp"))
        store.close()
        assert store.load(path) is not None  # reconnects lazily
