"""Crash-injection harness: SIGKILL a worker subprocess at a protocol boundary.

A :class:`CrashingWorker` launches a real worker process against a store
(spelled as a :func:`repro.dist.resolve_store` spec so the same harness
drives directory *and* sqlite backends), runs it up to a chosen protocol
boundary, and kills it there with ``SIGKILL`` -- no cleanup, no atexit, the
worker just stops existing.  Tests then assert the recovery invariants on
the survivor side: leases expire and are taken over, published entries are
durable, GC clears exactly the residue the crash left.

Boundaries (:data:`BOUNDARIES`):

* ``claimed`` -- the worker holds a fresh lease but has not started the
  point (killed between claim and execute),
* ``executing`` -- the worker is mid-point with an active heartbeat
  (killed between execute and publish),
* ``published`` -- the worker completed and published every point (killed
  between publish and a clean exit).

The worker signals each boundary by touching a sentinel file, so the parent
kills at the boundary instead of after an arbitrary sleep.  Every execution
that *completes* appends one line to a shared log file, giving tests an
exactly-once counter that works across process boundaries.
"""

import os
import subprocess
import sys
import time

EXPERIMENT = "fault_point"
"""Name the crash-injection experiment registers under (child and parent)."""

BOUNDARIES = ("claimed", "executing", "published")

_WORKER_CODE = """
import os, sys, time

from repro.api import ParamSpec, SweepSpec, get_experiment, register_experiment
from repro.api.engine import cache_key
from repro.dist import run_worker
from repro.dist.sqlstore import resolve_store

store_spec, boundary, signal_dir, log_path, lease_ttl = sys.argv[1:6]
lease_ttl = float(lease_ttl)


def touch(name):
    with open(os.path.join(signal_dir, name), "w") as handle:
        handle.write(str(os.getpid()))


@register_experiment(
    "fault_point", params=(ParamSpec("x", "float", 1.0),), replace=True
)
def fault_point(x):
    if boundary == "executing":
        touch("executing")
        time.sleep(60)  # hold the point until the harness kills us
    with open(log_path, "a") as handle:
        handle.write(f"{x}\\n")  # one line per *completed* execution
    return [{"x": x, "y": 2.0 * x}]


store = resolve_store(store_spec)
if boundary == "claimed":
    experiment = get_experiment("fault_point")
    resolved = experiment.resolve_params({"x": 1.0})
    path = store.entry_path(
        experiment.name, cache_key(experiment.name, experiment.version, resolved)
    )
    outcome = store.claim(path, "doomed", ttl=lease_ttl)
    assert outcome == "acquired", outcome
    touch("claimed")
    time.sleep(60)  # hold the lease until the harness kills us
else:
    run_worker(
        "fault_point",
        SweepSpec.grid(x=[1.0]),
        store,
        worker_id="doomed",
        lease_ttl=lease_ttl,
        wait=False,
    )
    touch("published")
    time.sleep(60)  # stay alive so the kill, not exit, ends the process
"""


class CrashingWorker:
    """One doomed worker subprocess, killable at a protocol boundary."""

    def __init__(self, store_spec, boundary, workdir, lease_ttl=2.0):
        if boundary not in BOUNDARIES:
            raise ValueError(f"unknown boundary {boundary!r}; use {BOUNDARIES}")
        self.store_spec = store_spec
        self.boundary = boundary
        self.workdir = str(workdir)
        self.lease_ttl = lease_ttl
        self.signal_dir = os.path.join(self.workdir, "signals")
        self.log_path = os.path.join(self.workdir, "executions.log")
        os.makedirs(self.signal_dir, exist_ok=True)
        self._process = None

    def start(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = (
            os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        )
        self._process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                _WORKER_CODE,
                self.store_spec,
                self.boundary,
                self.signal_dir,
                self.log_path,
                str(self.lease_ttl),
            ],
            env=env,
        )
        return self

    def wait_boundary(self, timeout=30.0):
        """Block until the worker reports the boundary (or dies / times out)."""
        sentinel = os.path.join(self.signal_dir, self.boundary)
        deadline = time.monotonic() + timeout
        while not os.path.exists(sentinel):
            if self._process.poll() is not None:
                raise AssertionError(
                    f"worker exited (rc={self._process.returncode}) before "
                    f"reaching boundary {self.boundary!r}"
                )
            if time.monotonic() >= deadline:
                self._process.kill()
                self._process.wait()
                raise AssertionError(
                    f"worker never reached boundary {self.boundary!r} "
                    f"within {timeout} s"
                )
            time.sleep(0.02)
        return self

    def kill(self):
        """SIGKILL -- the worker gets no chance to clean anything up."""
        self._process.kill()
        self._process.wait()
        return self

    def completed_executions(self):
        """Executions that ran to completion (child or parent), from the log."""
        try:
            with open(self.log_path) as handle:
                return [line for line in handle if line.strip()]
        except FileNotFoundError:
            return []


def crash_worker_at(store_spec, boundary, workdir, lease_ttl=2.0, timeout=30.0):
    """Run one worker to ``boundary`` and SIGKILL it there; returns the
    :class:`CrashingWorker` for post-mortem assertions."""
    worker = CrashingWorker(store_spec, boundary, workdir, lease_ttl=lease_ttl)
    return worker.start().wait_boundary(timeout=timeout).kill()
