"""Tests for SWCNT chirality bookkeeping."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.atomistic import Chirality


class TestBasicGeometry:
    def test_77_diameter_close_to_one_nm(self):
        # The paper says SWCNT(7,7) has a diameter of about 1 nm.
        assert Chirality(7, 7).diameter == pytest.approx(0.95e-9, rel=0.02)

    def test_diameter_formula(self):
        tube = Chirality(10, 5)
        expected = 0.246e-9 * math.sqrt(100 + 50 + 25) / math.pi
        assert tube.diameter == pytest.approx(expected, rel=1e-6)

    def test_circumference_is_pi_diameter(self):
        tube = Chirality(13, 6)
        assert tube.circumference == pytest.approx(math.pi * tube.diameter)

    def test_chiral_angle_limits(self):
        assert Chirality(9, 0).chiral_angle == pytest.approx(0.0)
        assert Chirality(9, 9).chiral_angle == pytest.approx(math.pi / 6.0)


class TestFamilies:
    def test_armchair_detection(self):
        tube = Chirality(7, 7)
        assert tube.is_armchair and not tube.is_zigzag
        assert tube.family == "armchair"

    def test_zigzag_detection(self):
        tube = Chirality(9, 0)
        assert tube.is_zigzag and not tube.is_armchair
        assert tube.family == "zigzag"

    def test_chiral_detection(self):
        assert Chirality(10, 4).family == "chiral"

    def test_armchair_always_metallic(self):
        for n in range(2, 20):
            assert Chirality(n, n).is_metallic

    def test_zigzag_metallicity_rule(self):
        assert Chirality(9, 0).is_metallic
        assert not Chirality(10, 0).is_metallic
        assert not Chirality(11, 0).is_metallic
        assert Chirality(12, 0).is_metallic


class TestUnitCell:
    def test_armchair_unit_cell(self):
        tube = Chirality(7, 7)
        assert tube.d_r == 21
        assert tube.hexagons_per_cell == 14
        assert tube.atoms_per_cell == 28

    def test_zigzag_unit_cell(self):
        tube = Chirality(9, 0)
        assert tube.hexagons_per_cell == 18
        assert tube.atoms_per_cell == 36

    def test_armchair_translation_length(self):
        # |T| = a for armchair tubes.
        assert Chirality(5, 5).translation_length == pytest.approx(0.246e-9, rel=0.01)

    def test_zigzag_translation_length(self):
        # |T| = sqrt(3) a for zigzag tubes.
        assert Chirality(9, 0).translation_length == pytest.approx(
            math.sqrt(3.0) * 0.246e-9, rel=0.01
        )


class TestBandGapEstimate:
    def test_metallic_gap_zero(self):
        assert Chirality(7, 7).band_gap_estimate == 0.0

    def test_semiconducting_gap_scales_inverse_diameter(self):
        small = Chirality(10, 0)
        large = Chirality(20, 0)
        assert small.band_gap_estimate > large.band_gap_estimate
        ratio = small.band_gap_estimate / large.band_gap_estimate
        assert ratio == pytest.approx(large.diameter / small.diameter, rel=1e-6)


class TestValidationAndConstructors:
    def test_rejects_negative_m(self):
        with pytest.raises(ValueError):
            Chirality(5, -1)

    def test_rejects_zero_n(self):
        with pytest.raises(ValueError):
            Chirality(0, 0)

    def test_rejects_m_greater_than_n(self):
        with pytest.raises(ValueError):
            Chirality(5, 6)

    def test_from_diameter_armchair(self):
        tube = Chirality.from_diameter(1.0e-9, family="armchair")
        assert tube.is_armchair
        assert tube.diameter == pytest.approx(1.0e-9, rel=0.15)

    def test_from_diameter_zigzag_metallic(self):
        tube = Chirality.from_diameter(1.5e-9, family="zigzag", metallic=True)
        assert tube.is_zigzag and tube.is_metallic

    def test_from_diameter_zigzag_semiconducting(self):
        tube = Chirality.from_diameter(1.5e-9, family="zigzag", metallic=False)
        assert tube.is_zigzag and not tube.is_metallic

    def test_from_diameter_rejects_bad_family(self):
        with pytest.raises(ValueError):
            Chirality.from_diameter(1e-9, family="spiral")

    def test_from_diameter_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Chirality.from_diameter(0.0)

    def test_str_representation(self):
        assert str(Chirality(7, 7)) == "(7,7)"


class TestPropertyBased:
    @given(n=st.integers(min_value=1, max_value=40), m=st.integers(min_value=0, max_value=40))
    def test_derived_quantities_consistent(self, n, m):
        if m > n:
            n, m = m, n
        if n == 0:
            n = 1
        tube = Chirality(n, m)
        assert tube.diameter > 0
        assert tube.translation_length > 0
        assert tube.hexagons_per_cell > 0
        assert 0.0 <= tube.chiral_angle <= math.pi / 6.0 + 1e-12
        # Metallicity rule is consistent with the gap estimate.
        assert (tube.band_gap_estimate == 0.0) == tube.is_metallic

    @given(n=st.integers(min_value=3, max_value=40))
    def test_metallic_every_third_zigzag(self, n):
        assert Chirality(n, 0).is_metallic == (n % 3 == 0)
