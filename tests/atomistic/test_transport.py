"""Tests for transmission, DOS, ballistic conductance and doping (Fig. 8)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.atomistic import (
    Chirality,
    ballistic_conductance,
    channels_at_energy,
    compute_band_structure,
    conductance_vs_diameter,
    conducting_channels,
    density_of_states,
    transmission_function,
)
from repro.atomistic.conductance import conductance_per_unit_area
from repro.atomistic.doping import (
    DopedTube,
    channels_after_doping,
    doped_conductance,
    fermi_shift_for_target_conductance,
    iodine_doped_swcnt77,
)
from repro.atomistic.dos import carrier_density_shift
from repro.atomistic.transmission import thermally_averaged_transmission
from repro.constants import QUANTUM_CONDUCTANCE


class TestTransmission:
    def test_metallic_tube_two_channels_at_fermi_level(self):
        bands = compute_band_structure(Chirality(7, 7))
        assert channels_at_energy(bands, 0.0) == 2

    def test_semiconducting_tube_zero_channels_in_gap(self):
        bands = compute_band_structure(Chirality(10, 0))
        assert channels_at_energy(bands, 0.0) == 0

    def test_channels_increase_away_from_fermi_level(self):
        bands = compute_band_structure(Chirality(7, 7))
        low = channels_at_energy(bands, 0.0)
        high = channels_at_energy(bands, -2.0)
        assert high > low

    def test_transmission_function_shape_and_integer_values(self):
        bands = compute_band_structure(Chirality(9, 0))
        energies, transmission = transmission_function(bands, n_points=301)
        assert energies.shape == transmission.shape
        assert np.all(transmission >= 0)
        assert np.allclose(transmission, np.round(transmission))

    def test_transmission_zero_outside_bands(self):
        bands = compute_band_structure(Chirality(9, 0))
        e_min, e_max = bands.energy_window()
        assert channels_at_energy(bands, e_max + 1.0) == 0
        assert channels_at_energy(bands, e_min - 1.0) == 0

    def test_array_input_preserves_shape(self):
        bands = compute_band_structure(Chirality(7, 7))
        probe = np.array([[0.1, 0.2], [-0.1, -3.0]])
        result = channels_at_energy(bands, probe)
        assert result.shape == probe.shape

    def test_thermal_average_matches_cold_count_in_flat_region(self):
        bands = compute_band_structure(Chirality(7, 7))
        cold = channels_at_energy(bands, -0.5)
        warm = thermally_averaged_transmission(bands, fermi_level_ev=-0.5, temperature=100.0)
        assert warm == pytest.approx(cold, rel=0.02)

    def test_zero_temperature_falls_back_to_counting(self):
        bands = compute_band_structure(Chirality(7, 7))
        assert thermally_averaged_transmission(bands, 0.0, temperature=0.0) == pytest.approx(2.0)


class TestDensityOfStates:
    def test_dos_positive_and_normalised(self):
        bands = compute_band_structure(Chirality(9, 0), n_k=101)
        energies, dos = density_of_states(bands, n_points=1201, broadening_ev=0.03)
        assert np.all(dos >= 0)
        total_states = np.trapezoid(dos, energies)
        # 2 spin states per band per unit cell.
        assert total_states == pytest.approx(2 * bands.n_bands, rel=0.05)

    def test_semiconductor_dos_vanishes_in_gap(self):
        bands = compute_band_structure(Chirality(10, 0), n_k=201)
        energies, dos = density_of_states(bands, np.array([0.0]), broadening_ev=0.02)
        assert dos[0] < 0.05

    def test_rejects_nonpositive_broadening(self):
        bands = compute_band_structure(Chirality(7, 7), n_k=51)
        with pytest.raises(ValueError):
            density_of_states(bands, broadening_ev=0.0)

    def test_p_type_shift_removes_electrons(self):
        bands = compute_band_structure(Chirality(7, 7), n_k=101)
        delta = carrier_density_shift(bands, -0.6)
        assert delta < 0.0

    def test_n_type_shift_adds_electrons(self):
        bands = compute_band_structure(Chirality(7, 7), n_k=101)
        assert carrier_density_shift(bands, +0.6) > 0.0


class TestBallisticConductance:
    def test_pristine_77_matches_paper_value(self):
        # Paper: G_bal of pristine SWCNT(7,7) is 0.155 mS.
        g = ballistic_conductance(Chirality(7, 7))
        assert g == pytest.approx(0.155e-3, rel=0.02)

    def test_channel_count_close_to_two_for_metallic_tubes(self):
        # Paper Fig. 8a: Nc stays close to 2 regardless of diameter/chirality.
        for indices in [(5, 5), (9, 0), (10, 10), (15, 0), (18, 18)]:
            tube = Chirality(*indices)
            if not tube.is_metallic:
                continue
            assert conducting_channels(tube) == pytest.approx(2.0, abs=0.1)

    def test_semiconducting_tube_has_negligible_conductance(self):
        assert ballistic_conductance(Chirality(10, 0)) < 1e-6

    def test_sweep_covers_requested_range_and_is_sorted(self):
        points = conductance_vs_diameter(
            diameter_range_m=(0.6e-9, 2.0e-9), metallic_only=True, n_k=101
        )
        diameters = [p.diameter for p in points]
        assert diameters == sorted(diameters)
        assert min(diameters) >= 0.6e-9
        assert max(diameters) <= 2.0e-9
        assert all(p.chirality.is_metallic for p in points)

    def test_sweep_contains_both_families(self):
        points = conductance_vs_diameter(diameter_range_m=(0.6e-9, 1.5e-9), n_k=101)
        families = {p.family for p in points}
        assert families == {"armchair", "zigzag"}

    def test_conductance_per_unit_area_decreases_with_diameter(self):
        # Paper: conductance per unit area decreases as diameter increases.
        points = conductance_vs_diameter(
            families=("armchair",), diameter_range_m=(0.5e-9, 2.5e-9), n_k=101
        )
        per_area = [conductance_per_unit_area(p) for p in points]
        assert per_area[0] > per_area[-1]

    def test_invalid_diameter_range_rejected(self):
        with pytest.raises(ValueError):
            conductance_vs_diameter(diameter_range_m=(2e-9, 1e-9))

    def test_invalid_family_rejected(self):
        with pytest.raises(ValueError):
            conductance_vs_diameter(families=("spiral",))


class TestDoping:
    def test_doping_increases_conductance(self):
        tube = Chirality(7, 7)
        pristine = ballistic_conductance(tube)
        doped = doped_conductance(tube, -1.3)
        assert doped > pristine

    def test_paper_target_conductance_reachable(self):
        # Paper: doped SWCNT(7,7) reaches 0.387 mS (5 channels).
        shift = fermi_shift_for_target_conductance(Chirality(7, 7), 0.387e-3)
        assert shift < 0.0
        reached = doped_conductance(Chirality(7, 7), shift)
        assert reached >= 0.387e-3 * 0.97

    def test_zero_shift_returned_if_already_above_target(self):
        shift = fermi_shift_for_target_conductance(Chirality(7, 7), 0.1e-3)
        assert shift == 0.0

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            fermi_shift_for_target_conductance(Chirality(7, 7), 10.0, max_shift_ev=0.5)

    def test_doped_tube_enhancement_factor(self):
        doped = DopedTube(Chirality(7, 7), -1.3)
        assert doped.enhancement_factor() > 1.5

    def test_iodine_reference_system(self):
        reference = iodine_doped_swcnt77()
        assert reference.fermi_shift_ev == pytest.approx(-0.6)
        assert reference.chirality == Chirality(7, 7)
        # p-type doping never reduces the channel count of a metallic tube.
        assert reference.channels() >= 2.0 - 0.05

    def test_channels_after_doping_monotone_in_shift_magnitude(self):
        tube = Chirality(7, 7)
        counts = [channels_after_doping(tube, s) for s in (0.0, -0.5, -1.0, -1.5, -2.0)]
        assert all(b >= a - 1e-9 for a, b in zip(counts, counts[1:]))


class TestDopingPropertyBased:
    @settings(max_examples=10, deadline=None)
    @given(shift=st.floats(min_value=0.0, max_value=2.0))
    def test_electron_hole_symmetric_doping(self, shift):
        # Nearest-neighbour graphene TB is electron-hole symmetric, so p- and
        # n-type shifts of the same magnitude give the same conductance.
        tube = Chirality(9, 0)
        down = doped_conductance(tube, -shift, n_k=101)
        up = doped_conductance(tube, +shift, n_k=101)
        assert down == pytest.approx(up, rel=1e-6, abs=1e-12)
