"""Tests for the zone-folded CNT band structure."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.atomistic import Chirality, compute_band_structure
from repro.atomistic.graphene import (
    dirac_points,
    dispersion,
    lattice_vectors,
    reciprocal_vectors,
    structure_factor,
)


class TestGraphene:
    def test_lattice_reciprocal_duality(self):
        a1, a2 = lattice_vectors()
        b1, b2 = reciprocal_vectors()
        assert a1 @ b1 == pytest.approx(2 * np.pi)
        assert a2 @ b2 == pytest.approx(2 * np.pi)
        assert a1 @ b2 == pytest.approx(0.0, abs=1e-9)
        assert a2 @ b1 == pytest.approx(0.0, abs=1e-9)

    def test_gamma_point_energy(self):
        # |f(0)| = 3, so E = 3 gamma0 at the zone centre.
        energy = dispersion(np.array([[0.0, 0.0]]))
        assert energy[0] == pytest.approx(3 * 2.7)

    def test_dirac_point_energy_is_zero(self):
        k_point, k_prime = dirac_points()
        assert dispersion(k_point[None, :])[0] == pytest.approx(0.0, abs=1e-9)
        assert dispersion(k_prime[None, :])[0] == pytest.approx(0.0, abs=1e-9)

    def test_structure_factor_periodicity(self):
        b1, b2 = reciprocal_vectors()
        k = np.array([[1.0e9, -2.0e9]])
        assert structure_factor(k + b1) == pytest.approx(structure_factor(k))
        assert structure_factor(k + b2) == pytest.approx(structure_factor(k))


class TestBandStructure:
    def test_band_count(self):
        tube = Chirality(7, 7)
        bands = compute_band_structure(tube, n_k=51)
        assert bands.n_bands == 2 * tube.hexagons_per_cell

    def test_metallic_tube_has_zero_gap(self):
        for indices in [(7, 7), (9, 0), (5, 5), (12, 0)]:
            bands = compute_band_structure(Chirality(*indices), n_k=101)
            assert bands.band_gap() == pytest.approx(0.0, abs=1e-9)

    def test_semiconducting_gap_close_to_estimate(self):
        tube = Chirality(10, 0)
        bands = compute_band_structure(tube, n_k=301)
        assert bands.band_gap() == pytest.approx(tube.band_gap_estimate, rel=0.15)

    def test_bands_symmetric_about_zero(self):
        bands = compute_band_structure(Chirality(8, 0), n_k=101)
        energies = np.sort(bands.energies.ravel())
        assert np.allclose(energies, -np.sort(-energies)[::-1] * -1.0 * -1.0)
        # electron-hole symmetry of the nearest-neighbour model
        assert bands.energies.max() == pytest.approx(-bands.energies.min(), rel=1e-9)

    def test_energy_bounded_by_three_gamma(self):
        bands = compute_band_structure(Chirality(11, 0), n_k=101)
        assert bands.energies.max() <= 3 * 2.7 + 1e-9
        assert bands.energies.min() >= -3 * 2.7 - 1e-9

    def test_shifted_moves_fermi_level_only(self):
        bands = compute_band_structure(Chirality(7, 7), n_k=51)
        shifted = bands.shifted(-0.6)
        assert shifted.fermi_level == pytest.approx(-0.6)
        assert np.array_equal(shifted.energies, bands.energies)

    def test_too_few_kpoints_rejected(self):
        with pytest.raises(ValueError):
            compute_band_structure(Chirality(7, 7), n_k=2)

    def test_subband_extrema_sorted(self):
        bands = compute_band_structure(Chirality(10, 0), n_k=51)
        extrema = bands.subband_extrema()
        assert np.all(np.diff(extrema) >= -1e-12)

    def test_armchair_fermi_points_inserted(self):
        # The Fermi crossing of an armchair tube must be resolved exactly even
        # with a coarse grid.
        bands = compute_band_structure(Chirality(5, 5), n_k=11)
        assert np.isclose(np.abs(bands.energies).min(), 0.0, atol=1e-9)


class TestBandStructurePropertyBased:
    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=4, max_value=14), m_frac=st.integers(min_value=0, max_value=2))
    def test_gap_zero_iff_metallic(self, n, m_frac):
        m = 0 if m_frac == 0 else (n if m_frac == 1 else max(0, n - 3))
        tube = Chirality(n, m)
        bands = compute_band_structure(tube, n_k=151)
        if tube.is_metallic:
            assert bands.band_gap() < 0.02
        else:
            assert bands.band_gap() > 0.1
