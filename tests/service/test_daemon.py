"""Daemon serve loop: exactly-once jobs, bit-identical results, recovery.

The two-daemon tests are the PR-6 acceptance criteria: N daemons on one
queue must execute every job exactly once, a daemon crashed mid-job must
have its job recovered through the stale-lease path without recomputing the
points it already published, and every fetched result must content-hash
match the serial run.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import Engine, SweepSpec, register_experiment, unregister_experiment
from repro.api.experiment import ParamSpec
from repro.dist import SharedStore
from repro.service import (
    JOB_DONE,
    JOB_FAILED,
    JobSpec,
    SpecQueue,
    serve_queue,
)

SPEC = SweepSpec.grid(length_um=[1.0, 5.0, 10.0, 50.0])


def _sweep_job(spec: SweepSpec = SPEC) -> JobSpec:
    return JobSpec(kind="sweep", name="table_density", sweep=spec)


class TestServeQueue:
    def test_drain_executes_everything_bit_identically(self, tmp_path):
        queue = SpecQueue(str(tmp_path / "queue"))
        store = SharedStore(str(tmp_path / "store"))
        specs = [
            SweepSpec.grid(length_um=[1.0, 10.0]),
            SweepSpec.grid(length_um=[2.0, 20.0]),
        ]
        job_ids = [queue.submit(_sweep_job(spec)) for spec in specs]

        report = serve_queue(queue, store, drain=True)
        assert report.ok
        assert sorted(report.executed) == sorted(job_ids)

        for job_id, spec in zip(job_ids, specs):
            status = queue.status(job_id)
            assert status["state"] == JOB_DONE
            serial = Engine().sweep("table_density", spec)
            assert status["content_hash"] == serial.content_hash
            fetched = queue.load_result(job_id)
            assert fetched == serial
            assert fetched.content_hash == serial.content_hash

    def test_progress_is_recorded_while_running(self, tmp_path):
        queue = SpecQueue(str(tmp_path / "queue"))
        store = SharedStore(str(tmp_path / "store"))
        job_id = queue.submit(_sweep_job())
        serve_queue(queue, store, drain=True)
        # After completion the progress doc is merged away, but the done
        # summary keeps the record count.
        assert queue.status(job_id)["n_records"] == len(
            Engine().sweep("table_density", SPEC)
        )

    def test_study_job_matches_serial_study_run(self, tmp_path):
        queue = SpecQueue(str(tmp_path / "queue"))
        store = SharedStore(str(tmp_path / "store"))
        overrides = {"growth_window": {"duration_s": 500.0}}
        job_id = queue.submit(
            JobSpec(kind="study", name="growth_to_wafer", stage_params=overrides)
        )
        report = serve_queue(queue, store, drain=True)
        assert report.ok and report.executed == [job_id]

        serial = Engine().run_study("growth_to_wafer", stage_params=overrides)
        fetched = queue.load_result(job_id)
        assert fetched.content_hash == serial.content_hash

    def test_max_jobs_bounds_one_pass(self, tmp_path):
        queue = SpecQueue(str(tmp_path / "queue"))
        store = SharedStore(str(tmp_path / "store"))
        for _ in range(2):
            queue.submit(_sweep_job())
        report = serve_queue(queue, store, max_jobs=1)
        assert len(report.executed) == 1
        assert queue.depth()["queued"] == 1

    def test_stop_event_exits_the_idle_loop(self, tmp_path):
        queue = SpecQueue(str(tmp_path / "queue"))
        store = SharedStore(str(tmp_path / "store"))
        stop = threading.Event()
        with ThreadPoolExecutor(max_workers=1) as pool:
            future = pool.submit(
                serve_queue, queue, store, poll_interval=0.02, stop=stop
            )
            time.sleep(0.15)
            assert not future.done()  # idling, not drained
            stop.set()
            report = future.result(timeout=5.0)
        assert report.ok and not report.executed


class TestTwoDaemons:
    def test_exactly_once_across_two_daemons(self, tmp_path):
        """Concurrent daemons split the queue; no job runs twice."""
        queue = SpecQueue(str(tmp_path / "queue"))
        store = SharedStore(str(tmp_path / "store"))
        specs = [
            SweepSpec.grid(length_um=[float(i + 1), float(10 * (i + 1))])
            for i in range(4)
        ]
        job_ids = [queue.submit(_sweep_job(spec)) for spec in specs]

        with ThreadPoolExecutor(max_workers=2) as pool:
            reports = [
                future.result()
                for future in [
                    pool.submit(
                        serve_queue, queue, store,
                        worker_id=f"d{i}", drain=True, poll_interval=0.01,
                    )
                    for i in range(2)
                ]
            ]

        executed = [set(report.executed) for report in reports]
        assert executed[0].isdisjoint(executed[1])
        assert sorted(executed[0] | executed[1]) == sorted(job_ids)
        assert all(report.ok for report in reports)
        for job_id, spec in zip(job_ids, specs):
            serial = Engine().sweep("table_density", spec)
            assert queue.load_result(job_id).content_hash == serial.content_hash

    def test_crashed_daemon_job_is_recovered(self, tmp_path):
        """A stale job lease is taken over; published points are reused."""
        queue = SpecQueue(str(tmp_path / "queue"))
        store = SharedStore(str(tmp_path / "store"))
        job_id = queue.submit(_sweep_job())

        # Simulate the crash: a daemon claimed the job with a short ttl,
        # published the first point into the shared store, then died
        # without completing or releasing.
        claimed = queue.claim_next("dead-daemon", ttl=0.2)
        assert claimed is not None and claimed[0] == job_id
        from repro.dist import run_worker

        one_point = SweepSpec.grid(length_um=[SPEC.axes["length_um"][0]])
        partial = run_worker(
            "table_density", one_point, store, worker_id="dead-daemon"
        )
        assert partial.executed == [0]
        time.sleep(0.3)  # the job lease expires

        def published_points() -> int:
            import os

            return len(
                [
                    name
                    for name in os.listdir(store.directory)
                    if name.startswith("table_density-") and name.endswith(".json")
                ]
            )

        points_before = published_points()
        assert points_before == 1  # the dead daemon's single point
        report = serve_queue(queue, store, worker_id="survivor", drain=True)
        assert report.ok and report.executed == [job_id]
        assert queue.status(job_id)["state"] == JOB_DONE
        # The dead daemon's published point was reused, not recomputed:
        # only the remaining points were added to the store.
        assert published_points() == points_before + len(SPEC) - 1

        serial = Engine().sweep("table_density", SPEC)
        assert queue.load_result(job_id).content_hash == serial.content_hash

    def test_tombstone_gc_after_recovery(self, tmp_path):
        """gc() keeps live failure tombstones, drops superseded ones."""
        queue = SpecQueue(str(tmp_path / "queue"))
        store = SharedStore(str(tmp_path / "store"))
        job_id = queue.submit(
            JobSpec(
                kind="sweep", name="does_not_exist",
                sweep=SweepSpec.grid(x=[1]),
            )
        )
        report = serve_queue(queue, store, drain=True)
        assert report.failed == [job_id]
        status = queue.status(job_id)
        assert status["state"] == JOB_FAILED
        assert "does_not_exist" in status["error"]

        # While failed, the tombstone survives gc (it encodes the state).
        queue.gc()
        assert queue.status(job_id)["state"] == JOB_FAILED

        # requeue + a fixed registry -> the job completes and the next gc
        # drops the now-superseded tombstone.
        @register_experiment(
            "does_not_exist",
            params=(ParamSpec("x", "float", 1.0, "input"),),
            replace=True,
        )
        def repaired(x: float):
            return [{"x": x, "y": 2.0 * x}]

        try:
            assert queue.requeue(job_id)
            report = serve_queue(queue, store, drain=True)
            assert report.ok and report.executed == [job_id]
        finally:
            unregister_experiment("does_not_exist")
        assert queue.status(job_id)["state"] == JOB_DONE
        queue.gc()
        assert queue.status(job_id)["state"] == JOB_DONE


class TestFailureSemantics:
    def test_malformed_payload_fails_the_job_visibly(self, tmp_path):
        queue = SpecQueue(str(tmp_path / "queue"))
        store = SharedStore(str(tmp_path / "store"))
        job_id = queue.submit(_sweep_job())
        # Corrupt the spec payload on disk (unknown field), as a buggy or
        # hostile submitter would.
        import json
        import os

        path = os.path.join(queue.directory, job_id + ".job.json")
        document = json.load(open(path))
        document["spec"]["surprise"] = True
        json.dump(document, open(path, "w"))

        report = serve_queue(queue, store, drain=True)
        assert report.failed == [job_id]
        status = queue.status(job_id)
        assert status["state"] == JOB_FAILED
        assert "surprise" in status["error"]
        # The failed job does not wedge the queue: siblings drain past it.
        other = queue.submit(_sweep_job())
        report2 = serve_queue(queue, store, drain=True)
        assert report2.executed == [other]
