"""JobSpec: strict payload parsing and registry validation at submit time."""

import pytest

from repro.api import SweepSpec
from repro.api.experiment import ExperimentError
from repro.service import JobSpec

SPEC = SweepSpec.grid(length_um=[1.0, 10.0])


class TestConstruction:
    def test_sweep_job_round_trips_through_payload(self):
        job = JobSpec(
            kind="sweep", name="table_density", sweep=SPEC,
            params={"n_tubes": 40},
        )
        rebuilt = JobSpec.from_payload(job.to_payload())
        assert rebuilt == job
        assert rebuilt.sweep == SPEC
        assert rebuilt.params == {"n_tubes": 40}

    def test_study_job_round_trips_through_payload(self):
        job = JobSpec(
            kind="study", name="growth_to_wafer",
            stage_params={"growth_window": {"duration_s": 500.0}},
        )
        rebuilt = JobSpec.from_payload(job.to_payload())
        assert rebuilt == job
        assert rebuilt.sweep is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="'kind'"):
            JobSpec(kind="batch", name="table_density", sweep=SPEC)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="'name'"):
            JobSpec(kind="sweep", name="", sweep=SPEC)

    def test_sweep_job_requires_sweep(self):
        with pytest.raises(ValueError, match="needs a 'sweep'"):
            JobSpec(kind="sweep", name="table_density")

    def test_study_job_rejects_flat_params(self):
        with pytest.raises(ValueError, match="stage_params"):
            JobSpec(kind="study", name="growth_to_wafer", params={"x": 1})

    def test_non_mapping_params_rejected(self):
        with pytest.raises(ValueError, match="'params' must be a mapping"):
            JobSpec(kind="sweep", name="table_density", sweep=SPEC, params=[1])

    def test_non_mapping_stage_params_rejected(self):
        with pytest.raises(ValueError, match="'stage_params' must be a mapping"):
            JobSpec(kind="sweep", name="table_density", sweep=SPEC, stage_params=7)
        with pytest.raises(ValueError, match=r"stage_params\['a'\]"):
            JobSpec(
                kind="sweep", name="table_density", sweep=SPEC,
                stage_params={"a": [1]},
            )


class TestFromPayload:
    def test_non_object_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            JobSpec.from_payload([1, 2])

    def test_unknown_fields_rejected(self):
        payload = JobSpec(kind="sweep", name="table_density", sweep=SPEC).to_payload()
        payload["priority"] = 9
        with pytest.raises(ValueError, match=r"unknown fields \['priority'\]"):
            JobSpec.from_payload(payload)

    def test_missing_required_fields_rejected(self):
        with pytest.raises(ValueError, match=r"missing required fields \['kind', 'name'\]"):
            JobSpec.from_payload({})

    def test_malformed_sweep_descriptor_rejected(self):
        with pytest.raises(ValueError, match="missing the 'axes'"):
            JobSpec.from_payload(
                {"kind": "sweep", "name": "table_density", "sweep": {"mode": "grid"}}
            )


class TestValidate:
    def test_valid_sweep_job(self):
        job = JobSpec(kind="sweep", name="table_density", sweep=SPEC)
        assert job.validate() is job

    def test_valid_study_job(self):
        job = JobSpec(
            kind="study", name="growth_to_wafer",
            stage_params={"growth_window": {"duration_s": 500.0}},
        )
        assert job.validate() is job

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            JobSpec(kind="sweep", name="no_such_experiment", sweep=SPEC).validate()

    def test_unknown_study_rejected(self):
        with pytest.raises(ExperimentError):
            JobSpec(kind="study", name="no_such_study").validate()

    def test_unknown_sweep_axis_rejected(self):
        job = JobSpec(
            kind="sweep", name="table_density",
            sweep=SweepSpec.grid(bogus_axis=[1, 2]),
        )
        with pytest.raises(ExperimentError):
            job.validate()

    def test_unknown_base_param_rejected(self):
        job = JobSpec(
            kind="sweep", name="table_density", sweep=SPEC,
            params={"bogus_param": 1},
        )
        with pytest.raises(ExperimentError):
            job.validate()

    def test_describe_is_one_line(self):
        text = JobSpec(kind="sweep", name="table_density", sweep=SPEC).describe()
        assert "table_density" in text and "\n" not in text
