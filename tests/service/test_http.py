"""HTTP API + client: endpoint contract, error codes, end-to-end parity."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Engine, SweepSpec
from repro.dist import SharedStore
from repro.service import (
    JobSpec,
    ServiceClient,
    ServiceError,
    SpecQueue,
    make_server,
    serve_queue,
)

SPEC = SweepSpec.grid(length_um=[1.0, 10.0])


@pytest.fixture()
def service(tmp_path):
    """A live server + client + queue/store over a temp directory."""
    server = make_server(str(tmp_path / "queue"), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield {
            "server": server,
            "client": ServiceClient(server.url),
            "queue": server.queue,
            "store": SharedStore(str(tmp_path / "store")),
        }
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def _get_status_code(url: str) -> int:
    try:
        with urllib.request.urlopen(url) as response:
            return response.status
    except urllib.error.HTTPError as error:
        return error.code


class TestHealth:
    def test_health_reports_version_registry_and_depth(self, service):
        from repro import __version__
        from repro.api.experiment import list_experiments
        from repro.api.study import list_studies

        health = service["client"].health()
        assert health["status"] == "ok"
        assert health["version"] == __version__
        assert health["registry"]["experiments"] == len(list_experiments())
        assert health["registry"]["studies"] == len(list_studies())
        assert health["queue"]["queued"] == 0
        service["queue"].submit(JobSpec(kind="sweep", name="table_density", sweep=SPEC))
        assert service["client"].health()["queue"]["queued"] == 1


class TestSubmit:
    def test_submit_sweep_queues_a_job(self, service):
        job_id = service["client"].submit_sweep("table_density", SPEC)
        status = service["client"].status(job_id)
        assert status["state"] == "queued"
        assert status["kind"] == "sweep"
        assert status["name"] == "table_density"

    def test_submit_study_queues_a_job(self, service):
        job_id = service["client"].submit_study(
            "growth_to_wafer",
            params={"growth_window": {"duration_s": 500.0}},
        )
        assert service["client"].status(job_id)["kind"] == "study"

    def test_unknown_experiment_is_rejected_at_submit(self, service):
        with pytest.raises(ServiceError, match="no_such") as excinfo:
            service["client"].submit_sweep("no_such", SPEC)
        assert excinfo.value.status == 400
        assert service["client"].list_jobs() == []  # nothing queued

    def test_unknown_axis_is_rejected_at_submit(self, service):
        with pytest.raises(ServiceError, match="bogus_axis") as excinfo:
            service["client"].submit_sweep(
                "table_density", SweepSpec.grid(bogus_axis=[1])
            )
        assert excinfo.value.status == 400

    def test_malformed_sweep_descriptor_names_the_field(self, service):
        with pytest.raises(ServiceError, match="axes") as excinfo:
            service["client"].submit_sweep("table_density", {"mode": "grid"})
        assert excinfo.value.status == 400

    def test_missing_required_field_is_400(self, service):
        request = urllib.request.Request(
            service["server"].url + "/submit_sweep",
            data=json.dumps({"sweep": SPEC.to_meta()}).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert "experiment" in json.loads(excinfo.value.read())["error"]

    def test_non_json_body_is_400(self, service):
        request = urllib.request.Request(
            service["server"].url + "/submit_sweep",
            data=b"not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400


class TestErrorRoutes:
    def test_unknown_job_is_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service["client"].status("j-nope")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, service):
        assert _get_status_code(service["server"].url + "/nope") == 404

    def test_post_to_read_only_route_is_405(self, service):
        request = urllib.request.Request(
            service["server"].url + "/health", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 405

    def test_fetch_before_done_is_409(self, service):
        job_id = service["client"].submit_sweep("table_density", SPEC)
        with pytest.raises(ServiceError, match="queued") as excinfo:
            service["client"].fetch_results(job_id)
        assert excinfo.value.status == 409

    def test_unreachable_server_raises_with_no_status(self, tmp_path):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError, match="cannot reach") as excinfo:
            client.health()
        assert excinfo.value.status is None


class TestEndToEnd:
    def test_fetched_sweep_is_bit_identical_to_serial(self, service):
        client = service["client"]
        job_id = client.submit_sweep("table_density", SPEC)
        report = serve_queue(service["queue"], service["store"], drain=True)
        assert report.ok

        status = client.wait(job_id, timeout=30.0)
        assert status["state"] == "done"
        fetched = client.fetch_results(job_id)
        serial = Engine().sweep("table_density", SPEC)
        assert fetched == serial
        assert fetched.content_hash == serial.content_hash
        assert status["content_hash"] == serial.content_hash

    def test_failed_job_surfaces_through_wait(self, service):
        client = service["client"]
        # Valid at submit time, fails in execution: corrupt the queued spec.
        job_id = client.submit_sweep("table_density", SPEC)
        import os

        path = os.path.join(service["queue"].directory, job_id + ".job.json")
        document = json.load(open(path))
        document["spec"]["kind"] = "batch"
        json.dump(document, open(path, "w"))

        serve_queue(service["queue"], service["store"], drain=True)
        with pytest.raises(ServiceError, match="failed"):
            client.wait(job_id, timeout=10.0)

    def test_list_jobs_tracks_states(self, service):
        client = service["client"]
        done_id = client.submit_sweep("table_density", SPEC)
        serve_queue(service["queue"], service["store"], drain=True)
        queued_id = client.submit_sweep(
            "table_density", SweepSpec.grid(length_um=[2.0])
        )
        states = {job["job_id"]: job["state"] for job in client.list_jobs()}
        assert states == {done_id: "done", queued_id: "queued"}


class TestObservability:
    def test_metrics_serves_prometheus_text(self, service):
        service["client"].health()  # at least one observed GET
        with urllib.request.urlopen(service["server"].url + "/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            body = response.read().decode()
        assert "# TYPE repro_http_requests_total counter" in body
        assert 'endpoint="/health"' in body
        assert "repro_http_request_seconds_bucket" in body
        assert 'repro_queue_depth{state="queued"} 0' in body

    def test_metrics_refreshes_queue_depth_gauges(self, service):
        service["queue"].submit(JobSpec(kind="sweep", name="table_density", sweep=SPEC))
        body = urllib.request.urlopen(service["server"].url + "/metrics").read().decode()
        assert 'repro_queue_depth{state="queued"} 1' in body

    def test_status_ids_are_normalised_out_of_endpoint_labels(self, service):
        _get_status_code(service["server"].url + "/status/j-zzz")  # 404, still counted
        body = urllib.request.urlopen(service["server"].url + "/metrics").read().decode()
        assert 'endpoint="/status"' in body
        assert "j-zzz" not in body

    def test_health_reports_uptime_and_settled_jobs(self, service):
        job_id = service["client"].submit_sweep("table_density", SPEC)
        serve_queue(service["queue"], service["store"], drain=True)
        health = service["client"].health()
        assert health["uptime_s"] >= 0.0
        assert health["jobs_since_start"] == {"done": 1, "failed": 0}
        assert "counters" in health["metrics"]
        assert service["client"].status(job_id)["state"] == "done"

    def test_trace_header_lands_in_the_job_document(self, service, tmp_path):
        from repro.obs.trace import current_carrier, trace_span, tracing

        with tracing(str(tmp_path / "trace.jsonl")):
            with trace_span("test.submit"):
                carrier = current_carrier()
                job_id = service["client"].submit_sweep("table_density", SPEC)
        stored = service["queue"].read_trace(job_id)
        assert stored is not None
        assert stored["trace_id"] == carrier["trace_id"]
        assert stored["sink"] == carrier["sink"]

    def test_untraced_submit_stores_no_carrier(self, service):
        job_id = service["client"].submit_sweep("table_density", SPEC)
        assert service["queue"].read_trace(job_id) is None
