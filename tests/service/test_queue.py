"""SpecQueue: durable submission, lease-based claiming, status derivation."""

import json
import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import Engine, SweepSpec
from repro.service import JOB_DONE, JOB_FAILED, JOB_QUEUED, JOB_RUNNING, JobSpec
from repro.service.queue import (
    DONE_SUFFIX,
    JOB_SUFFIX,
    SpecQueue,
    UnknownJobError,
)

SPEC = SweepSpec.grid(length_um=[1.0, 10.0])


def _job() -> JobSpec:
    return JobSpec(kind="sweep", name="table_density", sweep=SPEC)


class TestSubmitAndRead:
    def test_submit_writes_a_durable_document(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        job_id = queue.submit(_job())
        path = os.path.join(str(tmp_path), job_id + JOB_SUFFIX)
        assert os.path.exists(path)
        document = json.load(open(path))
        assert document["job_id"] == job_id
        assert document["spec"]["name"] == "table_density"

    def test_get_round_trips_the_spec(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        job_id = queue.submit(_job())
        assert queue.get(job_id) == _job()

    def test_unknown_job_raises(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        with pytest.raises(UnknownJobError, match="no job"):
            queue.get("j-missing")
        with pytest.raises(UnknownJobError):
            queue.status("j-missing")

    def test_job_ids_are_oldest_first(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        submitted = [queue.submit(_job()) for _ in range(3)]
        # Rewrite submitted_at stamps to force a known order.
        for offset, job_id in enumerate(reversed(submitted)):
            path = os.path.join(str(tmp_path), job_id + JOB_SUFFIX)
            document = json.load(open(path))
            document["submitted_at"] = 1000.0 + offset
            json.dump(document, open(path, "w"))
        assert queue.job_ids() == list(reversed(submitted))


class TestClaiming:
    def test_claim_next_is_exactly_once(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        job_id = queue.submit(_job())
        first = queue.claim_next("w1")
        assert first is not None and first[0] == job_id
        assert queue.claim_next("w2") is None  # leased to w1

    def test_concurrent_claims_do_not_collide(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        for _ in range(4):
            queue.submit(_job())

        def drain(worker: str) -> list[str]:
            claimed = []
            while True:
                got = queue.claim_next(worker)
                if got is None:
                    return claimed
                claimed.append(got[0])
                # Settle the claim, as a real daemon does -- an unsettled
                # job stays claimable by its own worker (lease re-entry).
                queue.complete(got[0], {"worker_id": worker})

        with ThreadPoolExecutor(max_workers=2) as pool:
            mine, yours = [
                f.result() for f in [pool.submit(drain, w) for w in ("w1", "w2")]
            ]
        assert set(mine).isdisjoint(yours)
        assert sorted(mine + yours) == sorted(queue.job_ids())

    def test_release_makes_the_job_claimable_again(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        job_id = queue.submit(_job())
        queue.claim_next("w1")
        queue.release(job_id, "w1")
        got = queue.claim_next("w2")
        assert got is not None and got[0] == job_id

    def test_stale_lease_is_taken_over(self, tmp_path):
        """A crashed daemon's job is reclaimed once its lease ttl lapses."""
        queue = SpecQueue(str(tmp_path))
        job_id = queue.submit(_job())
        assert queue.claim_next("dead-daemon", ttl=0.05) is not None
        import time

        time.sleep(0.1)
        got = queue.claim_next("survivor")
        assert got is not None and got[0] == job_id

    def test_done_and_failed_jobs_are_skipped(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        done_id = queue.submit(_job())
        failed_id = queue.submit(_job())
        queue.claim_next("w1")
        queue.complete(done_id, {"worker_id": "w1"})
        claimed = queue.claim_next("w1")
        assert claimed is not None and claimed[0] == failed_id
        queue.fail(failed_id, "w1", "boom")
        assert queue.claim_next("w2") is None


class TestLifecycleStatus:
    def test_states_through_the_lifecycle(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        job_id = queue.submit(_job())
        assert queue.status(job_id)["state"] == JOB_QUEUED

        queue.claim(job_id, "w1", ttl=60.0)
        queue.record_progress(job_id, points_done=1, points_total=2)
        running = queue.status(job_id)
        assert running["state"] == JOB_RUNNING
        assert running["worker_id"] == "w1"
        progress = running["progress"]
        assert progress["points_done"] == 1 and progress["points_total"] == 2

        queue.complete(job_id, {"worker_id": "w1", "n_records": 8})
        done = queue.status(job_id)
        assert done["state"] == JOB_DONE
        assert done["n_records"] == 8
        assert "completed_at" in done

    def test_failed_state_carries_the_error(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        job_id = queue.submit(_job())
        queue.claim(job_id, "w1", ttl=60.0)
        queue.fail(job_id, "w1", "ValueError: bad axis")
        status = queue.status(job_id)
        assert status["state"] == JOB_FAILED
        assert status["error"] == "ValueError: bad axis"
        assert status["worker_id"] == "w1"

    def test_requeue_clears_the_tombstone(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        job_id = queue.submit(_job())
        queue.claim(job_id, "w1", ttl=60.0)
        queue.fail(job_id, "w1", "boom")
        assert queue.requeue(job_id) is True
        assert queue.status(job_id)["state"] == JOB_QUEUED
        assert queue.claim_next("w2") is not None
        assert queue.requeue(job_id) is False  # nothing left to clear

    def test_depth_counts_by_state(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        queue.submit(_job())
        running_id = queue.submit(_job())
        failed_id = queue.submit(_job())
        queue.claim(running_id, "w1", ttl=60.0)
        queue.claim(failed_id, "w1", ttl=60.0)
        queue.fail(failed_id, "w1", "boom")
        assert queue.depth() == {
            "queued": 1, "running": 1, "done": 0, "failed": 1,
        }

    def test_load_result_requires_done(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        job_id = queue.submit(_job())
        with pytest.raises(ValueError, match="queued"):
            queue.load_result(job_id)

    def test_result_round_trips(self, tmp_path):
        queue = SpecQueue(str(tmp_path / "q"))
        result = Engine().sweep("table_density", SPEC)
        job_id = queue.submit(_job())
        queue.store_result(job_id, result)
        queue.complete(job_id, {"content_hash": result.content_hash})
        loaded = queue.load_result(job_id)
        assert loaded == result
        assert loaded.content_hash == result.content_hash


class TestGc:
    def test_gc_collects_expired_leases_and_stale_progress(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        crashed = queue.submit(_job())
        settled = queue.submit(_job())
        queue.claim(crashed, "dead", ttl=0.01)
        queue.claim(settled, "w1", ttl=60.0)
        queue.record_progress(settled, points_done=2, points_total=2)
        queue.complete(settled, {"worker_id": "w1"})
        import time

        time.sleep(0.05)
        removed = queue.gc()
        assert any(crashed in path for path in removed)  # expired lease
        assert any(settled in path for path in removed)  # stale progress doc
        # The crashed job is claimable again and unharmed.
        got = queue.claim_next("w2")
        assert got is not None and got[0] == crashed

    def test_gc_keeps_failure_tombstones(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        job_id = queue.submit(_job())
        queue.claim(job_id, "w1", ttl=60.0)
        queue.fail(job_id, "w1", "boom")
        queue.gc()
        assert queue.status(job_id)["state"] == JOB_FAILED

    def test_gc_dry_run_removes_nothing(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        job_id = queue.submit(_job())
        queue.claim(job_id, "dead", ttl=0.01)
        import time

        time.sleep(0.05)
        listed = queue.gc(dry_run=True)
        assert listed
        assert all(os.path.exists(path) for path in listed)

    def test_gc_collects_superseded_tombstone(self, tmp_path):
        """Seam regression: a tombstone orphaned next to a completion record
        (a failure report that raced a successful retry) is residue, and the
        job's done state must win over the stale failure."""
        queue = SpecQueue(str(tmp_path))
        job_id = queue.submit(_job())
        queue.claim(job_id, "w1", ttl=60.0)
        queue.complete(job_id, {"worker_id": "w1"})
        orphan = queue.done_path(job_id) + ".failed"
        with open(orphan, "w") as handle:
            json.dump({"worker": "w0", "error": "stale", "failed_at": 0.0}, handle)

        removed = queue.gc()
        assert orphan in removed
        assert not os.path.exists(orphan)
        assert queue.status(job_id)["state"] == JOB_DONE

    def test_gc_collects_corrupt_job_lease(self, tmp_path):
        """Seam regression: an unreadable lease never blocks a job forever --
        GC disposes of it and the job is claimable again."""
        queue = SpecQueue(str(tmp_path))
        job_id = queue.submit(_job())
        corrupt = queue.done_path(job_id) + ".lease"
        with open(corrupt, "w") as handle:
            handle.write("{ torn")

        removed = queue.gc()
        assert corrupt in removed
        got = queue.claim_next("w1")
        assert got is not None and got[0] == job_id


class TestDunders:
    def test_iter_and_len(self, tmp_path):
        queue = SpecQueue(str(tmp_path))
        ids = {queue.submit(_job()) for _ in range(3)}
        assert set(queue) == ids
        assert len(queue) == 3
