"""CLI service verbs: worker --watch, serve, submit, status, fetch, --version."""

import threading

import pytest

from repro import __version__
from repro.api import Engine, ResultSet, SweepSpec
from repro.api.cli import main
from repro.service import JobSpec, SpecQueue, make_server

SPEC = SweepSpec.grid(length_um=[1.0, 10.0])


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture()
def service(tmp_path):
    server = make_server(str(tmp_path / "queue"), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestWorkerArgValidation:
    def test_worker_without_name_or_watch_is_an_error(self, capsys):
        code, _, err = run_cli(capsys, "worker")
        assert code == 2
        assert "--watch" in err

    def test_worker_without_store_is_an_error(self, capsys):
        code, _, err = run_cli(
            capsys, "worker", "table_density", "--grid", "length_um=1,10"
        )
        assert code == 2
        assert "--store" in err

    def test_watch_rejects_sweep_arguments(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "worker", "table_density", "--grid", "length_um=1",
            "--watch", str(tmp_path),
        )
        assert code == 2
        assert "do not apply" in err

    def test_drain_requires_watch(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "worker", "table_density", "--grid", "length_um=1",
            "--store", str(tmp_path), "--drain",
        )
        assert code == 2
        assert "--watch" in err


class TestWatchDrain:
    def test_watch_drain_executes_submitted_jobs(self, capsys, tmp_path):
        queue = SpecQueue(str(tmp_path / "queue"))
        job_id = queue.submit(
            JobSpec(kind="sweep", name="table_density", sweep=SPEC)
        )
        code, out, err = run_cli(
            capsys, "worker", "--watch", str(tmp_path / "queue"), "--drain"
        )
        assert code == 0
        assert "1 jobs executed" in out
        assert job_id in err  # per-job progress on stderr
        serial = Engine().sweep("table_density", SPEC)
        assert queue.load_result(job_id).content_hash == serial.content_hash


class TestServiceVerbs:
    def test_submit_status_fetch_round_trip(self, capsys, tmp_path, service):
        code, out, _ = run_cli(
            capsys, "submit", "table_density",
            "--grid", "length_um=1,10", "--url", service.url,
        )
        assert code == 0
        job_id = out.strip()
        assert job_id.startswith("j-")

        code, out, _ = run_cli(capsys, "status", job_id, "--url", service.url)
        assert code == 0
        assert "state: queued" in out

        # status without a job id: health line + job table.
        code, out, _ = run_cli(capsys, "status", "--url", service.url)
        assert code == 0
        assert f"version {__version__}" in out
        assert "1 queued" in out
        assert job_id in out

        # fetch before done: the 409 surfaces as a clean CLI error.
        code, _, err = run_cli(capsys, "fetch", job_id, "--url", service.url)
        assert code == 1
        assert "queued" in err

        # drain the queue, then fetch for real.
        code, _, _ = run_cli(
            capsys, "worker", "--watch", service.queue.directory,
            "--drain", "--no-progress",
        )
        assert code == 0
        exported = tmp_path / "fetched.json"
        code, out, _ = run_cli(
            capsys, "fetch", job_id, "--url", service.url,
            "--json", str(exported),
        )
        assert code == 0
        serial = Engine().sweep("table_density", SPEC)
        assert ResultSet.from_json(str(exported)).content_hash == serial.content_hash

    def test_submit_study_with_stage_override(self, capsys, service):
        code, out, _ = run_cli(
            capsys, "submit", "growth_to_wafer", "--study",
            "-p", "growth_window.duration_s=500", "--url", service.url,
        )
        assert code == 0
        job_id = out.strip()
        code, out, _ = run_cli(capsys, "status", job_id, "--url", service.url)
        assert code == 0
        assert "kind: study" in out

    def test_submit_without_axes_is_an_error(self, capsys, service):
        code, _, err = run_cli(
            capsys, "submit", "table_density", "--url", service.url
        )
        assert code == 2
        assert "--grid or --zip" in err

    def test_submit_unknown_experiment_reports_the_server_error(
        self, capsys, service
    ):
        code, _, err = run_cli(
            capsys, "submit", "no_such", "--grid", "x=1", "--url", service.url
        )
        assert code == 2  # rejected locally by the registry during coercion
        assert "no_such" in err

    def test_unreachable_service_is_a_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "status", "--url", "http://127.0.0.1:9"
        )
        assert code == 1
        assert "cannot reach" in err
