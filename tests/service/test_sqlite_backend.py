"""End-to-end: the HTTP service executing against a SqliteStore backend.

The acceptance bar for the sqlite backend: a sweep submitted over HTTP,
executed by a daemon whose result store is a ``SqliteStore`` (resolved from
the ``sqlite:///`` CLI spelling), fetched back through the client, is
content-hash identical to a serial ``LocalStore`` run of the same spec --
and the sqlite catalog afterwards answers ``repro query`` over the sweep's
stored parameters.
"""

import threading

import pytest

from repro.api import Engine, SweepSpec
from repro.api.query import parse_predicate, query_entries
from repro.dist import SqliteStore, resolve_store
from repro.service import ServiceClient, make_server, serve_queue

SPEC = SweepSpec.grid(length_um=[1.0, 10.0])


@pytest.fixture()
def service(tmp_path):
    """A live server + client + a sqlite-backed result store."""
    server = make_server(str(tmp_path / "queue"), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    store = resolve_store("sqlite:///" + str(tmp_path / "results.db"))
    try:
        yield {
            "server": server,
            "client": ServiceClient(server.url),
            "queue": server.queue,
            "store": store,
        }
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestSqliteBackedService:
    def test_fetched_sweep_matches_serial_local_run(self, service):
        assert isinstance(service["store"], SqliteStore)
        client = service["client"]
        job_id = client.submit_sweep("table_density", SPEC)
        report = serve_queue(service["queue"], service["store"], drain=True)
        assert report.ok

        status = client.wait(job_id, timeout=30.0)
        assert status["state"] == "done"
        fetched = client.fetch_results(job_id)
        serial = Engine().sweep("table_density", SPEC)
        assert fetched == serial
        assert fetched.content_hash == serial.content_hash
        assert status["content_hash"] == serial.content_hash

    def test_store_is_queryable_after_the_sweep(self, service):
        client = service["client"]
        job_id = client.submit_sweep("table_density", SPEC)
        serve_queue(service["queue"], service["store"], drain=True)
        client.wait(job_id, timeout=30.0)

        entries = query_entries(
            service["store"],
            experiment="table_density",
            where=[parse_predicate("length_um>5")],
        )
        assert len(entries) == 1
        assert entries[0].params["length_um"] == 10.0
        assert len(query_entries(service["store"], experiment="table_density")) == 2

    def test_second_drain_is_all_cache_hits(self, service):
        client = service["client"]
        first = client.submit_sweep("table_density", SPEC)
        serve_queue(service["queue"], service["store"], drain=True)
        client.wait(first, timeout=30.0)
        before = {entry.path: entry.mtime for entry in service["store"].entries()}

        second = client.submit_sweep("table_density", SPEC)
        serve_queue(service["queue"], service["store"], drain=True)
        status = client.wait(second, timeout=30.0)
        assert status["state"] == "done"
        after = {entry.path: entry.mtime for entry in service["store"].entries()}
        assert after == before  # nothing re-executed: rows untouched
